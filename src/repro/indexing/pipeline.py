"""The sharded, multi-worker indexing pipeline.

HDK construction is embarrassingly parallel per peer — each peer
extracts and classifies its own discriminative keys over purely local
documents — yet the outcome of the *publication* side of the protocol is
order-sensitive: merge order decides NDK truncation contents, DK->NDK
transition timing, and notification fan-out.  The pipeline exploits the
first fact without disturbing the second by running every round in three
barriered stages over a deterministic shard plan
(:func:`repro.indexing.shards.plan_shards`):

1. **extract** — candidate generation per peer, fanned out shard-by-shard
   on a thread pool (pure CPU, zero shared mutation);
2. **stage** — transmission of the round's INSERT messages (message
   logging + simulated link latency), also fanned out: concurrent
   staging overlaps the per-hop WAN latency a real DHT pays, which is
   where the multi-worker build throughput comes from;
3. **apply** — the merges at the responsible peers, executed by the
   coordinating thread in the sequential protocol's exact order (peer
   by peer, key by key).

Because stage 3 is the only stage that mutates the index — and runs in
sequential order — the resulting :class:`~repro.index.global_index.GlobalKeyIndex`
contents, term-statistics directory (including iteration order), per-peer
:class:`~repro.hdk.indexer.IndexingReport` fields, and global traffic
totals are **byte-identical at any worker/shard count**, including
``workers=1`` (which is also the execution behind the classic
:func:`repro.hdk.indexer.run_distributed_indexing`).  For ``hdk_disk``,
spill flushes ride the apply stage, so segment writes are serialized
through the :class:`~repro.store.store.SegmentStore` without ever
blocking extraction.

Per-peer traffic attribution uses the thread-scoped accounting windows
introduced for the query path (PR 3): each peer's stage and apply
operations run under their own ``measure(scope="thread")`` window on
whichever thread executes them, so
:attr:`~repro.hdk.indexer.IndexingReport.traffic` is exact even while
other shards stage concurrently.

Failure semantics: extraction errors surface before anything of the
failed round is staged or applied — the global index is left exactly as
the sequential protocol would leave it after the last completed round,
no measurement window stays attached, and no traffic of the failed
round is recorded.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence, TypeVar

from ..config import HDKParameters
from ..errors import ConfigurationError, KeyGenerationError
from ..hdk.indexer import (
    IndexingReport,
    PeerIndexer,
    entry_of,
    run_expansion_cascade,
)
from ..index.global_index import GlobalKeyIndex, KeyStatus
from ..net.accounting import (
    Phase,
    TrafficAccounting,
    TrafficSnapshot,
    merge_snapshots,
)
from .shards import Shard, plan_shards

__all__ = ["IndexingPipeline"]

T = TypeVar("T")


class IndexingPipeline:
    """Drives the distributed indexing protocol over sharded workers.

    Args:
        workers: thread-pool width for the extract and stage fan-outs;
            ``1`` (the default) runs everything inline on the calling
            thread — the sequential reference execution.
        num_shards: how many shards to partition the peers into;
            defaults to ``workers``.  More shards than workers queue on
            the pool (finer-grained balancing); the outcome is identical
            for any value because only the apply stage mutates state.
    """

    def __init__(self, workers: int = 1, num_shards: int | None = None) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        if num_shards is not None and num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.workers = workers
        self.num_shards = num_shards

    # -- public drivers ----------------------------------------------------------

    def build(
        self,
        indexers: Sequence[PeerIndexer],
        params: HDKParameters,
    ) -> list[IndexingReport]:
        """Execute the full collaborative indexing protocol.

        Statistics publication first (very frequent terms must be known
        globally before round 1), then rounds of increasing key size
        with a global status reconciliation after each round — exactly
        the sequential protocol, with extraction and transmission fanned
        out per shard.

        Returns each peer's :class:`IndexingReport` (with exact
        per-peer ``traffic`` attached).
        """
        indexers = list(indexers)
        if not indexers:
            raise KeyGenerationError("no peers to index with")
        global_index = indexers[0].global_index
        global_index.set_phase(Phase.INDEXING)
        accounting = global_index.network.accounting
        traffic = [[] for _ in indexers]  # type: list[list[TrafficSnapshot]]

        with self._worker_pool() as pool:
            self._publish_statistics(indexers, accounting, traffic, pool)
            for key_size in range(1, params.s_max + 1):
                statuses_by_position = self._run_round(
                    indexers, key_size, accounting, traffic, pool
                )
                proposed: dict[frozenset[str], set[int]] = {}
                for position, statuses in enumerate(statuses_by_position):
                    for key in statuses:
                        proposed.setdefault(key, set()).add(position)
                    indexers[position].report.ndk_keys_by_size[
                        key_size
                    ] = sum(
                        1
                        for status in statuses.values()
                        if status is KeyStatus.NON_DISCRIMINATIVE
                    )
                self._reconcile(global_index, indexers, proposed)
        self._attach_traffic(indexers, traffic)
        return [indexer.report for indexer in indexers]

    def join(
        self,
        existing_indexers: Sequence[PeerIndexer],
        joining_indexers: Sequence[PeerIndexer],
        params: HDKParameters,
    ) -> list[IndexingReport]:
        """Index newly joined peers into an already-built global index.

        The joining peers run the normal generation rounds (extraction
        and transmission sharded exactly like :meth:`build`); the
        NDK-expansion cascade that reconciles the grown index then runs
        sequentially over existing + joining peers — see
        :func:`repro.hdk.indexer.run_expansion_cascade` for why the
        cascade is ordered work by construction.

        Returns the reports of the joining peers.
        """
        existing = list(existing_indexers)
        joining = list(joining_indexers)
        if not joining:
            raise KeyGenerationError("no joining peers")
        global_index = joining[0].global_index
        global_index.set_phase(Phase.INDEXING)
        accounting = global_index.network.accounting
        # Discard transitions from the original build: its reconciliation
        # already delivered them.
        global_index.drain_transitions()
        traffic = [[] for _ in joining]  # type: list[list[TrafficSnapshot]]

        with self._worker_pool() as pool:
            self._publish_statistics(joining, accounting, traffic, pool)
            for key_size in range(1, params.s_max + 1):
                self._run_round(joining, key_size, accounting, traffic, pool)
        self._attach_traffic(joining, traffic)
        run_expansion_cascade(existing + joining, global_index, params)
        return [indexer.report for indexer in joining]

    # -- protocol stages ---------------------------------------------------------

    def _publish_statistics(
        self,
        indexers: list[PeerIndexer],
        accounting: TrafficAccounting,
        traffic: list[list[TrafficSnapshot]],
        pool: ThreadPoolExecutor | None,
    ) -> None:
        """Extract + send statistics per shard; aggregate in peer order."""

        def extract_and_send(position: int) -> object:
            indexer = indexers[position]
            statistics = indexer.extract_statistics()
            with accounting.measure(scope="thread") as window:
                indexer.send_statistics(statistics)
            traffic[position].append(window.delta)
            return statistics

        all_statistics = self._fan_out(
            len(indexers), extract_and_send, pool
        )
        # Aggregation order fixes the directory's iteration order (and
        # with it snapshot bytes), so it always runs in peer order.
        for indexer, statistics in zip(indexers, all_statistics):
            indexer.aggregate_statistics(statistics)

    def _run_round(
        self,
        indexers: list[PeerIndexer],
        key_size: int,
        accounting: TrafficAccounting,
        traffic: list[list[TrafficSnapshot]],
        pool: ThreadPoolExecutor | None,
    ) -> list[dict[frozenset[str], KeyStatus]]:
        """One generation round: extract and stage per shard (barriered),
        then apply every peer's merges in sequential order."""

        def extract(position: int) -> dict:
            return indexers[position].extract_round(key_size)

        candidates = self._fan_out(len(indexers), extract, pool)

        def stage(position: int) -> list:
            with accounting.measure(scope="thread") as window:
                staged = indexers[position].stage_round(candidates[position])
            traffic[position].append(window.delta)
            return staged

        staged_by_position = self._fan_out(len(indexers), stage, pool)

        statuses_by_position: list[dict[frozenset[str], KeyStatus]] = []
        for position, indexer in enumerate(indexers):
            with accounting.measure(scope="thread") as window:
                statuses = indexer.apply_round(
                    key_size, staged_by_position[position]
                )
            traffic[position].append(window.delta)
            statuses_by_position.append(statuses)
        return statuses_by_position

    @staticmethod
    def _reconcile(
        global_index: GlobalKeyIndex,
        indexers: list[PeerIndexer],
        proposed: dict[frozenset[str], set[int]],
    ) -> None:
        """A key inserted early in the round may have turned NDK after
        later inserts; deliver the final statuses to all proposers (the
        notification path already logged the messages)."""
        for key, proposer_positions in proposed.items():
            entry = entry_of(global_index, key)
            if entry is None:
                continue
            for position in proposer_positions:
                indexers[position].learn_status(key, entry.status)

    @staticmethod
    def _attach_traffic(
        indexers: list[PeerIndexer],
        traffic: list[list[TrafficSnapshot]],
    ) -> None:
        for indexer, snapshots in zip(indexers, traffic):
            indexer.report.add_traffic(merge_snapshots(*snapshots))

    # -- sharded execution -------------------------------------------------------

    def _shards_for(self, count: int) -> list[Shard]:
        return plan_shards(count, self.num_shards or self.workers)

    @contextmanager
    def _worker_pool(self) -> Iterator[ThreadPoolExecutor | None]:
        """One pool for a whole build/join (every fan-out stage reuses
        it instead of respawning threads); ``None`` when sequential."""
        if self.workers == 1:
            yield None
            return
        with ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-index",
        ) as pool:
            yield pool

    def _fan_out(
        self,
        count: int,
        task: Callable[[int], T],
        pool: ThreadPoolExecutor | None,
    ) -> list[T]:
        """Run ``task(position)`` for every position, shard by shard,
        returning results indexed by position.

        Without a pool (or with one item) everything runs inline in
        shard order; otherwise one pool task per shard.  All shards
        complete before any failure propagates, and when shards fail the
        error of the lowest-indexed one is raised — deterministic at any
        worker count.
        """
        results: list[T] = [None] * count  # type: ignore[list-item]

        def run_shard(shard: Shard) -> list[T]:
            return [task(position) for position in shard.members]

        shards = self._shards_for(count)
        if pool is None or count <= 1:
            for shard in shards:
                for position, value in zip(shard.members, run_shard(shard)):
                    results[position] = value
            return results
        errors: list[Exception] = []
        futures = [pool.submit(run_shard, shard) for shard in shards]
        for shard, future in zip(shards, futures):
            try:
                values = future.result()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
                continue
            for position, value in zip(shard.members, values):
                results[position] = value
        if errors:
            raise errors[0]
        return results
