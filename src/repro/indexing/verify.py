"""Canonical build-state fingerprints (determinism verification).

The parallel pipeline's contract is *byte-identity*: any worker/shard
count must produce exactly the global index, statistics directory,
per-peer reports, and traffic totals the sequential protocol produces.
This module turns each of those into a plain, comparable Python value so
harnesses (tests, benchmarks, CI smoke runs) can assert the contract
with one ``==`` — and print a meaningful diff when it breaks.

All fingerprints are pure reads: no messages are logged and no state is
mutated (reading a spilled ``hdk_disk`` posting list does materialize it
through the block cache, which is residency, not state).
"""

from __future__ import annotations

from typing import Any

from ..hdk.indexer import IndexingReport
from ..index.global_index import GlobalKeyIndex
from ..index.postings import PostingList
from ..net.accounting import TrafficSnapshot

__all__ = [
    "build_fingerprint",
    "entries_fingerprint",
    "postings_fingerprint",
    "reports_fingerprint",
    "termstats_fingerprint",
    "traffic_fingerprint",
]


def postings_fingerprint(postings: PostingList) -> tuple:
    """A posting list as a tuple of posting tuples, in stored order
    (stored order is part of the byte-identity contract: NDK truncation
    depends on it)."""
    return tuple(
        (posting.doc_id, posting.tf, tuple(posting.term_tfs), posting.doc_len)
        for posting in postings
    )


def entries_fingerprint(global_index: GlobalKeyIndex) -> tuple:
    """Every stored entry — key, status, global df, contributors, and
    full postings — sorted by canonical key."""
    entries = []
    for entry in global_index.entries():
        entries.append(
            (
                tuple(sorted(entry.key)),
                entry.status.value,
                entry.global_df,
                tuple(sorted(entry.contributors)),
                postings_fingerprint(entry.postings),
            )
        )
    entries.sort()
    return tuple(entries)


def termstats_fingerprint(global_index: GlobalKeyIndex) -> tuple:
    """The statistics directory in *iteration order* (dict order is what
    snapshot files serialize, so it is part of byte-identity), plus the
    global document count and total length."""
    term_stats, num_documents, total_doc_length = (
        global_index.export_statistics()
    )
    return (
        tuple(
            (term, stats.document_frequency, stats.collection_frequency)
            for term, stats in term_stats.items()
        ),
        num_documents,
        total_doc_length,
    )


def traffic_fingerprint(
    snapshot: TrafficSnapshot | None, postings_only: bool = False
) -> tuple | None:
    """A traffic snapshot as sorted (name, count) tuples.

    Args:
        snapshot: the window/accounting snapshot (``None`` passes
            through).
        postings_only: drop message/hop/kind counters — the comparison
            level for *cross-backend* equivalence, where routing (and
            therefore hops, message shapes, and maintenance chatter)
            legitimately differs while posting payloads must not.
    """
    if snapshot is None:
        return None
    postings = tuple(
        sorted(
            (phase.value, count)
            for phase, count in snapshot.postings_by_phase.items()
            if count
        )
    )
    if postings_only:
        return (postings,)
    return (
        postings,
        tuple(
            sorted(
                (phase.value, count)
                for phase, count in snapshot.messages_by_phase.items()
                if count
            )
        ),
        tuple(
            sorted(
                (phase.value, count)
                for phase, count in snapshot.hops_by_phase.items()
                if count
            )
        ),
        tuple(
            sorted(
                (kind.value, count)
                for kind, count in snapshot.messages_by_kind.items()
                if count
            )
        ),
    )


def reports_fingerprint(
    reports: list[IndexingReport], include_traffic: bool = True
) -> tuple:
    """Per-peer indexing reports, sorted by peer name.

    Args:
        include_traffic: include each report's full per-peer traffic
            window; cross-backend comparisons pass ``False`` (hop counts
            depend on routing) and compare posting totals through the
            global :func:`traffic_fingerprint` instead.
    """
    rows = []
    for report in reports:
        rows.append(
            (
                report.peer_name,
                tuple(sorted(report.inserted_postings_by_size.items())),
                tuple(sorted(report.candidate_keys_by_size.items())),
                tuple(sorted(report.ndk_keys_by_size.items())),
                traffic_fingerprint(report.traffic)
                if include_traffic
                else None,
            )
        )
    rows.sort()
    return tuple(rows)


def build_fingerprint(
    global_index: GlobalKeyIndex,
    reports: list[IndexingReport] | None = None,
    traffic: TrafficSnapshot | None = None,
    strict: bool = True,
) -> dict[str, Any]:
    """The full build-state fingerprint of one indexed world.

    Args:
        global_index: the built index.
        reports: per-peer indexing reports (omitted: not compared).
        traffic: a cumulative accounting snapshot (omitted: not
            compared).
        strict: ``True`` compares everything byte for byte (same
            backend, different worker counts); ``False`` compares the
            routing-independent view (entries, statistics, per-peer
            posting costs, per-phase posting totals) for cross-backend
            equivalence.
    """
    fingerprint: dict[str, Any] = {
        "entries": entries_fingerprint(global_index),
        "termstats": termstats_fingerprint(global_index),
    }
    if reports is not None:
        fingerprint["reports"] = reports_fingerprint(
            reports, include_traffic=strict
        )
    if traffic is not None:
        fingerprint["traffic"] = traffic_fingerprint(
            traffic, postings_only=not strict
        )
    return fingerprint
