"""Deterministic peer-shard planning for the parallel build pipeline.

A *shard* is a contiguous run of peer positions processed as one unit of
work by a pipeline worker.  The plan depends only on ``(num_items,
num_shards)`` — never on thread timing — so the work decomposition, and
therefore every per-shard extraction input, is identical from run to run
and from worker count to worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["Shard", "plan_shards"]


@dataclass(frozen=True)
class Shard:
    """One unit of pipeline work: a contiguous run of item positions.

    Attributes:
        index: the shard's position in the plan (0-based).
        members: the item positions this shard covers, ascending.
    """

    index: int
    members: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.members)


def plan_shards(num_items: int, num_shards: int) -> list[Shard]:
    """Partition ``range(num_items)`` into at most ``num_shards``
    contiguous, balanced shards.

    Shard sizes differ by at most one (the first ``num_items mod
    num_shards`` shards take the extra item); empty shards are never
    produced, so with fewer items than shards the plan shrinks.

    Raises:
        ConfigurationError: ``num_items < 0`` or ``num_shards < 1``.
    """
    if num_items < 0:
        raise ConfigurationError(
            f"num_items must be >= 0, got {num_items}"
        )
    if num_shards < 1:
        raise ConfigurationError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    count = min(num_shards, num_items)
    if count == 0:
        return []
    base, extra = divmod(num_items, count)
    shards: list[Shard] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(
            Shard(index=index, members=tuple(range(start, start + size)))
        )
        start += size
    return shards
