"""Sharded, multi-worker index construction (`repro.indexing`).

The subsystem behind ``SearchService.build(..., index_workers=N)`` and
the CLI's ``--index-workers``: a deterministic three-stage pipeline
(extract per shard → stage transmission per shard → apply merges in
sequential order) that parallelizes the build path while keeping every
byte of the outcome — index contents, statistics directory, per-peer
reports, traffic totals — identical to the sequential protocol.  See
:mod:`repro.indexing.pipeline` for the stage contract and
:mod:`repro.indexing.verify` for the fingerprints that enforce it.
"""

from .pipeline import IndexingPipeline
from .shards import Shard, plan_shards
from .verify import (
    build_fingerprint,
    entries_fingerprint,
    postings_fingerprint,
    reports_fingerprint,
    termstats_fingerprint,
    traffic_fingerprint,
)

__all__ = [
    "IndexingPipeline",
    "Shard",
    "build_fingerprint",
    "entries_fingerprint",
    "plan_shards",
    "postings_fingerprint",
    "reports_fingerprint",
    "termstats_fingerprint",
    "traffic_fingerprint",
]
