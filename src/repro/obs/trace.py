"""Tracing core: spans, contextvars propagation, and the tracer.

The design goal is a *zero-cost-when-off* tracer that still composes
across every concurrency boundary the stack has:

- **Threads** (``search_batch(workers=N)``): the active span lives in a
  :class:`contextvars.ContextVar`; the service copies the submitting
  thread's context per task (``contextvars.copy_context().run``), so a
  worker thread sees exactly its submitter's span and nothing else.
- **The asyncio gateway**: asyncio tasks copy the context at creation,
  so per-request spans isolate for free.
- **Processes** (the serving :class:`~repro.serving.pool.WorkerPool`):
  ids cross the boundary as plain strings in the task envelope; the
  worker opens a *forced root* parented on the gateway's span id, and
  ships its finished spans back as dicts for the gateway to
  :meth:`Tracer.adopt` — the re-assembled trace is one connected tree.

Disabled-mode cost: :meth:`Tracer.span` with no active parent returns
the shared :data:`NOOP_SPAN` without allocating, and hot call sites
additionally guard on :attr:`Tracer.active` (one ``ContextVar.get`` ≈
100 ns) so they skip even attribute-dict construction.

Span taxonomy (names used by the instrumented layers):

===================== ===========================================
``gateway.search``    HTTP edge, one per ``/search`` request
``worker.search``     pool worker process, re-parented into gateway
``service.search``    cache probe + single-flight + backend call
``service.backend``   the backend section of one query
``net.msg``           one overlay message (kind/route/postings)
``net.hop``           one accounted hop inside a message
``store.segment_read``    block-cache miss served from disk
``store.spill_materialize`` cold spill stub re-heated
``store.memtable_flush``    WAL-covered memtable → sealed segment
``store.wal_replay``        recovery replay on open
``store.compaction``        fg/bg compaction (MAINTENANCE phase)
===================== ===========================================
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NOOP_SPAN",
    "current_span",
    "get_tracer",
    "set_global_tracer",
    "format_span_tree",
]

#: The active span of the current logical context (thread / asyncio
#: task).  Never holds the no-op span: disabled sites leave it alone.
_CURRENT: ContextVar["Span | None"] = ContextVar(
    "repro_obs_current_span", default=None
)


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


def current_span() -> "Span | None":
    """The span active in this context, or None."""
    return _CURRENT.get()


class Span:
    """One timed operation; a context manager that activates itself.

    Entering sets the span as the context's current span (children
    created inside pick it up as parent); exiting restores the previous
    one, stamps the duration, marks ``status="error"`` when an
    exception is propagating, and hands the finished record to the
    tracer.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "status",
        "start_wall",
        "duration_ms",
        "_start",
        "_tracer",
        "_token",
    )

    #: Real spans record; the no-op span overrides this with False so
    #: call sites can skip attribute work without an isinstance check.
    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict[str, object] | None = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id(8)
        self.parent_id = parent_id
        self.attrs: dict[str, object] = attrs or {}
        self.status = "ok"
        self.start_wall = time.time()
        self.duration_ms = 0.0
        self._start = time.perf_counter()
        self._token = None

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def set_attrs(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.duration_ms = (time.perf_counter() - self._start) * 1e3
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": round(self.start_wall * 1e3, 3),
            "duration_ms": round(self.duration_ms, 4),
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"span={self.span_id}, parent={self.parent_id})"
        )


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is off.

    Never activated in the context var (``__enter__`` sets nothing), so
    a disabled layer is invisible to any enabled layer around it.
    """

    __slots__ = ()

    recording = False
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"
    attrs: dict[str, object] = {}

    def set_attr(self, key: str, value: object) -> None:
        pass

    def set_attrs(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Shared no-op instance — ``Tracer.span`` returns it without
#: allocating when tracing is disabled and no trace is in flight.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Process-wide span factory + bounded ring of finished spans.

    Spans finish into a ``deque(maxlen=...)`` (oldest evicted) guarded
    by one lock, then fan out to registered sinks *outside* the lock.
    ``take_trace`` / ``adopt`` are the process-boundary halves: a pool
    worker takes its trace's spans out of the ring and ships them with
    the result; the gateway adopts them so ``/trace/recent`` shows the
    stitched tree.
    """

    def __init__(self, *, enabled: bool = False, capacity: int = 2048):
        self._enabled = enabled
        self._lock = threading.Lock()
        self._ring: deque[dict[str, object]] = deque(maxlen=capacity)
        self._sinks: list[Callable[[Mapping[str, object]], None]] = []

    # -- switches ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def active(self) -> bool:
        """True when a span started now would record — either the
        tracer is on, or an enabled caller's span is already in flight
        (e.g. a forced root from the pool envelope).  The hot-path
        guard: one bool check + one ``ContextVar.get``."""
        return self._enabled or _CURRENT.get() is not None

    # -- span creation -----------------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span | _NoopSpan:
        """A child of the context's current span (or a new root)."""
        parent = _CURRENT.get()
        if parent is None:
            if not self._enabled:
                return NOOP_SPAN
            return Span(self, name, _new_id(8), None, attrs or None)
        return Span(
            self, name, parent.trace_id, parent.span_id, attrs or None
        )

    def root(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        force: bool = False,
        **attrs: object,
    ) -> Span | _NoopSpan:
        """An explicit root, ignoring the ambient context.

        ``force=True`` records even when the tracer is disabled — the
        cross-boundary hook: a pool worker whose envelope carries a
        trace id must record regardless of its own tracer switch, and
        a gateway honors ``X-Trace-Id`` the same way.
        """
        if not (self._enabled or force):
            return NOOP_SPAN
        return Span(
            self, name, trace_id or _new_id(8), parent_id, attrs or None
        )

    # -- collection --------------------------------------------------------------

    def add_sink(
        self, sink: Callable[[Mapping[str, object]], None]
    ) -> None:
        """Register a callable invoked with every finished span dict."""
        self._sinks.append(sink)

    def remove_sink(
        self, sink: Callable[[Mapping[str, object]], None]
    ) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def _finish(self, span: Span) -> None:
        record = span.to_dict()
        with self._lock:
            self._ring.append(record)
            sinks = tuple(self._sinks)
        for sink in sinks:
            try:
                sink(record)
            except Exception:
                # A broken sink must never fail the traced operation.
                pass

    def adopt(self, spans: Iterable[Mapping[str, object]]) -> None:
        """Append already-finished span dicts (from another process).

        Adopted spans fan to sinks exactly like locally finished ones,
        so an exporter on the adopting side (the gateway's JSONL sink)
        sees whole traces, not just the spans this process opened.
        """
        records = [dict(record) for record in spans]
        with self._lock:
            self._ring.extend(records)
            sinks = tuple(self._sinks)
        for sink in sinks:
            for record in records:
                try:
                    sink(record)
                except Exception:
                    # A broken sink must never fail the adopting caller.
                    pass

    def take_trace(self, trace_id: str) -> list[dict[str, object]]:
        """Remove and return every ringed span of ``trace_id``."""
        with self._lock:
            taken = [
                record
                for record in self._ring
                if record["trace_id"] == trace_id
            ]
            if taken:
                kept = [
                    record
                    for record in self._ring
                    if record["trace_id"] != trace_id
                ]
                self._ring.clear()
                self._ring.extend(kept)
        return taken

    def recent(self, limit: int = 100) -> list[dict[str, object]]:
        """The most recently finished spans, oldest first."""
        with self._lock:
            spans = list(self._ring)
        return spans[-limit:]

    def recent_traces(
        self, limit: int = 10
    ) -> list[dict[str, object]]:
        """The last ``limit`` traces as ``{"trace_id", "spans"}`` rows,
        most recently finished last; spans keep ring (finish) order."""
        with self._lock:
            spans = list(self._ring)
        by_trace: dict[str, list[dict[str, object]]] = {}
        order: list[str] = []
        for record in spans:
            tid = record["trace_id"]  # type: ignore[assignment]
            if tid not in by_trace:
                by_trace[tid] = []
                order.append(tid)
            else:
                # Most-recent-activity ordering: a late span moves its
                # trace to the back.
                order.remove(tid)
                order.append(tid)
            by_trace[tid].append(record)
        return [
            {"trace_id": tid, "spans": by_trace[tid]}
            for tid in order[-limit:]
        ]

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()


class NullTracer(Tracer):
    """A tracer that can never record — the benchmark floor.

    Installing it as the global tracer measures the true cost of the
    instrumentation's guard checks with recording structurally
    impossible (``active`` is a constant False)."""

    def __init__(self) -> None:
        super().__init__(enabled=False, capacity=1)

    @property
    def active(self) -> bool:
        return False

    def enable(self) -> None:  # pragma: no cover - guard
        raise RuntimeError("NullTracer cannot be enabled")

    def span(self, name: str, **attrs: object) -> _NoopSpan:
        return NOOP_SPAN

    def root(self, name: str, **kwargs: object) -> _NoopSpan:
        return NOOP_SPAN


_global_tracer: Tracer = Tracer()
_global_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumented layer uses."""
    return _global_tracer


def set_global_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _global_tracer
    with _global_lock:
        previous = _global_tracer
        _global_tracer = tracer
    return previous


def format_span_tree(spans: Sequence[Mapping[str, object]]) -> str:
    """Render finished span dicts as an indented tree (CLI ``--trace``).

    Orphans (parent never shipped, e.g. sampled out) print as extra
    roots rather than disappearing.
    """
    by_id = {record["span_id"]: record for record in spans}
    children: dict[object, list[Mapping[str, object]]] = {}
    roots: list[Mapping[str, object]] = []
    for record in spans:
        parent = record.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)

    def start_key(record: Mapping[str, object]) -> float:
        return float(record.get("start_ms", 0.0))  # type: ignore[arg-type]

    lines: list[str] = []

    def render(record: Mapping[str, object], depth: int) -> None:
        attrs = record.get("attrs") or {}
        attr_text = " ".join(
            f"{key}={value}" for key, value in attrs.items()  # type: ignore[union-attr]
        )
        status = record.get("status", "ok")
        flag = "" if status == "ok" else f" !{status}"
        lines.append(
            "{indent}{name}  {dur:.2f}ms{flag}{attrs}".format(
                indent="  " * depth,
                name=record["name"],
                dur=float(record["duration_ms"]),  # type: ignore[arg-type]
                flag=flag,
                attrs=f"  [{attr_text}]" if attr_text else "",
            )
        )
        for child in sorted(
            children.get(record["span_id"], ()), key=start_key
        ):
            render(child, depth + 1)

    for root in sorted(roots, key=start_key):
        render(root, 0)
    return "\n".join(lines)
