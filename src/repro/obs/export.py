"""Span export: JSONL sink, deterministic sampling, slow-query log.

Sinks are plain callables registered on a :class:`~repro.obs.trace.Tracer`
with ``add_sink``; each receives every finished span as a dict.

Sampling is **per trace**, not per span: keeping a random subset of a
trace's spans would leave orphaned subtrees, so the sampler hashes the
trace id (keyed by the seed) and either keeps the whole trace or drops
it.  The decision is a pure function of ``(seed, trace_id)`` — two
sinks with the same seed sample identically, and replaying a workload
reproduces the same sampled set (the property the sampler tests pin).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from pathlib import Path
from typing import Mapping

__all__ = ["TraceSampler", "JsonlSpanSink", "SlowQueryLog"]

#: Denominator of the sampler's hash-to-fraction mapping (48 bits gives
#: ~3e-15 rate resolution, far below any useful sampling rate).
_HASH_SPACE = float(1 << 48)


class TraceSampler:
    """Deterministic keep/drop decision per trace id.

    Args:
        rate: fraction of traces to keep in [0, 1].
        seed: decision key; the same ``(seed, trace_id)`` pair always
            yields the same decision.
    """

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1]: {rate}")
        self.rate = rate
        self.seed = seed
        self._key = seed.to_bytes(8, "little", signed=True)

    def should_sample(self, trace_id: str) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        digest = hashlib.blake2b(
            trace_id.encode("ascii", "replace"),
            key=self._key,
            digest_size=6,
        ).digest()
        return int.from_bytes(digest, "little") / _HASH_SPACE < self.rate


class JsonlSpanSink:
    """Append finished spans to a JSONL file, one span per line.

    Args:
        path: output file (parent directories created).
        sample_rate: per-trace keep fraction (:class:`TraceSampler`).
        seed: sampler decision key.
        always_sample_errors: write error-status spans even when their
            trace was sampled out (the errors you most want are rare).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        sample_rate: float = 1.0,
        seed: int = 0,
        always_sample_errors: bool = True,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sampler = TraceSampler(sample_rate, seed)
        self.always_sample_errors = always_sample_errors
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self.written = 0
        self.dropped = 0

    def __call__(self, span: Mapping[str, object]) -> None:
        keep = self.sampler.should_sample(str(span.get("trace_id", "")))
        if not keep and self.always_sample_errors:
            keep = span.get("status") == "error"
        with self._lock:
            if self._handle.closed:
                return
            if not keep:
                self.dropped += 1
                return
            self._handle.write(
                json.dumps(span, sort_keys=True, default=str) + "\n"
            )
            self._handle.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class SlowQueryLog:
    """Retain root spans slower than a threshold (plus all errors).

    A sink that watches completed *root* spans (no parent id — the
    request-level span of a trace) and keeps the slowest offenders in a
    bounded ring, newest last.  Error roots are kept regardless of
    duration when ``always_keep_errors`` — a fast failure is still a
    failure worth seeing.
    """

    def __init__(
        self,
        threshold_ms: float,
        *,
        capacity: int = 128,
        always_keep_errors: bool = True,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        self.threshold_ms = threshold_ms
        self.always_keep_errors = always_keep_errors
        self._lock = threading.Lock()
        self._entries: deque[dict[str, object]] = deque(maxlen=capacity)

    def __call__(self, span: Mapping[str, object]) -> None:
        if span.get("parent_id") is not None:
            return
        slow = float(span.get("duration_ms", 0.0)) >= self.threshold_ms  # type: ignore[arg-type]
        errored = span.get("status") == "error"
        if not slow and not (errored and self.always_keep_errors):
            return
        with self._lock:
            self._entries.append(dict(span))

    def entries(self) -> list[dict[str, object]]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
