"""Process-wide named metrics: counters, gauges, and histograms.

This generalizes the serving tier's request metrics (PR 6) into a
registry any layer can use without holding a reference to the gateway:
:func:`get_hub` returns the process-wide :class:`MetricsHub`, and
``hub.counter("overlay.path_cache_hits").add()`` is the whole API.

:class:`LatencyHistogram` moved here from :mod:`repro.serving.metrics`
(which re-exports it unchanged for back-compat) and gained two pieces
the serving tier needs for cross-worker aggregation:

- :meth:`LatencyHistogram.merge` — pool workers are separate processes,
  so each keeps its own histogram; the gateway merges their
  :meth:`to_state` snapshots into one distribution for ``/stats``.
- within-bucket **linear interpolation** for :meth:`percentile_ms` —
  the old estimate returned each bucket's upper bound, biasing every
  percentile high by up to one bucket width; the interpolated estimate
  assumes samples spread uniformly inside the bucket.  ``as_dict``'s
  shape is unchanged.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

__all__ = [
    "DEFAULT_BUCKET_BOUNDS_MS",
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "LatencyHistogram",
    "MetricsHub",
    "get_hub",
]

#: Upper bounds (milliseconds) of the latency buckets; the last bucket
#: is unbounded.  Log-spaced from sub-millisecond cache hits up to the
#: multi-second tail a draining or overloaded gateway can produce.
DEFAULT_BUCKET_BOUNDS_MS: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
)


class Counter:
    """A monotonically increasing thread-safe counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe point-in-time value (set or adjusted)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class CounterFamily:
    """Monotonic counters keyed by a label value (e.g. a super-peer id).

    The attribution form of :class:`Counter`: one family per metric
    name, one counter per label, so readers can tell a hot super-peer
    from uniform load instead of seeing a single process-wide total.
    Labels are coerced to strings (the snapshot is JSON-ready as-is).
    """

    __slots__ = ("_lock", "_values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[str, int] = {}

    def add(self, key: object, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a GaugeFamily")
        label = str(key)
        with self._lock:
            self._values[label] = self._values.get(label, 0) + amount

    def value(self, key: object) -> int:
        with self._lock:
            return self._values.get(str(key), 0)

    def values(self) -> dict[str, int]:
        """Per-label totals (a copy, sorted by label)."""
        with self._lock:
            return dict(sorted(self._values.items()))


class GaugeFamily:
    """Point-in-time values keyed by a label value (e.g. per-super-peer
    window load).  Labels are coerced to strings."""

    __slots__ = ("_lock", "_values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[str, float] = {}

    def set(self, key: object, value: float) -> None:
        with self._lock:
            self._values[str(key)] = float(value)

    def value(self, key: object) -> float:
        with self._lock:
            return self._values.get(str(key), 0.0)

    def values(self) -> dict[str, float]:
        """Per-label values (a copy, sorted by label)."""
        with self._lock:
            return dict(sorted(self._values.items()))


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates.

    Args:
        bounds_ms: ascending bucket upper bounds in milliseconds; an
            implicit overflow bucket catches everything beyond the last
            bound.
    """

    def __init__(
        self, bounds_ms: Sequence[float] = DEFAULT_BUCKET_BOUNDS_MS
    ) -> None:
        bounds = tuple(float(b) for b in bounds_ms)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"bucket bounds must be ascending and non-empty: {bounds!r}"
            )
        self.bounds_ms = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self._total = 0
        self._sum_ms = 0.0
        self._max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        """Record one latency sample (negative values clamp to 0)."""
        latency_ms = max(0.0, float(latency_ms))
        index = len(self.bounds_ms)  # overflow unless a bound catches it
        for i, bound in enumerate(self.bounds_ms):
            if latency_ms <= bound:
                index = i
                break
        self._counts[index] += 1
        self._total += 1
        self._sum_ms += latency_ms
        if latency_ms > self._max_ms:
            self._max_ms = latency_ms

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean_ms(self) -> float:
        return self._sum_ms / self._total if self._total else 0.0

    def percentile_ms(self, fraction: float) -> float:
        """Estimate the ``fraction`` percentile (0 < fraction <= 1).

        The rank is located in its bucket and linearly interpolated
        between the bucket's bounds (samples assumed uniform within the
        bucket); a rank landing exactly on a cumulative boundary yields
        the bucket's upper bound, matching the pre-interpolation
        estimator on exact-boundary ranks.  The overflow bucket has no
        upper bound and reports the maximum observed sample.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not self._total:
            return 0.0
        rank = fraction * self._total
        cumulative = 0
        for i, count in enumerate(self._counts):
            before = cumulative
            cumulative += count
            if cumulative >= rank:
                if i >= len(self.bounds_ms):
                    return self._max_ms
                lower = self.bounds_ms[i - 1] if i > 0 else 0.0
                upper = self.bounds_ms[i]
                fill = (rank - before) / count
                return lower + (upper - lower) * fill
        return self._max_ms

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram in place.

        Bucket-exact (identical ``bounds_ms`` required): the merged
        histogram equals one that observed both sample streams.
        """
        if other.bounds_ms != self.bounds_ms:
            raise ValueError(
                "cannot merge histograms with different bucket bounds: "
                f"{self.bounds_ms!r} vs {other.bounds_ms!r}"
            )
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self._total += other._total
        self._sum_ms += other._sum_ms
        if other._max_ms > self._max_ms:
            self._max_ms = other._max_ms

    def to_state(self) -> dict[str, object]:
        """Lossless plain-data form (pickle/JSON-safe) for shipping a
        worker process's histogram to the gateway for merging."""
        return {
            "bounds_ms": list(self.bounds_ms),
            "counts": list(self._counts),
            "total": self._total,
            "sum_ms": self._sum_ms,
            "max_ms": self._max_ms,
        }

    @classmethod
    def from_state(
        cls, state: Mapping[str, object]
    ) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_state` output."""
        histogram = cls(state["bounds_ms"])  # type: ignore[arg-type]
        counts = list(state["counts"])  # type: ignore[call-overload]
        if len(counts) != len(histogram._counts):
            raise ValueError("histogram state counts length mismatch")
        histogram._counts = [int(c) for c in counts]
        histogram._total = int(state["total"])  # type: ignore[arg-type]
        histogram._sum_ms = float(state["sum_ms"])  # type: ignore[arg-type]
        histogram._max_ms = float(state["max_ms"])  # type: ignore[arg-type]
        return histogram

    def as_dict(self) -> dict[str, object]:
        """Plain-data view (JSON-ready)."""
        return {
            "count": self._total,
            "mean_ms": round(self.mean_ms, 3),
            "max_ms": round(self._max_ms, 3),
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
            "p99_ms": self.percentile_ms(0.99),
            "buckets": {
                f"le_{bound:g}ms": count
                for bound, count in zip(self.bounds_ms, self._counts)
            }
            | {"overflow": self._counts[-1]},
        }


class MetricsHub:
    """Named get-or-create registry of counters, gauges, histograms.

    One hub per process (:func:`get_hub`); a name maps to exactly one
    metric kind — asking for ``counter(name)`` after ``gauge(name)``
    raises, catching cross-layer naming collisions early.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._counter_families: dict[str, CounterFamily] = {}
        self._gauge_families: dict[str, GaugeFamily] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
            ("counter_family", self._counter_families),
            ("gauge_family", self._gauge_families),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"{other_kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_free(name, "counter")
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_free(name, "gauge")
                metric = self._gauges[name] = Gauge()
            return metric

    def counter_family(self, name: str) -> CounterFamily:
        with self._lock:
            metric = self._counter_families.get(name)
            if metric is None:
                self._check_free(name, "counter_family")
                metric = self._counter_families[name] = CounterFamily()
            return metric

    def gauge_family(self, name: str) -> GaugeFamily:
        with self._lock:
            metric = self._gauge_families.get(name)
            if metric is None:
                self._check_free(name, "gauge_family")
                metric = self._gauge_families[name] = GaugeFamily()
            return metric

    def histogram(
        self, name: str, bounds_ms: Sequence[float] | None = None
    ) -> LatencyHistogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_free(name, "histogram")
                metric = self._histograms[name] = LatencyHistogram(
                    bounds_ms or DEFAULT_BUCKET_BOUNDS_MS
                )
            return metric

    def snapshot(self) -> dict[str, object]:
        """Plain-data view of every registered metric (JSON-ready)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            counter_families = dict(self._counter_families)
            gauge_families = dict(self._gauge_families)
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(gauges.items())
            },
            "histograms": {
                name: metric.as_dict()
                for name, metric in sorted(histograms.items())
            },
            "counter_families": {
                name: metric.values()
                for name, metric in sorted(counter_families.items())
            },
            "gauge_families": {
                name: metric.values()
                for name, metric in sorted(gauge_families.items())
            },
        }

    def reset(self) -> None:
        """Drop every registered metric (tests and benchmarks)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._counter_families.clear()
            self._gauge_families.clear()


_global_hub = MetricsHub()


def get_hub() -> MetricsHub:
    """The process-wide metrics hub."""
    return _global_hub
