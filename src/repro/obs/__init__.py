"""repro.obs — end-to-end tracing and unified metrics (stdlib-only).

The observability layer threaded through every tier of the stack:

- :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span` with
  contextvars propagation across threads and asyncio tasks, explicit
  id propagation across the serving pool's process boundary, and a
  zero-overhead no-op path when disabled.
- :mod:`repro.obs.metrics` — process-wide named :class:`Counter`,
  :class:`Gauge`, and :class:`LatencyHistogram` (now mergeable and
  linearly interpolated) behind one :func:`get_hub` registry.
- :mod:`repro.obs.export` — JSONL span sink with deterministic
  per-trace sampling, and a slow-query log.

Nothing here imports the rest of ``repro`` — any layer can depend on
``repro.obs`` without cycles.
"""

from .export import JsonlSpanSink, SlowQueryLog, TraceSampler
from .metrics import (
    DEFAULT_BUCKET_BOUNDS_MS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsHub,
    get_hub,
)
from .trace import (
    NOOP_SPAN,
    NullTracer,
    Span,
    Tracer,
    current_span,
    format_span_tree,
    get_tracer,
    set_global_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKET_BOUNDS_MS",
    "Gauge",
    "JsonlSpanSink",
    "LatencyHistogram",
    "MetricsHub",
    "NOOP_SPAN",
    "NullTracer",
    "SlowQueryLog",
    "Span",
    "TraceSampler",
    "Tracer",
    "current_span",
    "format_span_tree",
    "get_hub",
    "get_tracer",
    "set_global_tracer",
]
