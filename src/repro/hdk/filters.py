"""The three key-filtering methods (paper Section 3.1).

- **Size filtering**: keys have at most ``s_max`` terms.
- **Proximity filtering**: a key's terms must co-occur in at least one
  window of ``w`` consecutive tokens.
- **Redundancy filtering**: only *intrinsically discriminative* keys — DKs
  whose every proper sub-key is an NDK — are indexed (Definition 5); the
  others are subsumed by a smaller DK whose answer set contains theirs.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import KeyGenerationError
from ..index.global_index import KeyStatus
from ..text.windows import cooccurring_term_sets
from .keys import proper_subkeys

__all__ = [
    "passes_size_filter",
    "proximity_candidates",
    "is_intrinsically_discriminative",
]


def passes_size_filter(key: frozenset[str], s_max: int) -> bool:
    """Size filtering: ``|k| <= s_max`` (Definition 6, condition 1)."""
    if s_max < 1:
        raise KeyGenerationError(f"s_max must be >= 1, got {s_max}")
    return 1 <= len(key) <= s_max


def proximity_candidates(
    tokens: Sequence[str],
    window_size: int,
    set_size: int,
    allowed_terms: frozenset[str] | None = None,
) -> set[frozenset[str]]:
    """Proximity filtering: enumerate the size-``set_size`` term sets whose
    terms co-occur inside a window of ``window_size`` tokens (Definition 2).

    ``allowed_terms`` restricts the enumeration (HDK generation only
    combines non-discriminative terms).
    """
    return cooccurring_term_sets(
        tokens, window_size, set_size, allowed_terms
    )


def is_intrinsically_discriminative(
    key: frozenset[str],
    status_of: Callable[[frozenset[str]], KeyStatus | None],
) -> bool:
    """Redundancy filtering predicate (Definition 5).

    A key is intrinsically discriminative iff it is discriminative and
    *all* proper sub-keys are non-discriminative.  ``status_of`` supplies
    the global classification of a key (None when the key was never
    observed, which — by the subsumption property — can only happen for
    keys that never co-occur anywhere, treated as discriminative-by-absence
    and therefore *disqualifying* the parent, since the parent would be
    subsumed by that empty-answer sub-key).

    Note the predicate evaluates the key's own status too: a key whose own
    status is NDK is not discriminative at all.
    """
    own_status = status_of(key)
    if own_status is not KeyStatus.DISCRIMINATIVE:
        return False
    for subkey in proper_subkeys(key):
        sub_status = status_of(subkey)
        if sub_status is not KeyStatus.NON_DISCRIMINATIVE:
            return False
    return True
