"""DK / NDK classification (paper Definitions 3-4).

A key is *discriminative* (DK) w.r.t. a collection iff its document
frequency is at most ``DF_max``; otherwise it is *non-discriminative*
(NDK).  The subsumption properties follow directly: supersets of DKs are
DKs; subsets of NDKs are NDKs.
"""

from __future__ import annotations

from ..errors import KeyGenerationError
from ..index.global_index import KeyStatus

__all__ = ["classify_df", "is_discriminative"]


def classify_df(document_frequency: int, df_max: int) -> KeyStatus:
    """Classify a document frequency against ``DF_max``.

    Raises:
        KeyGenerationError: for negative df or non-positive df_max.
    """
    if document_frequency < 0:
        raise KeyGenerationError(
            f"document frequency must be >= 0, got {document_frequency}"
        )
    if df_max < 1:
        raise KeyGenerationError(f"df_max must be >= 1, got {df_max}")
    if document_frequency <= df_max:
        return KeyStatus.DISCRIMINATIVE
    return KeyStatus.NON_DISCRIMINATIVE


def is_discriminative(document_frequency: int, df_max: int) -> bool:
    """True iff the df classifies as discriminative (Definition 3)."""
    return classify_df(document_frequency, df_max) is KeyStatus.DISCRIMINATIVE
