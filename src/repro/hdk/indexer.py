"""The distributed HDK indexing driver.

Runs the per-peer generation rounds against the global index: every peer
publishes its term statistics, then — round by round, size 1 through
``s_max`` — proposes candidate keys with local posting lists, learns from
the acknowledgements/notifications which keys are globally
non-discriminative, and expands those in the next round.

The driver operates on *sets of peers* (the paper's peers index
collaboratively): statuses discovered globally in round ``s`` feed every
peer's round ``s+1``, exactly like the prototype's NDK notification flow.

Each protocol step a peer takes is split into three phases so the
sharded pipeline (:mod:`repro.indexing`) can parallelize the build
without changing a single byte of its outcome:

- **extract** (:meth:`PeerIndexer.extract_statistics`,
  :meth:`PeerIndexer.extract_round`) — pure CPU over the peer's local
  documents; touches neither the network nor shared state, so shard
  workers run it concurrently;
- **stage** (:meth:`PeerIndexer.send_statistics`,
  :meth:`PeerIndexer.stage_round`) — transmission: logs the routed
  messages and pays their simulated link latency, without mutating the
  index; safe to overlap across peers;
- **apply** (:meth:`PeerIndexer.aggregate_statistics`,
  :meth:`PeerIndexer.apply_round`) — the order-sensitive part (merges,
  NDK transitions, notification fan-out), always executed in the
  sequential protocol's deterministic peer order.

The classic one-shot surfaces (:meth:`PeerIndexer.publish_statistics`,
:meth:`PeerIndexer.run_round`, :func:`run_distributed_indexing`,
:func:`run_incremental_join`) compose the phases in place and remain the
reference sequential protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import HDKParameters
from ..corpus.collection import DocumentCollection
from ..errors import KeyGenerationError
from ..index.global_index import GlobalKeyIndex, KeyStatus, StagedInsert
from ..index.postings import PostingList
from ..net.accounting import TrafficSnapshot, merge_snapshots
from .generator import LocalHDKGenerator
from .semantic import filter_candidates_by_pmi

__all__ = [
    "IndexingReport",
    "PeerIndexer",
    "PeerStatistics",
    "run_distributed_indexing",
    "run_incremental_join",
]


@dataclass(frozen=True)
class PeerStatistics:
    """One peer's extracted local statistics (the stats-publication
    payload): term -> (df, cf), plus document count and total length."""

    term_stats: dict[str, tuple[int, int]]
    num_documents: int
    total_doc_length: int


@dataclass
class IndexingReport:
    """Per-peer accounting of one full indexing run.

    Attributes:
        peer_name: the reporting peer.
        inserted_postings_by_size: key size -> local postings inserted into
            the global index (the *indexing cost*, Figures 4-5).
        candidate_keys_by_size: key size -> number of proposed keys.
        ndk_keys_by_size: key size -> how many of the peer's proposals were
            (or became) globally non-discriminative.
        traffic: the per-phase traffic window this peer's publication
            activity generated (statistics publication, key inserts with
            their transition notifications, and any NDK-expansion
            cascades) — measured through thread-scoped windows, so it is
            exact at any pipeline worker count and byte-identical to the
            sequential build's attribution.  ``None`` until a driver
            (:mod:`repro.indexing`) attaches it.
    """

    peer_name: str
    inserted_postings_by_size: dict[int, int] = field(default_factory=dict)
    candidate_keys_by_size: dict[int, int] = field(default_factory=dict)
    ndk_keys_by_size: dict[int, int] = field(default_factory=dict)
    traffic: TrafficSnapshot | None = None

    @property
    def total_inserted_postings(self) -> int:
        return sum(self.inserted_postings_by_size.values())

    @property
    def total_candidate_keys(self) -> int:
        return sum(self.candidate_keys_by_size.values())

    def add_traffic(self, snapshot: TrafficSnapshot) -> None:
        """Fold another measured window into this report's traffic."""
        if self.traffic is None:
            self.traffic = snapshot
        else:
            self.traffic = merge_snapshots(self.traffic, snapshot)


class PeerIndexer:
    """One peer's side of the distributed indexing protocol.

    Args:
        peer_name: the peer's registered network name.
        collection: the peer's local documents ``D(P_i)``.
        global_index: the shared global index facade.
        params: the HDK model parameters.
    """

    def __init__(
        self,
        peer_name: str,
        collection: DocumentCollection,
        global_index: GlobalKeyIndex,
        params: HDKParameters,
    ) -> None:
        self.peer_name = peer_name
        self.collection = collection
        self.global_index = global_index
        self.params = params
        self.generator = LocalHDKGenerator(collection, params)
        # Global statuses this peer has learned (acks + notifications).
        self._known_status: dict[frozenset[str], KeyStatus] = {}
        # Keys this peer has already inserted (idempotence for the
        # incremental expansion cascade).
        self._submitted: set[frozenset[str]] = set()
        # Local term document frequencies (for the optional PMI filter).
        self._local_term_dfs: dict[str, int] = {}
        for doc in collection:
            for term in doc.distinct_terms:
                self._local_term_dfs[term] = (
                    self._local_term_dfs.get(term, 0) + 1
                )
        self.report = IndexingReport(peer_name=peer_name)

    def _apply_semantic_filter(
        self, candidates: dict[frozenset[str], PostingList]
    ) -> dict[frozenset[str], PostingList]:
        """Drop low-PMI multi-term candidates when the model asks for it."""
        threshold = self.params.semantic_pmi_threshold
        if threshold is None or len(self.collection) == 0:
            return candidates
        return filter_candidates_by_pmi(
            candidates,
            self._local_term_dfs,
            num_documents=len(self.collection),
            threshold=threshold,
        )

    # -- statistics publication --------------------------------------------------

    def extract_statistics(self) -> PeerStatistics:
        """Compute local term df/cf plus document-count statistics (pure
        CPU; no network, no shared state)."""
        term_stats: dict[str, tuple[int, int]] = {}
        total_length = 0
        for doc in self.collection:
            total_length += len(doc)
            for term, tf in doc.term_frequencies().items():
                df, cf = term_stats.get(term, (0, 0))
                term_stats[term] = (df + 1, cf + tf)
        return PeerStatistics(
            term_stats=term_stats,
            num_documents=len(self.collection),
            total_doc_length=total_length,
        )

    def send_statistics(self, statistics: PeerStatistics) -> None:
        """Transmission phase: log/pay the STATS_PUBLISH message."""
        self.global_index.send_term_stats(
            self.peer_name, statistics.term_stats
        )

    def aggregate_statistics(self, statistics: PeerStatistics) -> None:
        """Application phase: fold the statistics into the global
        directory (run in deterministic peer order by the pipeline)."""
        self.global_index.aggregate_term_stats(
            statistics.term_stats,
            num_documents=statistics.num_documents,
            total_doc_length=statistics.total_doc_length,
        )

    def publish_statistics(self) -> None:
        """Publish local term df/cf plus document-count statistics (the
        one-shot sequential composition of the three phases)."""
        statistics = self.extract_statistics()
        self.aggregate_statistics(statistics)
        self.send_statistics(statistics)

    # -- indexing rounds --------------------------------------------------------------

    def extract_round(
        self, key_size: int
    ) -> dict[frozenset[str], PostingList]:
        """Run one round's candidate generation (pure CPU).

        Reads only this peer's own learned statuses and the global
        statistics directory (stable between rounds), so shard workers
        extract different peers' rounds concurrently; returns the
        semantically filtered candidate -> local posting list map.
        """
        if key_size == 1:
            very_frequent = frozenset(self.global_index.very_frequent_terms())
            round_ = self.generator.round_one(very_frequent)
        else:
            ndk_terms = frozenset(
                next(iter(key))
                for key, status in self._known_status.items()
                if len(key) == 1 and status is KeyStatus.NON_DISCRIMINATIVE
            )
            previous_ndk = frozenset(
                key
                for key, status in self._known_status.items()
                if len(key) == key_size - 1
                and status is KeyStatus.NON_DISCRIMINATIVE
            )
            round_ = self.generator.next_round(
                key_size, ndk_terms, previous_ndk
            )
        return self._apply_semantic_filter(round_.candidates)

    def stage_round(
        self, candidates: dict[frozenset[str], PostingList]
    ) -> list[StagedInsert]:
        """Transmission phase: log/pay one INSERT message per candidate
        (NDK posting-list policy applied) without touching the index."""
        return [
            self.global_index.stage_insert(
                self.peer_name,
                key,
                self._insertion_payload(posting_list),
                local_df=len(posting_list),
            )
            for key, posting_list in candidates.items()
        ]

    def apply_round(
        self, key_size: int, staged: list[StagedInsert]
    ) -> dict[frozenset[str], KeyStatus]:
        """Application phase: merge the staged inserts (in staging
        order), learn the acknowledged statuses, and update the report.
        Order-sensitive — the pipeline serializes calls across peers."""
        statuses: dict[frozenset[str], KeyStatus] = {}
        inserted_postings = 0
        for staged_insert in staged:
            status = self.global_index.apply_staged(staged_insert)
            statuses[staged_insert.key] = status
            self._known_status[staged_insert.key] = status
            self._submitted.add(staged_insert.key)
            inserted_postings += len(staged_insert.payload)
        self.report.candidate_keys_by_size[key_size] = len(staged)
        self.report.inserted_postings_by_size[key_size] = (
            self.report.inserted_postings_by_size.get(key_size, 0)
            + inserted_postings
        )
        return statuses

    def run_round(self, key_size: int) -> dict[frozenset[str], KeyStatus]:
        """Run one generation+insertion round; returns the statuses of the
        keys this peer proposed in the round."""
        return self.apply_round(
            key_size, self.stage_round(self.extract_round(key_size))
        )

    def _insertion_payload(self, posting_list: PostingList) -> PostingList:
        """Locally non-discriminative keys only publish their local
        top-``DF_max`` postings (the paper's NDK posting-list policy)."""
        if len(posting_list) <= self.params.df_max:
            return posting_list
        return posting_list.truncate_top(
            self.params.df_max, self.params.ndk_truncation
        )

    # -- incremental expansion (NDK notifications) ----------------------------------------

    def expand_transitioned_key(
        self, key: frozenset[str]
    ) -> dict[frozenset[str], KeyStatus]:
        """React to an NDK notification for ``key``: generate and insert
        the one-term expansions this peer's local collection supports.

        Returns the statuses of the *newly submitted* expansions (keys the
        peer had already submitted are skipped); callers cascade on the
        expansions that come back non-discriminative.
        """
        self._known_status[key] = KeyStatus.NON_DISCRIMINATIVE
        ndk_terms = frozenset(
            next(iter(k))
            for k, status in self._known_status.items()
            if len(k) == 1 and status is KeyStatus.NON_DISCRIMINATIVE
        )

        def subkey_is_ndk(subkey: frozenset[str]) -> bool:
            return (
                self._known_status.get(subkey)
                is KeyStatus.NON_DISCRIMINATIVE
            )

        candidates = self._apply_semantic_filter(
            self.generator.expansion_candidates(
                key, ndk_terms, subkey_is_ndk
            )
        )
        statuses: dict[frozenset[str], KeyStatus] = {}
        inserted_postings = 0
        for candidate, posting_list in candidates.items():
            if candidate in self._submitted:
                continue
            payload = self._insertion_payload(posting_list)
            status = self.global_index.insert(
                self.peer_name,
                candidate,
                payload,
                local_df=len(posting_list),
            )
            statuses[candidate] = status
            self._known_status[candidate] = status
            self._submitted.add(candidate)
            inserted_postings += len(payload)
        size = len(key) + 1
        self.report.inserted_postings_by_size[size] = (
            self.report.inserted_postings_by_size.get(size, 0)
            + inserted_postings
        )
        self.report.candidate_keys_by_size[size] = (
            self.report.candidate_keys_by_size.get(size, 0)
            + len(statuses)
        )
        return statuses

    @property
    def overlay_id(self) -> int:
        """This peer's overlay id (contributor matching in cascades)."""
        return self.global_index.network.id_of(self.peer_name)

    # -- notification intake -------------------------------------------------------------

    def learn_status(self, key: frozenset[str], status: KeyStatus) -> None:
        """Record a status learned outside this peer's own inserts (e.g.
        an NDK notification for a key that transitioned after another
        peer's insert)."""
        self._known_status[key] = status

    def known_ndk_count(self, key_size: int) -> int:
        """How many size-``key_size`` keys this peer knows to be NDK."""
        return sum(
            1
            for key, status in self._known_status.items()
            if len(key) == key_size
            and status is KeyStatus.NON_DISCRIMINATIVE
        )


def run_incremental_join(
    existing_indexers: list[PeerIndexer],
    joining_indexers: list[PeerIndexer],
    params: HDKParameters,
) -> list[IndexingReport]:
    """Index newly joined peers into an already-built global index.

    This is the paper's actual growth protocol ("peers joining the
    network and increasing the document collection"): the joining peers
    run the normal generation rounds over their local documents, and any
    existing key their inserts push over ``DF_max`` triggers NDK
    notifications — the contributing peers then *expand* the key with
    additional co-occurring terms, which may cascade into further
    transitions until the index is quiescent.

    Because document frequencies only grow, the NDK set is monotone and
    the cascade terminates; the resulting global index is identical to a
    fresh rebuild over the union collection with the same peer partition
    (verified by the integration tests) — with one documented exception:
    when a term's collection frequency crosses ``F_f`` *during* growth, a
    rebuild excludes it from the key vocabulary (the paper's
    collection-dependent stop words "increase with l"), while the live
    system retains the keys indexed before the crossing and existing
    peers keep expanding with them.  The incremental index is then a
    strict superset of the rebuilt one; every common key still agrees
    exactly on status, df, and postings.  Retiring such keys is the
    "adaptive parameters" future work the paper's conclusion sketches.

    Delegates to a single-worker :class:`repro.indexing.IndexingPipeline`
    (the sequential reference execution of the shared build path).

    Returns the reports of the joining peers.
    """
    from ..indexing.pipeline import IndexingPipeline

    return IndexingPipeline().join(
        existing_indexers, joining_indexers, params
    )


def run_expansion_cascade(
    indexers: list[PeerIndexer],
    global_index: GlobalKeyIndex,
    params: HDKParameters,
) -> None:
    """Process DK->NDK transitions until quiescent.

    Each batch: first every contributor *learns* all transitioned
    statuses (so expansions within the batch see each other's updates),
    then each contributor expands its transitioned keys.  Expansions that
    come back NDK enter the next batch implicitly through the index's
    transition log; already-NDK acks are cascaded explicitly.

    Deliberately sequential at any pipeline worker count: within a batch
    one peer's expansion extraction can depend on its own earlier
    expansions (same-size sub-key checks across mixed-size batches), so
    the cascade is ordered work by construction — and it is small, since
    only transitioned keys enter it.  Each expansion runs under a
    thread-scoped traffic window attributed to the expanding peer's
    report.
    """
    accounting = global_index.network.accounting
    by_overlay_id = {indexer.overlay_id: indexer for indexer in indexers}
    pending = global_index.drain_transitions()
    # Acked-NDK expansions that never transition (inserted already-NDK).
    extra: list[tuple[frozenset[str], frozenset[int]]] = []
    guard = 0
    while pending or extra:
        guard += 1
        if guard > 10_000:
            raise KeyGenerationError(
                "expansion cascade failed to converge"
            )  # pragma: no cover - safety net
        batch = pending + extra
        extra = []
        # Phase 1: disseminate statuses.
        for key, contributors in batch:
            for overlay_id in contributors:
                indexer = by_overlay_id.get(overlay_id)
                if indexer is not None:
                    indexer.learn_status(
                        key, KeyStatus.NON_DISCRIMINATIVE
                    )
        # Phase 2: expansions.
        for key, contributors in batch:
            if len(key) >= params.s_max:
                continue
            for overlay_id in sorted(contributors):
                indexer = by_overlay_id.get(overlay_id)
                if indexer is None:
                    continue
                with accounting.measure(scope="thread") as window:
                    statuses = indexer.expand_transitioned_key(key)
                indexer.report.add_traffic(window.delta)
                for candidate, status in statuses.items():
                    if status is KeyStatus.NON_DISCRIMINATIVE:
                        extra.append(
                            (candidate, frozenset((overlay_id,)))
                        )
        pending = global_index.drain_transitions()


#: Back-compat alias (pre-pipeline private name).
_run_expansion_cascade = run_expansion_cascade


def run_distributed_indexing(
    indexers: list[PeerIndexer],
    params: HDKParameters,
) -> list[IndexingReport]:
    """Execute the full collaborative indexing protocol.

    Phase order matches the prototype: statistics publication first (so
    very frequent terms are known globally), then rounds of increasing key
    size with a *global status reconciliation* after each round — peers
    whose proposed key became NDK through a later peer's insert are brought
    up to date, standing in for asynchronous NDK notifications.

    Delegates to a single-worker :class:`repro.indexing.IndexingPipeline`
    (the sequential reference execution of the shared build path; pass a
    pipeline with ``workers > 1`` for the sharded multi-core build,
    which is byte-identical by construction).

    Returns each peer's :class:`IndexingReport`.
    """
    from ..indexing.pipeline import IndexingPipeline

    return IndexingPipeline().build(indexers, params)


def entry_of(global_index: GlobalKeyIndex, key: frozenset[str]):
    """Read a stored entry without logging retrieval traffic (round
    reconciliation piggybacks on the already-logged notifications)."""
    network = global_index.network
    target = network.responsible_peer_for(key)
    for storage in network.storages():
        if storage.peer_id == target:
            return storage.get(key)
    return None


#: Back-compat alias (pre-pipeline private name).
_entry_of = entry_of
