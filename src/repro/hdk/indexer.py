"""The distributed HDK indexing driver.

Runs the per-peer generation rounds against the global index: every peer
publishes its term statistics, then — round by round, size 1 through
``s_max`` — proposes candidate keys with local posting lists, learns from
the acknowledgements/notifications which keys are globally
non-discriminative, and expands those in the next round.

The driver operates on *sets of peers* (the paper's peers index
collaboratively): statuses discovered globally in round ``s`` feed every
peer's round ``s+1``, exactly like the prototype's NDK notification flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import HDKParameters
from ..corpus.collection import DocumentCollection
from ..errors import KeyGenerationError
from ..index.global_index import GlobalKeyIndex, KeyStatus
from ..index.postings import PostingList
from ..net.accounting import Phase
from .generator import LocalHDKGenerator
from .semantic import filter_candidates_by_pmi

__all__ = ["IndexingReport", "PeerIndexer", "run_distributed_indexing"]


@dataclass
class IndexingReport:
    """Per-peer accounting of one full indexing run.

    Attributes:
        peer_name: the reporting peer.
        inserted_postings_by_size: key size -> local postings inserted into
            the global index (the *indexing cost*, Figures 4-5).
        candidate_keys_by_size: key size -> number of proposed keys.
        ndk_keys_by_size: key size -> how many of the peer's proposals were
            (or became) globally non-discriminative.
    """

    peer_name: str
    inserted_postings_by_size: dict[int, int] = field(default_factory=dict)
    candidate_keys_by_size: dict[int, int] = field(default_factory=dict)
    ndk_keys_by_size: dict[int, int] = field(default_factory=dict)

    @property
    def total_inserted_postings(self) -> int:
        return sum(self.inserted_postings_by_size.values())

    @property
    def total_candidate_keys(self) -> int:
        return sum(self.candidate_keys_by_size.values())


class PeerIndexer:
    """One peer's side of the distributed indexing protocol.

    Args:
        peer_name: the peer's registered network name.
        collection: the peer's local documents ``D(P_i)``.
        global_index: the shared global index facade.
        params: the HDK model parameters.
    """

    def __init__(
        self,
        peer_name: str,
        collection: DocumentCollection,
        global_index: GlobalKeyIndex,
        params: HDKParameters,
    ) -> None:
        self.peer_name = peer_name
        self.collection = collection
        self.global_index = global_index
        self.params = params
        self.generator = LocalHDKGenerator(collection, params)
        # Global statuses this peer has learned (acks + notifications).
        self._known_status: dict[frozenset[str], KeyStatus] = {}
        # Keys this peer has already inserted (idempotence for the
        # incremental expansion cascade).
        self._submitted: set[frozenset[str]] = set()
        # Local term document frequencies (for the optional PMI filter).
        self._local_term_dfs: dict[str, int] = {}
        for doc in collection:
            for term in doc.distinct_terms:
                self._local_term_dfs[term] = (
                    self._local_term_dfs.get(term, 0) + 1
                )
        self.report = IndexingReport(peer_name=peer_name)

    def _apply_semantic_filter(
        self, candidates: dict[frozenset[str], PostingList]
    ) -> dict[frozenset[str], PostingList]:
        """Drop low-PMI multi-term candidates when the model asks for it."""
        threshold = self.params.semantic_pmi_threshold
        if threshold is None or len(self.collection) == 0:
            return candidates
        return filter_candidates_by_pmi(
            candidates,
            self._local_term_dfs,
            num_documents=len(self.collection),
            threshold=threshold,
        )

    # -- statistics publication --------------------------------------------------

    def publish_statistics(self) -> None:
        """Publish local term df/cf plus document-count statistics."""
        term_stats: dict[str, tuple[int, int]] = {}
        total_length = 0
        for doc in self.collection:
            total_length += len(doc)
            for term, tf in doc.term_frequencies().items():
                df, cf = term_stats.get(term, (0, 0))
                term_stats[term] = (df + 1, cf + tf)
        self.global_index.publish_term_stats(
            self.peer_name,
            term_stats,
            num_documents=len(self.collection),
            total_doc_length=total_length,
        )

    # -- indexing rounds --------------------------------------------------------------

    def run_round(self, key_size: int) -> dict[frozenset[str], KeyStatus]:
        """Run one generation+insertion round; returns the statuses of the
        keys this peer proposed in the round."""
        if key_size == 1:
            very_frequent = frozenset(self.global_index.very_frequent_terms())
            round_ = self.generator.round_one(very_frequent)
        else:
            ndk_terms = frozenset(
                next(iter(key))
                for key, status in self._known_status.items()
                if len(key) == 1 and status is KeyStatus.NON_DISCRIMINATIVE
            )
            previous_ndk = frozenset(
                key
                for key, status in self._known_status.items()
                if len(key) == key_size - 1
                and status is KeyStatus.NON_DISCRIMINATIVE
            )
            round_ = self.generator.next_round(
                key_size, ndk_terms, previous_ndk
            )
        candidates = self._apply_semantic_filter(round_.candidates)
        statuses: dict[frozenset[str], KeyStatus] = {}
        inserted_postings = 0
        for key, posting_list in candidates.items():
            payload = self._insertion_payload(posting_list)
            status = self.global_index.insert(
                self.peer_name, key, payload, local_df=len(posting_list)
            )
            statuses[key] = status
            self._known_status[key] = status
            self._submitted.add(key)
            inserted_postings += len(payload)
        self.report.candidate_keys_by_size[key_size] = len(candidates)
        self.report.inserted_postings_by_size[key_size] = (
            self.report.inserted_postings_by_size.get(key_size, 0)
            + inserted_postings
        )
        return statuses

    def _insertion_payload(self, posting_list: PostingList) -> PostingList:
        """Locally non-discriminative keys only publish their local
        top-``DF_max`` postings (the paper's NDK posting-list policy)."""
        if len(posting_list) <= self.params.df_max:
            return posting_list
        return posting_list.truncate_top(
            self.params.df_max, self.params.ndk_truncation
        )

    # -- incremental expansion (NDK notifications) ----------------------------------------

    def expand_transitioned_key(
        self, key: frozenset[str]
    ) -> dict[frozenset[str], KeyStatus]:
        """React to an NDK notification for ``key``: generate and insert
        the one-term expansions this peer's local collection supports.

        Returns the statuses of the *newly submitted* expansions (keys the
        peer had already submitted are skipped); callers cascade on the
        expansions that come back non-discriminative.
        """
        self._known_status[key] = KeyStatus.NON_DISCRIMINATIVE
        ndk_terms = frozenset(
            next(iter(k))
            for k, status in self._known_status.items()
            if len(k) == 1 and status is KeyStatus.NON_DISCRIMINATIVE
        )

        def subkey_is_ndk(subkey: frozenset[str]) -> bool:
            return (
                self._known_status.get(subkey)
                is KeyStatus.NON_DISCRIMINATIVE
            )

        candidates = self._apply_semantic_filter(
            self.generator.expansion_candidates(
                key, ndk_terms, subkey_is_ndk
            )
        )
        statuses: dict[frozenset[str], KeyStatus] = {}
        inserted_postings = 0
        for candidate, posting_list in candidates.items():
            if candidate in self._submitted:
                continue
            payload = self._insertion_payload(posting_list)
            status = self.global_index.insert(
                self.peer_name,
                candidate,
                payload,
                local_df=len(posting_list),
            )
            statuses[candidate] = status
            self._known_status[candidate] = status
            self._submitted.add(candidate)
            inserted_postings += len(payload)
        size = len(key) + 1
        self.report.inserted_postings_by_size[size] = (
            self.report.inserted_postings_by_size.get(size, 0)
            + inserted_postings
        )
        self.report.candidate_keys_by_size[size] = (
            self.report.candidate_keys_by_size.get(size, 0)
            + len(statuses)
        )
        return statuses

    @property
    def overlay_id(self) -> int:
        """This peer's overlay id (contributor matching in cascades)."""
        return self.global_index.network.id_of(self.peer_name)

    # -- notification intake -------------------------------------------------------------

    def learn_status(self, key: frozenset[str], status: KeyStatus) -> None:
        """Record a status learned outside this peer's own inserts (e.g.
        an NDK notification for a key that transitioned after another
        peer's insert)."""
        self._known_status[key] = status

    def known_ndk_count(self, key_size: int) -> int:
        """How many size-``key_size`` keys this peer knows to be NDK."""
        return sum(
            1
            for key, status in self._known_status.items()
            if len(key) == key_size
            and status is KeyStatus.NON_DISCRIMINATIVE
        )


def run_incremental_join(
    existing_indexers: list[PeerIndexer],
    joining_indexers: list[PeerIndexer],
    params: HDKParameters,
) -> list[IndexingReport]:
    """Index newly joined peers into an already-built global index.

    This is the paper's actual growth protocol ("peers joining the
    network and increasing the document collection"): the joining peers
    run the normal generation rounds over their local documents, and any
    existing key their inserts push over ``DF_max`` triggers NDK
    notifications — the contributing peers then *expand* the key with
    additional co-occurring terms, which may cascade into further
    transitions until the index is quiescent.

    Because document frequencies only grow, the NDK set is monotone and
    the cascade terminates; the resulting global index is identical to a
    fresh rebuild over the union collection with the same peer partition
    (verified by the integration tests) — with one documented exception:
    when a term's collection frequency crosses ``F_f`` *during* growth, a
    rebuild excludes it from the key vocabulary (the paper's
    collection-dependent stop words "increase with l"), while the live
    system retains the keys indexed before the crossing and existing
    peers keep expanding with them.  The incremental index is then a
    strict superset of the rebuilt one; every common key still agrees
    exactly on status, df, and postings.  Retiring such keys is the
    "adaptive parameters" future work the paper's conclusion sketches.

    Returns the reports of the joining peers.
    """
    if not joining_indexers:
        raise KeyGenerationError("no joining peers")
    global_index = joining_indexers[0].global_index
    global_index.set_phase(Phase.INDEXING)
    # Discard transitions from the original build: its reconciliation
    # already delivered them.
    global_index.drain_transitions()
    for indexer in joining_indexers:
        indexer.publish_statistics()
    for key_size in range(1, params.s_max + 1):
        for indexer in joining_indexers:
            indexer.run_round(key_size)
    _run_expansion_cascade(
        existing_indexers + joining_indexers, global_index, params
    )
    return [indexer.report for indexer in joining_indexers]


def _run_expansion_cascade(
    indexers: list[PeerIndexer],
    global_index: GlobalKeyIndex,
    params: HDKParameters,
) -> None:
    """Process DK->NDK transitions until quiescent.

    Each batch: first every contributor *learns* all transitioned
    statuses (so expansions within the batch see each other's updates),
    then each contributor expands its transitioned keys.  Expansions that
    come back NDK enter the next batch implicitly through the index's
    transition log; already-NDK acks are cascaded explicitly.
    """
    by_overlay_id = {indexer.overlay_id: indexer for indexer in indexers}
    pending = global_index.drain_transitions()
    # Acked-NDK expansions that never transition (inserted already-NDK).
    extra: list[tuple[frozenset[str], frozenset[int]]] = []
    guard = 0
    while pending or extra:
        guard += 1
        if guard > 10_000:
            raise KeyGenerationError(
                "expansion cascade failed to converge"
            )  # pragma: no cover - safety net
        batch = pending + extra
        extra = []
        # Phase 1: disseminate statuses.
        for key, contributors in batch:
            for overlay_id in contributors:
                indexer = by_overlay_id.get(overlay_id)
                if indexer is not None:
                    indexer.learn_status(
                        key, KeyStatus.NON_DISCRIMINATIVE
                    )
        # Phase 2: expansions.
        for key, contributors in batch:
            if len(key) >= params.s_max:
                continue
            for overlay_id in sorted(contributors):
                indexer = by_overlay_id.get(overlay_id)
                if indexer is None:
                    continue
                statuses = indexer.expand_transitioned_key(key)
                for candidate, status in statuses.items():
                    if status is KeyStatus.NON_DISCRIMINATIVE:
                        extra.append(
                            (candidate, frozenset((overlay_id,)))
                        )
        pending = global_index.drain_transitions()


def run_distributed_indexing(
    indexers: list[PeerIndexer],
    params: HDKParameters,
) -> list[IndexingReport]:
    """Execute the full collaborative indexing protocol.

    Phase order matches the prototype: statistics publication first (so
    very frequent terms are known globally), then rounds of increasing key
    size with a *global status reconciliation* after each round — peers
    whose proposed key became NDK through a later peer's insert are brought
    up to date, standing in for asynchronous NDK notifications.

    Returns each peer's :class:`IndexingReport`.
    """
    if not indexers:
        raise KeyGenerationError("no peers to index with")
    global_index = indexers[0].global_index
    global_index.set_phase(Phase.INDEXING)
    for indexer in indexers:
        indexer.publish_statistics()
    for key_size in range(1, params.s_max + 1):
        proposed: dict[frozenset[str], set[int]] = {}
        for position, indexer in enumerate(indexers):
            statuses = indexer.run_round(key_size)
            for key in statuses:
                proposed.setdefault(key, set()).add(position)
            indexer.report.ndk_keys_by_size[key_size] = sum(
                1
                for status in statuses.values()
                if status is KeyStatus.NON_DISCRIMINATIVE
            )
        # Reconciliation: a key inserted early in the round may have turned
        # NDK after later inserts; deliver the final statuses to all
        # proposers (the notification path already logged the messages).
        for key, proposer_positions in proposed.items():
            entry = _entry_of(global_index, key)
            if entry is None:
                continue
            for position in proposer_positions:
                indexers[position].learn_status(key, entry.status)
    return [indexer.report for indexer in indexers]


def _entry_of(global_index: GlobalKeyIndex, key: frozenset[str]):
    """Read a stored entry without logging retrieval traffic (the
    reconciliation piggybacks on the already-logged notifications)."""
    network = global_index.network
    target = network.responsible_peer_for(key)
    for storage in network.storages():
        if storage.peer_id == target:
            return storage.get(key)
    return None
