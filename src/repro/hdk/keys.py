"""Canonical keys and lattice helpers.

A key (Definition 1) is a set of terms; the canonical representation is a
``frozenset[str]``, which is hashable (DHT hashing, dict membership) and
order-free.  The helpers here enumerate the sub-/super-key lattice used by
redundancy filtering and by the retrieval model's query-lattice walk.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from ..errors import KeyGenerationError

__all__ = [
    "make_key",
    "key_size",
    "subkeys_of_size",
    "proper_subkeys",
    "superkeys_within",
    "key_sort_form",
]


def make_key(terms: Iterable[str]) -> frozenset[str]:
    """Build a canonical key from terms.

    Raises:
        KeyGenerationError: for an empty term collection.
    """
    key = frozenset(terms)
    if not key:
        raise KeyGenerationError("a key must contain at least one term")
    return key


def key_size(key: frozenset[str]) -> int:
    """The size of a key — its number of terms (Definition 1)."""
    return len(key)


def key_sort_form(key: frozenset[str]) -> tuple[str, ...]:
    """Deterministic tuple form (sorted terms) for stable iteration."""
    return tuple(sorted(key))


def subkeys_of_size(key: frozenset[str], size: int) -> Iterator[frozenset[str]]:
    """Yield every sub-key of exactly ``size`` terms, deterministically.

    Yields nothing when ``size`` exceeds the key size or is < 1.
    """
    if size < 1 or size > len(key):
        return
    for combo in itertools.combinations(sorted(key), size):
        yield frozenset(combo)


def proper_subkeys(key: frozenset[str]) -> Iterator[frozenset[str]]:
    """Yield every non-empty proper sub-key, smallest sizes first."""
    for size in range(1, len(key)):
        yield from subkeys_of_size(key, size)


def superkeys_within(
    key: frozenset[str], candidate_terms: Iterable[str]
) -> Iterator[frozenset[str]]:
    """Yield ``key ∪ {t}`` for every candidate term not already in the key.

    This is the elementary *key expansion* step triggered by an NDK
    notification: a non-discriminative key grows by one co-occurring term.
    """
    for term in sorted(set(candidate_terms) - key):
        yield key | {term}
