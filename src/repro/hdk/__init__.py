"""The HDK core: the paper's primary contribution (Section 3.1).

- :mod:`repro.hdk.keys` — canonical term-set keys and lattice helpers,
- :mod:`repro.hdk.filters` — size, proximity, and redundancy filtering,
- :mod:`repro.hdk.classify` — DK/NDK classification (Definitions 3-5),
- :mod:`repro.hdk.generator` — per-peer iterative key generation using
  global statuses learned through NDK notifications,
- :mod:`repro.hdk.indexer` — the distributed indexing driver that runs the
  generation rounds against the global index.
"""

from .classify import classify_df, is_discriminative
from .filters import (
    is_intrinsically_discriminative,
    passes_size_filter,
    proximity_candidates,
)
from .generator import GenerationRound, LocalHDKGenerator
from .indexer import (
    IndexingReport,
    PeerIndexer,
    run_distributed_indexing,
    run_incremental_join,
)
from .keys import make_key, subkeys_of_size, superkeys_within

__all__ = [
    "classify_df",
    "is_discriminative",
    "is_intrinsically_discriminative",
    "passes_size_filter",
    "proximity_candidates",
    "GenerationRound",
    "LocalHDKGenerator",
    "IndexingReport",
    "PeerIndexer",
    "run_distributed_indexing",
    "run_incremental_join",
    "make_key",
    "subkeys_of_size",
    "superkeys_within",
]
