"""Semantic key filtering (the paper's first future-work direction).

"The HDK generation process might integrate more semantics about the
indexing keys in order to further reduce the size of the produced global
index" (Section 6).  This module implements the natural instantiation: a
pointwise-mutual-information (PMI) filter that keeps only multi-term
candidate keys whose terms co-occur *more often than chance*.  Random
co-occurrences of frequent terms inside a window — which inflate the key
vocabulary without helping retrieval — score near or below zero and are
dropped.

For a key ``k = {t1..ts}`` over a local collection of ``M`` documents
with document frequencies ``df``:

    pmi(k) = log2( (df(k) / M) / prod_i (df(t_i) / M) )
           = log2( df(k) * M^(s-1) / prod_i df(t_i) )

The filter is *local* (each peer applies it to its own candidates before
insertion), so it composes with the distributed protocol without extra
messages.  Note that it intentionally trades the exhaustiveness guarantee
for index size — exactly the trade the paper sketches.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..errors import KeyGenerationError
from ..index.postings import PostingList

__all__ = ["key_pmi", "filter_candidates_by_pmi"]


def key_pmi(
    key_df: int,
    term_dfs: Mapping[str, int],
    key: frozenset[str],
    num_documents: int,
) -> float:
    """Pointwise mutual information of a multi-term key (base-2).

    Args:
        key_df: the key's document frequency.
        term_dfs: per-term document frequencies.
        key: the key (>= 2 terms).
        num_documents: collection size ``M``.

    Raises:
        KeyGenerationError: for single-term keys (PMI undefined), zero
            frequencies, or an empty collection.
    """
    if len(key) < 2:
        raise KeyGenerationError(
            "PMI is defined for multi-term keys only"
        )
    if num_documents < 1:
        raise KeyGenerationError(
            f"num_documents must be >= 1, got {num_documents}"
        )
    if key_df < 1:
        raise KeyGenerationError(f"key_df must be >= 1, got {key_df}")
    log_joint = math.log2(key_df / num_documents)
    log_independent = 0.0
    for term in key:
        df = term_dfs.get(term, 0)
        if df < 1:
            raise KeyGenerationError(
                f"term {term!r} has zero document frequency"
            )
        log_independent += math.log2(df / num_documents)
    return log_joint - log_independent


def filter_candidates_by_pmi(
    candidates: dict[frozenset[str], PostingList],
    term_dfs: Mapping[str, int],
    num_documents: int,
    threshold: float,
) -> dict[frozenset[str], PostingList]:
    """Drop multi-term candidates whose PMI falls below ``threshold``.

    Single-term candidates pass through untouched.  Returns a new dict.
    """
    if num_documents < 1:
        raise KeyGenerationError(
            f"num_documents must be >= 1, got {num_documents}"
        )
    kept: dict[frozenset[str], PostingList] = {}
    for key, postings in candidates.items():
        if len(key) < 2:
            kept[key] = postings
            continue
        pmi = key_pmi(len(postings), term_dfs, key, num_documents)
        if pmi >= threshold:
            kept[key] = postings
    return kept
