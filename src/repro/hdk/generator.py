"""Per-peer iterative HDK/NDK key generation (paper Section 3.1).

Each peer computes keys over its local collection in rounds of increasing
key size.  Round 1 proposes every local term that is not globally very
frequent.  Round ``s`` proposes term sets of size ``s`` that

1. consist only of *globally non-discriminative* single terms (the only
   terms whose keys still need narrowing),
2. co-occur inside a proximity window of ``w`` tokens (Definition 2), and
3. — when redundancy filtering is on — have **all** their size-``s-1``
   sub-keys globally non-discriminative, so the proposed key is
   *intrinsically* discriminative if it turns out discriminative at all
   (Definition 5).

The global statuses that drive rounds ``s > 1`` are exactly what a peer
learns from the global index's insert acknowledgements and NDK
notifications: "The computation of the local size-s HDKs only requires
knowledge about the global document frequencies of the local size 1 and
size (s-1) NDKs" (Section 3.1).

The subsumption property guarantees locality is safe here: a key that is
locally non-discriminative is globally non-discriminative, and a local HDK
is either a global HDK or a global NDK — never redundant.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..config import HDKParameters
from ..corpus.collection import DocumentCollection
from ..errors import KeyGenerationError
from ..index.postings import Posting, PostingList

__all__ = ["GenerationRound", "LocalHDKGenerator"]


@dataclass
class GenerationRound:
    """The output of one local generation round.

    Attributes:
        key_size: the size ``s`` of the proposed keys.
        candidates: key -> local posting list (full, untruncated).
        enumerated_window_sets: number of distinct window term-sets
            examined (diagnostics; measures proximity-filter work).
    """

    key_size: int
    candidates: dict[frozenset[str], PostingList] = field(
        default_factory=dict
    )
    enumerated_window_sets: int = 0

    @property
    def total_postings(self) -> int:
        """Local postings across all candidates (IS_s numerator for the
        inserted-postings accounting of Figures 4-5)."""
        return sum(len(pl) for pl in self.candidates.values())


class LocalHDKGenerator:
    """Computes candidate keys and local posting lists for one peer.

    Args:
        collection: the peer's local document fraction ``D(P_i)``.
        params: shared HDK model parameters.
    """

    def __init__(
        self, collection: DocumentCollection, params: HDKParameters
    ) -> None:
        self.collection = collection
        self.params = params

    # -- round 1 -----------------------------------------------------------------

    def round_one(self, very_frequent_terms: frozenset[str]) -> GenerationRound:
        """Propose single-term keys with their local posting lists.

        Args:
            very_frequent_terms: globally very frequent terms (collection
                frequency above ``F_f``), excluded from the key vocabulary
                like stop words.
        """
        round_ = GenerationRound(key_size=1)
        for doc in self.collection:
            doc_len = len(doc)
            for term, tf in doc.term_frequencies().items():
                if term in very_frequent_terms:
                    continue
                key = frozenset((term,))
                posting = Posting(
                    doc_id=doc.doc_id,
                    tf=tf,
                    term_tfs=(tf,),
                    doc_len=doc_len,
                )
                existing = round_.candidates.get(key)
                if existing is None:
                    round_.candidates[key] = PostingList([posting])
                else:
                    existing.add(posting)
        return round_

    # -- rounds s > 1 -----------------------------------------------------------------

    def next_round(
        self,
        key_size: int,
        ndk_terms: frozenset[str],
        previous_ndk_keys: frozenset[frozenset[str]],
    ) -> GenerationRound:
        """Propose size-``key_size`` keys by expanding NDKs.

        Args:
            key_size: the size ``s`` of this round (2 <= s <= s_max).
            ndk_terms: single terms whose global single-term key is
                non-discriminative (the expansion vocabulary).
            previous_ndk_keys: size-``s-1`` keys known to be globally
                non-discriminative; with redundancy filtering on, every
                size-``s-1`` sub-key of a proposed key must be in this set.

        Raises:
            KeyGenerationError: when ``key_size`` violates size filtering.
        """
        if key_size < 2:
            raise KeyGenerationError(
                f"next_round requires key_size >= 2, got {key_size}"
            )
        if key_size > self.params.s_max:
            raise KeyGenerationError(
                f"key_size {key_size} exceeds s_max {self.params.s_max} "
                "(size filtering)"
            )
        round_ = GenerationRound(key_size=key_size)
        window_size = self.params.window_size
        check_subkeys = self.params.redundancy_filtering
        # Per-document accumulation keyed by candidate.
        for doc in self.collection:
            doc_candidates = self._document_candidates(
                doc.tokens,
                window_size,
                key_size,
                ndk_terms,
                previous_ndk_keys if check_subkeys else None,
                round_,
            )
            if not doc_candidates:
                continue
            doc_len = len(doc)
            frequencies = doc.term_frequencies()
            for key in doc_candidates:
                sorted_terms = sorted(key)
                term_tfs = tuple(frequencies[t] for t in sorted_terms)
                posting = Posting(
                    doc_id=doc.doc_id,
                    tf=min(term_tfs),
                    term_tfs=term_tfs,
                    doc_len=doc_len,
                )
                existing = round_.candidates.get(key)
                if existing is None:
                    round_.candidates[key] = PostingList([posting])
                else:
                    existing.add(posting)
        return round_

    def _document_candidates(
        self,
        tokens: tuple[str, ...],
        window_size: int,
        key_size: int,
        ndk_terms: frozenset[str],
        previous_ndk_keys: frozenset[frozenset[str]] | None,
        round_: GenerationRound,
    ) -> set[frozenset[str]]:
        """Enumerate this document's size-``key_size`` candidates.

        Slides the window, collects distinct NDK-term sets, and expands
        each set into its ``key_size``-subsets, applying the redundancy
        check when ``previous_ndk_keys`` is given.
        """
        candidates: set[frozenset[str]] = set()
        seen_window_sets: set[frozenset[str]] = set()
        n = len(tokens)
        effective_window = min(window_size, n) if n else 0
        if effective_window == 0:
            return candidates
        rejected: set[frozenset[str]] = set()
        for start in range(n - effective_window + 1):
            window = tokens[start : start + effective_window]
            window_terms = frozenset(
                t for t in window if t in ndk_terms
            )
            if len(window_terms) < key_size:
                continue
            if window_terms in seen_window_sets:
                continue
            seen_window_sets.add(window_terms)
            round_.enumerated_window_sets += 1
            for combo in itertools.combinations(
                sorted(window_terms), key_size
            ):
                key = frozenset(combo)
                if key in candidates or key in rejected:
                    continue
                if previous_ndk_keys is not None and not self._subkeys_all_ndk(
                    combo, previous_ndk_keys
                ):
                    rejected.add(key)
                    continue
                candidates.add(key)
        return candidates

    @staticmethod
    def _subkeys_all_ndk(
        sorted_terms: tuple[str, ...],
        previous_ndk_keys: frozenset[frozenset[str]],
    ) -> bool:
        """True iff every (size-1)-smaller sub-key is a known global NDK."""
        for drop_index in range(len(sorted_terms)):
            subkey = frozenset(
                sorted_terms[:drop_index] + sorted_terms[drop_index + 1 :]
            )
            if subkey not in previous_ndk_keys:
                return False
        return True

    # -- key expansion (incremental joins) -------------------------------------------

    def expansion_candidates(
        self,
        base_key: frozenset[str],
        ndk_terms: frozenset[str],
        subkey_is_ndk,
    ) -> dict[frozenset[str], PostingList]:
        """Expand one newly non-discriminative key by one term.

        This is the reaction to an NDK notification (Section 3.1): the
        peer grows ``base_key`` with every non-discriminative term that
        co-occurs with all of the key's terms inside a proximity window of
        its local documents, keeping — under redundancy filtering — only
        candidates whose every same-size sub-key is non-discriminative.

        Args:
            base_key: the key that became globally non-discriminative.
            ndk_terms: current globally non-discriminative single terms.
            subkey_is_ndk: predicate answering whether a key of size
                ``len(base_key)`` is known globally non-discriminative
                (used for the redundancy check of the expanded keys).

        Returns:
            candidate key -> local posting list (full, untruncated).
        """
        if not base_key:
            raise KeyGenerationError("cannot expand the empty key")
        new_size = len(base_key) + 1
        if new_size > self.params.s_max:
            return {}
        window_size = self.params.window_size
        check = self.params.redundancy_filtering
        results: dict[frozenset[str], PostingList] = {}
        rejected: set[frozenset[str]] = set()
        for doc in self.collection:
            tokens = doc.tokens
            n = len(tokens)
            effective_window = min(window_size, n) if n else 0
            if effective_window == 0:
                continue
            doc_candidates: set[frozenset[str]] = set()
            for start in range(n - effective_window + 1):
                window_terms = frozenset(
                    tokens[start : start + effective_window]
                )
                if not base_key <= window_terms:
                    continue
                partners = (
                    window_terms & ndk_terms
                ) - base_key
                for partner in partners:
                    candidate = base_key | {partner}
                    if candidate in doc_candidates or candidate in rejected:
                        continue
                    if check and not self._expansion_subkeys_ndk(
                        candidate, base_key, subkey_is_ndk
                    ):
                        rejected.add(candidate)
                        continue
                    doc_candidates.add(candidate)
            if not doc_candidates:
                continue
            doc_len = len(doc)
            frequencies = doc.term_frequencies()
            for candidate in doc_candidates:
                sorted_terms = sorted(candidate)
                term_tfs = tuple(frequencies[t] for t in sorted_terms)
                posting = Posting(
                    doc_id=doc.doc_id,
                    tf=min(term_tfs),
                    term_tfs=term_tfs,
                    doc_len=doc_len,
                )
                existing = results.get(candidate)
                if existing is None:
                    results[candidate] = PostingList([posting])
                else:
                    existing.add(posting)
        return results

    @staticmethod
    def _expansion_subkeys_ndk(
        candidate: frozenset[str],
        base_key: frozenset[str],
        subkey_is_ndk,
    ) -> bool:
        """All size-``len(base_key)`` sub-keys of the candidate must be
        non-discriminative; the base key itself already is."""
        sorted_terms = tuple(sorted(candidate))
        for drop_index in range(len(sorted_terms)):
            subkey = frozenset(
                sorted_terms[:drop_index] + sorted_terms[drop_index + 1 :]
            )
            if subkey == base_key:
                continue
            if not subkey_is_ndk(subkey):
                return False
        return True

    # -- reference computation (tests / exhaustiveness checks) ----------------------

    def local_document_frequency(self, key: frozenset[str]) -> int:
        """Exact local df of a key under proximity semantics: the number
        of local documents with at least one window containing all terms.

        Reference implementation (O(docs x windows)); used by tests to
        validate the incremental enumeration.
        """
        if not key:
            raise KeyGenerationError("empty key")
        window_size = self.params.window_size
        count = 0
        for doc in self.collection:
            if self._document_contains(doc.tokens, key, window_size):
                count += 1
        return count

    @staticmethod
    def _document_contains(
        tokens: tuple[str, ...], key: frozenset[str], window_size: int
    ) -> bool:
        n = len(tokens)
        effective_window = min(window_size, n) if n else 0
        if effective_window == 0:
            return False
        for start in range(n - effective_window + 1):
            window_terms = set(tokens[start : start + effective_window])
            if key <= window_terms:
                return True
        return False
