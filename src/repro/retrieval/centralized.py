"""The centralized single-term BM25 baseline.

Stands in for the Terrier engine the paper compares against in Figure 7: a
single-node inverted index over the whole collection with Okapi BM25
ranking and disjunctive (OR) query semantics.
"""

from __future__ import annotations

from ..corpus.collection import DocumentCollection
from ..corpus.querylog import Query
from ..index.bm25 import BM25Scorer
from ..index.inverted import LocalInvertedIndex
from ..errors import RetrievalError
from .ranking import RankedResult

__all__ = ["CentralizedBM25Engine"]


class CentralizedBM25Engine:
    """A whole-collection, single-node BM25 retrieval engine."""

    def __init__(
        self,
        collection: DocumentCollection,
        k1: float = 1.2,
        b: float = 0.75,
    ) -> None:
        if len(collection) == 0:
            raise RetrievalError(
                "cannot build a retrieval engine over an empty collection"
            )
        self.index = LocalInvertedIndex(collection)
        self.scorer = BM25Scorer(
            num_documents=self.index.num_documents(),
            average_doc_length=self.index.average_document_length(),
            k1=k1,
            b=b,
        )

    def search(self, query: Query, k: int = 20) -> list[RankedResult]:
        """Return the top-``k`` documents under BM25, OR semantics.

        Ties are broken by ascending document id for determinism.
        """
        if k < 1:
            raise RetrievalError(f"k must be >= 1, got {k}")
        scores: dict[int, float] = {}
        doc_lens: dict[int, int] = {}
        dfs = {
            term: self.index.document_frequency(term)
            for term in query.terms
        }
        for term in query.terms:
            if term not in self.index:
                continue
            for posting in self.index.posting_list(term):
                contribution = self.scorer.term_score(
                    posting.tf, posting.doc_len, dfs[term]
                )
                scores[posting.doc_id] = (
                    scores.get(posting.doc_id, 0.0) + contribution
                )
                doc_lens[posting.doc_id] = posting.doc_len
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [
            RankedResult(doc_id=doc_id, score=score)
            for doc_id, score in ranked[:k]
        ]

    def matching_documents(self, query: Query) -> set[int]:
        """All documents containing at least one query term (the union
        answer set; used by tests and the query-log hit filter)."""
        matches: set[int] = set()
        for term in query.terms:
            if term in self.index:
                matches.update(self.index.posting_list(term).doc_ids())
        return matches
