"""HDK retrieval: the query-lattice walk (paper Section 3.2).

A query is treated as a one-document collection; the engine identifies, in
the lattice of the query's term subsets (size filtering caps the depth at
``s_max``), the term sets that exist in the global index as HDKs or NDKs:

- subsets of size 1 are looked up first;
- a subset found **discriminative** contributes its full posting list and
  is *not* expanded — any superset is subsumed by it (its answer set is a
  subset, recoverable by local post-processing);
- a subset found **non-discriminative** contributes its truncated
  top-``DF_max`` posting list and *is* expanded: larger subsets built from
  it may be intrinsically discriminative and thus indexed;
- a subset absent from the index is not expanded (by construction of the
  key vocabulary no superset can be indexed either).

The fetched posting lists are merged by set union and ranked by the
distributed BM25-style ranker.  The number of keys looked up is the
``n_k`` of the scalability analysis, bounded by ``2^|q| - 1`` and in
practice close to 4 for web queries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..config import HDKParameters
from ..corpus.querylog import Query
from ..errors import RetrievalError
from ..index.bm25 import BM25Scorer
from ..index.global_index import GlobalKeyIndex, KeyStatus
from ..index.postings import Posting
from ..net.accounting import Phase
from .ranking import DistributedRanker, RankedResult

__all__ = ["HDKSearchResult", "HDKRetrievalEngine"]


@dataclass
class HDKSearchResult:
    """The outcome of one HDK query.

    Attributes:
        query: the executed query.
        results: top-k ranked documents.
        keys_looked_up: ``n_k`` — lattice subsets sent to the index.
        keys_found: how many lookups hit an indexed key.
        postings_transferred: total postings fetched (Figure 6's y-axis).
        dk_keys: lookups that returned discriminative keys.
        ndk_keys: lookups that returned non-discriminative (truncated)
            keys.
    """

    query: Query
    results: list[RankedResult] = field(default_factory=list)
    keys_looked_up: int = 0
    keys_found: int = 0
    postings_transferred: int = 0
    dk_keys: int = 0
    ndk_keys: int = 0


class HDKRetrievalEngine:
    """Query side of the HDK model.

    Args:
        global_index: the populated global key index.
        params: the HDK parameters used at indexing time.
    """

    def __init__(
        self, global_index: GlobalKeyIndex, params: HDKParameters
    ) -> None:
        self.global_index = global_index
        self.params = params

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> HDKSearchResult:
        """Execute ``query`` from ``source_peer_name``; returns the ranked
        top-``k`` with full traffic accounting."""
        if k < 1:
            raise RetrievalError(f"k must be >= 1, got {k}")
        self.global_index.set_phase(Phase.RETRIEVAL)
        result = HDKSearchResult(query=query)
        fetched: list[tuple[tuple[str, ...], Posting]] = []
        # Subsets whose status allows supersets to be indexed.
        expandable: set[frozenset[str]] = set()
        query_terms = sorted(query.term_set)
        max_size = min(len(query_terms), self.params.s_max)
        for size in range(1, max_size + 1):
            for subset in self._candidate_subsets(
                query_terms, size, expandable
            ):
                entry = self.global_index.lookup(source_peer_name, subset)
                result.keys_looked_up += 1
                if entry is None:
                    continue
                result.keys_found += 1
                result.postings_transferred += len(entry.postings)
                key_terms = tuple(sorted(subset))
                for posting in entry.postings:
                    fetched.append((key_terms, posting))
                if entry.status is KeyStatus.NON_DISCRIMINATIVE:
                    result.ndk_keys += 1
                    expandable.add(subset)
                else:
                    result.dk_keys += 1
        result.results = self._rank(fetched, query, k)
        return result

    def _candidate_subsets(
        self,
        query_terms: list[str],
        size: int,
        expandable: set[frozenset[str]],
    ) -> list[frozenset[str]]:
        """Subsets of ``size`` worth looking up.

        Size-1 subsets are always candidates.  A larger subset is a
        candidate only when **all** its immediate sub-subsets are
        expandable (returned NDK): mirrors redundancy filtering — indexed
        keys of size s have all (s-1)-sub-keys non-discriminative — so no
        other subset can exist in the index.  When redundancy filtering is
        off, any subset with at least one expandable sub-subset qualifies.
        """
        if size == 1:
            return [frozenset((t,)) for t in query_terms]
        require_all = self.params.redundancy_filtering
        candidates: list[frozenset[str]] = []
        for combo in itertools.combinations(query_terms, size):
            subs = [
                frozenset(combo[:i] + combo[i + 1 :])
                for i in range(len(combo))
            ]
            if require_all:
                qualified = all(sub in expandable for sub in subs)
            else:
                qualified = any(sub in expandable for sub in subs)
            if qualified:
                candidates.append(frozenset(combo))
        return candidates

    def _rank(
        self,
        fetched: list[tuple[tuple[str, ...], Posting]],
        query: Query,
        k: int,
    ) -> list[RankedResult]:
        """Merge (set union) and rank with the distributed ranker."""
        if not fetched:
            return []
        index = self.global_index
        num_documents = max(1, index.num_documents)
        average_doc_length = index.average_document_length or 1.0
        scorer = BM25Scorer(
            num_documents=num_documents,
            average_doc_length=average_doc_length,
        )
        term_dfs = {
            term: index.term_document_frequency(term)
            for term in query.terms
        }
        ranker = DistributedRanker(scorer, term_dfs)
        return ranker.rank(fetched, k)
