"""Retrieval-quality metrics.

Figure 7 of the paper reports the *overlap on top-20 documents* between
the HDK engine and the centralized BM25 engine, in percent.  This module
implements that metric plus standard precision against a reference
ranking.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import RetrievalError
from .ranking import RankedResult

__all__ = ["top_k_overlap", "precision_at_k", "mean_overlap"]


def _doc_ids(results: Sequence[RankedResult] | Sequence[int]) -> list[int]:
    ids: list[int] = []
    for item in results:
        if isinstance(item, RankedResult):
            ids.append(item.doc_id)
        else:
            ids.append(int(item))
    return ids


def top_k_overlap(
    results_a: Sequence[RankedResult] | Sequence[int],
    results_b: Sequence[RankedResult] | Sequence[int],
    k: int = 20,
) -> float:
    """Percentage overlap between the top-``k`` of two result lists.

    ``|top_k(A) ∩ top_k(B)| / k * 100`` — the paper's Figure 7 metric.
    Two empty lists overlap fully (100.0).
    """
    if k < 1:
        raise RetrievalError(f"k must be >= 1, got {k}")
    top_a = set(_doc_ids(results_a)[:k])
    top_b = set(_doc_ids(results_b)[:k])
    if not top_a and not top_b:
        return 100.0
    return 100.0 * len(top_a & top_b) / k


def precision_at_k(
    results: Sequence[RankedResult] | Sequence[int],
    relevant: set[int],
    k: int,
) -> float:
    """Fraction of the top-``k`` results that are in ``relevant``."""
    if k < 1:
        raise RetrievalError(f"k must be >= 1, got {k}")
    top = _doc_ids(results)[:k]
    if not top:
        return 0.0
    return sum(1 for doc_id in top if doc_id in relevant) / k


def mean_overlap(overlaps: Sequence[float]) -> float:
    """Mean of per-query overlap percentages (one Figure 7 data point)."""
    if not overlaps:
        raise RetrievalError("cannot average an empty overlap sequence")
    return sum(overlaps) / len(overlaps)
