"""Distributed result ranking.

The prototype "integrates a solution for distributed content-based
ranking": posting payloads carry per-term frequencies and document
lengths, and the query peer combines them with globally published term
statistics to compute BM25-style scores without fetching documents.  The
:class:`DistributedRanker` reproduces that final aggregation step.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RetrievalError
from ..index.bm25 import BM25Scorer
from ..index.postings import Posting

__all__ = ["RankedResult", "DistributedRanker"]


@dataclass(frozen=True)
class RankedResult:
    """One ranked document."""

    doc_id: int
    score: float


class DistributedRanker:
    """Aggregates fetched postings into a BM25-ranked result list.

    Args:
        scorer: a BM25 scorer configured with the *global* collection
            statistics (document count, average length) published during
            indexing.
        term_dfs: global document frequency of each query term.
    """

    def __init__(self, scorer: BM25Scorer, term_dfs: dict[str, int]) -> None:
        self.scorer = scorer
        self.term_dfs = dict(term_dfs)

    def rank(
        self,
        fetched: list[tuple[tuple[str, ...], Posting]],
        k: int,
    ) -> list[RankedResult]:
        """Rank the union of fetched postings.

        Args:
            fetched: (key terms in sorted order, posting) pairs as returned
                by the lattice walk; a document may appear under several
                keys, in which case its per-term evidence is merged.
            k: result list depth.

        Returns:
            Top-``k`` :class:`RankedResult`, ties broken by ascending
            document id.
        """
        if k < 1:
            raise RetrievalError(f"k must be >= 1, got {k}")
        # doc -> term -> tf, merged across keys.
        evidence: dict[int, dict[str, int]] = {}
        doc_lens: dict[int, int] = {}
        for key_terms, posting in fetched:
            term_map = evidence.setdefault(posting.doc_id, {})
            doc_lens[posting.doc_id] = max(
                doc_lens.get(posting.doc_id, 0), posting.doc_len
            )
            if posting.term_tfs:
                for index, term in enumerate(key_terms):
                    tf = posting.term_tfs[index]
                    term_map[term] = max(term_map.get(term, 0), tf)
            elif len(key_terms) == 1:
                term_map[key_terms[0]] = max(
                    term_map.get(key_terms[0], 0), posting.tf
                )
        scored: list[RankedResult] = []
        for doc_id, term_map in evidence.items():
            score = self.scorer.score_document(
                term_map, doc_lens.get(doc_id, 0), self.term_dfs
            )
            scored.append(RankedResult(doc_id=doc_id, score=score))
        scored.sort(key=lambda r: (-r.score, r.doc_id))
        return scored[:k]
