"""Retrieval engines and evaluation metrics.

- :mod:`repro.retrieval.query` — query processing (the same pipeline as
  indexing, Section 3.2 treats a query as a one-document collection),
- :mod:`repro.retrieval.centralized` — the centralized BM25 baseline
  (the paper's Terrier stand-in for Figure 7),
- :mod:`repro.retrieval.single_term` — the distributed single-term
  baseline whose retrieval traffic grows with the collection (Figure 6),
- :mod:`repro.retrieval.hdk_engine` — HDK retrieval: the query-lattice
  walk with bounded per-key transfers,
- :mod:`repro.retrieval.ranking` — distributed BM25-style result ranking
  from fetched posting payloads,
- :mod:`repro.retrieval.metrics` — top-k overlap and related measures.
"""

from .cache import CacheStats, CachingSearchEngine, QueryResultCache
from .centralized import CentralizedBM25Engine
from .hdk_engine import HDKRetrievalEngine, HDKSearchResult
from .metrics import precision_at_k, top_k_overlap
from .query import QueryProcessor
from .ranking import DistributedRanker, RankedResult
from .single_term import (
    STSearchOutcome,
    SingleTermIndexer,
    SingleTermRetrievalEngine,
)
from .single_term_bloom import BloomSearchOutcome, BloomSingleTermEngine
from .topk import DistributedTopKEngine, TopKOutcome

__all__ = [
    "DistributedTopKEngine",
    "TopKOutcome",
    "CacheStats",
    "CachingSearchEngine",
    "QueryResultCache",
    "STSearchOutcome",
    "CentralizedBM25Engine",
    "HDKRetrievalEngine",
    "HDKSearchResult",
    "precision_at_k",
    "top_k_overlap",
    "QueryProcessor",
    "DistributedRanker",
    "RankedResult",
    "SingleTermIndexer",
    "SingleTermRetrievalEngine",
    "BloomSearchOutcome",
    "BloomSingleTermEngine",
]
