"""Query-result caching.

Both [15] and [17] in the paper's related work propose caching (alongside
top-k joins and Bloom filters) to reduce search cost for repeated
queries.  This module provides two layers:

- :class:`QueryResultCache` — a payload-agnostic LRU keyed by the
  query's canonical term set; :class:`repro.engine.service.SearchService`
  uses it to serve repeated queries locally at zero network cost,
  whatever backend produced the result.
- :class:`CachingSearchEngine` — the legacy wrapper around any engine
  with a ``search(query, k)``-style interface returning
  :class:`HDKSearchResult`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..corpus.querylog import Query
from ..errors import RetrievalError
from .hdk_engine import HDKSearchResult

__all__ = ["CacheStats", "CachingSearchEngine", "QueryResultCache"]


@dataclass
class CacheStats:
    """Hit/miss counters plus the traffic the cache avoided."""

    hits: int = 0
    misses: int = 0
    postings_saved: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _CachedPayload:
    payload: Any
    k: int
    postings: int


class QueryResultCache:
    """A payload-agnostic LRU query cache.

    Keys are canonical term sets; payloads are whatever the caller
    computed for the query (any backend's response type).  A cached
    payload is served only when it was computed with a depth of at least
    the requested ``k`` (a deeper ranking prefix-matches a shallower
    request); shallower entries count as misses and are replaced by
    :meth:`put`.

    Thread-safe: entries, LRU order, and the hit/miss counters are all
    guarded by an internal lock, so ``hits + misses`` always equals the
    number of lookups no matter how many threads hammer the cache.

    Args:
        capacity: maximum number of cached query results.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise RetrievalError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[frozenset[str], _CachedPayload] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, query: Query, k: int) -> Any | None:
        """Return the cached payload for ``query`` at depth >= ``k``,
        or ``None`` (both outcomes update the hit/miss counters)."""
        payload = self.try_hit(query, k)
        if payload is None:
            self.note_miss()
        return payload

    def try_hit(self, query: Query, k: int) -> Any | None:
        """Like :meth:`get`, but an absent or too-shallow entry counts
        *nothing*: the caller decides whether it is a miss (pair with
        :meth:`note_miss`) or a deferred retry — the single-flight path
        of the search service, where a caller about to wait on an
        identical in-flight query must not count a miss it never pays."""
        if k < 1:
            raise RetrievalError(f"k must be >= 1, got {k}")
        with self._lock:
            entry = self._entries.get(query.term_set)
            if entry is not None and entry.k >= k:
                self._entries.move_to_end(query.term_set)
                self.stats.hits += 1
                self.stats.postings_saved += entry.postings
                return entry.payload
            return None

    def note_miss(self) -> None:
        """Count one miss (the counterpart of :meth:`try_hit`)."""
        with self._lock:
            self.stats.misses += 1

    def put(
        self,
        query: Query,
        k: int,
        payload: Any,
        postings_transferred: int = 0,
    ) -> None:
        """Cache ``payload`` for ``query``; ``postings_transferred`` is
        the traffic a future hit will have saved (for the stats)."""
        with self._lock:
            existing = self._entries.get(query.term_set)
            if existing is not None and existing.k > k:
                # A deeper ranking already serves this term set (e.g. a
                # concurrent deeper query finished first); a shallower
                # payload must never downgrade it — deep entries
                # prefix-serve every shallower request.
                self._entries.move_to_end(query.term_set)
                return
            self._entries[query.term_set] = _CachedPayload(
                payload=payload, k=k, postings=postings_transferred
            )
            self._entries.move_to_end(query.term_set)
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def remove(self, term_set: frozenset[str]) -> bool:
        """Drop the single entry cached under ``term_set``, if any.

        The targeted form of :meth:`invalidate`: in-network path caches
        (:mod:`repro.overlay`) evict exactly the key an insert just
        superseded instead of flushing everything.

        Returns True when an entry was removed.
        """
        with self._lock:
            return self._entries.pop(term_set, None) is not None

    def invalidate(self) -> None:
        """Drop every cached entry (call after the index changes)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CachingSearchEngine:
    """LRU cache in front of a :class:`P2PSearchEngine`-like object.

    A thin HDK-result-shaped wrapper over :class:`QueryResultCache`
    (one implementation of the LRU/prefix-match/stats mechanics).

    Args:
        engine: any object exposing ``search(query, k=...) ->
            HDKSearchResult`` (both engine modes qualify).
        capacity: maximum number of cached query results.
    """

    def __init__(self, engine, capacity: int = 256) -> None:
        self._engine = engine
        self._cache = QueryResultCache(capacity)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def search(self, query: Query, k: int = 20) -> HDKSearchResult:
        """Serve from cache when possible; delegate otherwise.

        A cached result is reused when it was computed with a depth of at
        least ``k`` (a deeper cached ranking prefixes-matches a shallower
        request); shallower entries are treated as misses and replaced.
        """
        cached = self._cache.get(query, k)
        if cached is not None:
            clipped = HDKSearchResult(query=query)
            clipped.results = cached.results[:k]
            clipped.keys_looked_up = cached.keys_looked_up
            clipped.keys_found = cached.keys_found
            clipped.dk_keys = cached.dk_keys
            clipped.ndk_keys = cached.ndk_keys
            clipped.postings_transferred = 0  # served locally
            return clipped
        result = self._engine.search(query, k=k)
        self._cache.put(query, k, result, result.postings_transferred)
        return result

    def invalidate(self) -> None:
        """Drop every cached entry (call after the index changes, e.g.
        an incremental join)."""
        self._cache.invalidate()

    def __len__(self) -> int:
        return len(self._cache)
