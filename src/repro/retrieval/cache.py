"""Query-result caching.

Both [15] and [17] in the paper's related work propose caching (alongside
top-k joins and Bloom filters) to reduce search cost for repeated
queries.  This module provides an LRU result cache keyed by the query's
canonical term set, wrapping any engine with a ``search(query, k)``-style
interface: repeated queries are served locally at zero network cost.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..corpus.querylog import Query
from ..errors import RetrievalError
from .hdk_engine import HDKSearchResult

__all__ = ["CacheStats", "CachingSearchEngine"]


@dataclass
class CacheStats:
    """Hit/miss counters plus the traffic the cache avoided."""

    hits: int = 0
    misses: int = 0
    postings_saved: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _CachedEntry:
    result: HDKSearchResult
    k: int


class CachingSearchEngine:
    """LRU cache in front of a :class:`P2PSearchEngine`-like object.

    Args:
        engine: any object exposing ``search(query, k=...) ->
            HDKSearchResult`` (both engine modes qualify).
        capacity: maximum number of cached query results.
    """

    def __init__(self, engine, capacity: int = 256) -> None:
        if capacity < 1:
            raise RetrievalError(f"capacity must be >= 1, got {capacity}")
        self._engine = engine
        self._capacity = capacity
        self._entries: OrderedDict[frozenset[str], _CachedEntry] = (
            OrderedDict()
        )
        self.stats = CacheStats()

    def search(self, query: Query, k: int = 20) -> HDKSearchResult:
        """Serve from cache when possible; delegate otherwise.

        A cached result is reused when it was computed with a depth of at
        least ``k`` (a deeper cached ranking prefixes-matches a shallower
        request); shallower entries are treated as misses and replaced.
        """
        if k < 1:
            raise RetrievalError(f"k must be >= 1, got {k}")
        cache_key = query.term_set
        cached = self._entries.get(cache_key)
        if cached is not None and cached.k >= k:
            self._entries.move_to_end(cache_key)
            self.stats.hits += 1
            self.stats.postings_saved += (
                cached.result.postings_transferred
            )
            clipped = HDKSearchResult(query=query)
            clipped.results = cached.result.results[:k]
            clipped.keys_looked_up = cached.result.keys_looked_up
            clipped.keys_found = cached.result.keys_found
            clipped.dk_keys = cached.result.dk_keys
            clipped.ndk_keys = cached.result.ndk_keys
            clipped.postings_transferred = 0  # served locally
            return clipped
        self.stats.misses += 1
        result = self._engine.search(query, k=k)
        self._entries[cache_key] = _CachedEntry(result=result, k=k)
        self._entries.move_to_end(cache_key)
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return result

    def invalidate(self) -> None:
        """Drop every cached entry (call after the index changes, e.g.
        an incremental join)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
