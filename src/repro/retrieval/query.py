"""Query processing.

Queries must pass through the *same* pre-processing as documents (stop
words, stemming) so query terms live in the index vocabulary; Section 3.2
then treats the processed query as a one-document collection over which
the key lattice is explored.
"""

from __future__ import annotations

from ..corpus.querylog import Query
from ..errors import RetrievalError
from ..text.pipeline import TextPipeline

__all__ = ["QueryProcessor"]


class QueryProcessor:
    """Turns raw query strings into canonical term sets.

    Args:
        pipeline: the text pipeline; must be configured identically to the
            one used at indexing time.
    """

    def __init__(self, pipeline: TextPipeline | None = None) -> None:
        self._pipeline = pipeline or TextPipeline()

    def process(self, raw_query: str, query_id: int = 0) -> Query:
        """Process ``raw_query`` into a :class:`Query`.

        Duplicate terms collapse (keys are term *sets*).

        Raises:
            RetrievalError: when no term survives pre-processing.
        """
        terms = tuple(sorted(set(self._pipeline.process(raw_query))))
        if not terms:
            raise RetrievalError(
                f"query {raw_query!r} is empty after pre-processing"
            )
        return Query(query_id=query_id, terms=terms)

    def process_terms(
        self, terms: tuple[str, ...], query_id: int = 0
    ) -> Query:
        """Wrap already-processed terms (query-log replay) as a Query."""
        canonical = tuple(sorted(set(terms)))
        if not canonical:
            raise RetrievalError("empty term tuple")
        return Query(query_id=query_id, terms=canonical)
