"""Distributed top-k retrieval over a single-term index.

The paper's related work cites progressive distributed top-k retrieval
([2] Balke, Nejdl, Siberski, Thaden, ICDE 2005) as "a viable solution for
bandwidth scalability, however the open problem is related to the
resulting retrieval performance".  This module implements the classic
Threshold Algorithm (TA) instantiation of that idea over the same
single-term DHT index the naive baseline uses:

- the peer responsible for each query term serves its posting list in
  descending *score contribution* order (sorted access), a batch at a
  time;
- every newly seen document is completed by random access to the other
  terms' entries (one posting-equivalent each);
- the initiator stops as soon as the current k-th best aggregate score
  reaches the threshold — the sum of the score frontiers — which
  guarantees the exact BM25 top-k.

Traffic is the number of postings served through sorted and random
access; for small ``k`` this is far below shipping full posting lists,
but it still grows with the collection (deeper frontiers are needed as
lists lengthen), unlike HDK's collection-independent bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus.querylog import Query
from ..errors import RetrievalError
from ..index.bm25 import BM25Scorer
from ..net.accounting import Phase
from ..net.messages import MessageKind
from ..net.network import P2PNetwork
from .ranking import RankedResult
from .single_term import STEntry

__all__ = ["TopKOutcome", "DistributedTopKEngine"]


@dataclass
class TopKOutcome:
    """Result + traffic of one TA top-k query."""

    results: list[RankedResult]
    postings_transferred: int
    sorted_accesses: int
    random_accesses: int
    rounds: int
    #: Query terms whose responsible peer held a posting list.
    terms_found: int = 0


class DistributedTopKEngine:
    """Threshold-Algorithm top-k over the single-term DHT index.

    Requires :class:`repro.retrieval.single_term.SingleTermIndexer` runs
    to have populated the network.

    Args:
        network: the indexed network.
        num_documents: global document count (BM25).
        average_doc_length: global average document length (BM25).
        batch_size: postings fetched per term per round of sorted access.
    """

    def __init__(
        self,
        network: P2PNetwork,
        num_documents: int,
        average_doc_length: float,
        batch_size: int = 10,
    ) -> None:
        if batch_size < 1:
            raise RetrievalError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.network = network
        self.batch_size = batch_size
        self.scorer = BM25Scorer(
            num_documents=num_documents,
            average_doc_length=average_doc_length,
        )

    # -- internals ----------------------------------------------------------------

    def _entry_of(self, term: str) -> STEntry | None:
        target = self.network.responsible_peer_for(term)
        value = self.network.storage_by_id(target).get(term)
        return value if isinstance(value, STEntry) else None

    def _log_transfer(self, source: str, term: str, postings: int) -> None:
        target_id = self.network.responsible_peer_for(term)
        target_name = next(
            name
            for name in self.network.peer_names()
            if self.network.id_of(name) == target_id
        )
        self.network.transfer(
            target_name,
            source,
            postings=postings,
            kind=MessageKind.RESPONSE,
            key_repr=f"topk({term})",
        )

    # -- public API ----------------------------------------------------------------

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> TopKOutcome:
        """Exact BM25 top-``k`` via the Threshold Algorithm."""
        if k < 1:
            raise RetrievalError(f"k must be >= 1, got {k}")
        self.network.accounting.set_phase(Phase.RETRIEVAL)
        entries: dict[str, STEntry] = {}
        for term in query.terms:
            entry = self._entry_of(term)
            if entry is not None:
                entries[term] = entry
        if not entries:
            return TopKOutcome(
                results=[],
                postings_transferred=0,
                sorted_accesses=0,
                random_accesses=0,
                rounds=0,
                terms_found=0,
            )
        dfs = {term: len(entry.postings) for term, entry in entries.items()}
        # Pre-sort each list by BM25 contribution (the responsible peer
        # maintains this order; sorting cost is local, not traffic).
        sorted_lists: dict[str, list[tuple[float, int, int, int]]] = {}
        for term, entry in entries.items():
            scored = [
                (
                    self.scorer.term_score(p.tf, p.doc_len, dfs[term]),
                    p.doc_id,
                    p.tf,
                    p.doc_len,
                )
                for p in entry.postings
            ]
            scored.sort(key=lambda item: (-item[0], item[1]))
            sorted_lists[term] = scored
        positions = {term: 0 for term in entries}
        seen_scores: dict[int, float] = {}
        doc_term_scores: dict[int, dict[str, float]] = {}
        sorted_accesses = 0
        random_accesses = 0
        rounds = 0
        exhausted: set[str] = set()
        while len(exhausted) < len(entries):
            rounds += 1
            newly_seen: set[int] = set()
            for term in entries:
                if term in exhausted:
                    continue
                scored = sorted_lists[term]
                start = positions[term]
                batch = scored[start : start + self.batch_size]
                positions[term] = start + len(batch)
                if positions[term] >= len(scored):
                    exhausted.add(term)
                if batch:
                    sorted_accesses += len(batch)
                    self._log_transfer(
                        source_peer_name, term, len(batch)
                    )
                for score, doc_id, _tf, _dl in batch:
                    doc_term_scores.setdefault(doc_id, {})[term] = score
                    newly_seen.add(doc_id)
            # Random access: complete every newly seen document.
            for doc_id in newly_seen:
                known = doc_term_scores[doc_id]
                for term in entries:
                    if term in known:
                        continue
                    random_accesses += 1
                    self._log_transfer(source_peer_name, term, 1)
                    posting = entries[term].postings.get(doc_id)
                    known[term] = (
                        self.scorer.term_score(
                            posting.tf, posting.doc_len, dfs[term]
                        )
                        if posting is not None
                        else 0.0
                    )
                seen_scores[doc_id] = sum(known.values())
            # Threshold: sum of current frontier scores.
            threshold = 0.0
            for term in entries:
                scored = sorted_lists[term]
                position = positions[term]
                if position < len(scored):
                    threshold += scored[position][0]
            top = sorted(seen_scores.items(), key=lambda i: (-i[1], i[0]))
            if len(top) >= k and top[k - 1][1] >= threshold:
                break
        top = sorted(seen_scores.items(), key=lambda i: (-i[1], i[0]))[:k]
        return TopKOutcome(
            results=[
                RankedResult(doc_id=doc_id, score=score)
                for doc_id, score in top
            ],
            postings_transferred=sorted_accesses + random_accesses,
            sorted_accesses=sorted_accesses,
            random_accesses=random_accesses,
            rounds=rounds,
            terms_found=len(entries),
        )
