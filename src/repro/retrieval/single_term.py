"""The distributed single-term baseline (the paper's "naive"/"ST" model).

Peers insert *full* single-term posting lists into the DHT; a query
fetches the complete posting list of every query term, so retrieval
traffic grows linearly with the collection — the behaviour Figure 6
contrasts with the HDK approach.

The baseline shares the network substrate and accounting with the HDK
engine so that posting counts are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus.collection import DocumentCollection
from ..corpus.querylog import Query
from ..errors import RetrievalError
from ..index.bm25 import BM25Scorer
from ..index.postings import Posting, PostingList
from ..net.accounting import Phase
from ..net.network import P2PNetwork
from .ranking import DistributedRanker, RankedResult

__all__ = [
    "STSearchOutcome",
    "SingleTermIndexer",
    "SingleTermRetrievalEngine",
    "STEntry",
]


@dataclass
class STEntry:
    """A stored single-term entry: the full merged posting list."""

    term: str
    postings: PostingList

    def posting_count(self) -> int:
        return len(self.postings)


class SingleTermIndexer:
    """One peer's side of naive distributed single-term indexing."""

    def __init__(
        self,
        peer_name: str,
        collection: DocumentCollection,
        network: P2PNetwork,
    ) -> None:
        self.peer_name = peer_name
        self.collection = collection
        self.network = network
        self.inserted_postings = 0

    def index(self) -> None:
        """Insert the peer's full local posting lists into the DHT."""
        local: dict[str, list[Posting]] = {}
        for doc in self.collection:
            doc_len = len(doc)
            for term, tf in doc.term_frequencies().items():
                local.setdefault(term, []).append(
                    Posting(
                        doc_id=doc.doc_id,
                        tf=tf,
                        term_tfs=(tf,),
                        doc_len=doc_len,
                    )
                )
        for term, postings in local.items():
            posting_list = PostingList(postings)

            def merge(current: STEntry | None) -> STEntry:
                if current is None:
                    return STEntry(term=term, postings=posting_list)
                return STEntry(
                    term=term, postings=current.postings.union(posting_list)
                )

            self.network.insert(
                self.peer_name,
                term,
                merge,
                payload_postings=len(posting_list),
                key_repr=term,
            )
            self.inserted_postings += len(posting_list)


@dataclass
class STSearchOutcome:
    """Result + traffic breakdown of one single-term (OR) query.

    Attributes:
        results: top-k ranked documents.
        postings_transferred: total postings shipped to the query peer.
        terms_found: query terms whose lookup returned a non-empty
            posting list (every lookup is *answered*, possibly empty —
            only non-empty answers count as found).
        term_dfs: per-term document frequency as observed by the query.
    """

    results: list[RankedResult]
    postings_transferred: int
    terms_found: int
    term_dfs: dict[str, int]


class SingleTermRetrievalEngine:
    """Query side of the distributed single-term baseline.

    Args:
        network: the shared network (already indexed).
        num_documents: global document count (for BM25).
        average_doc_length: global average document length (for BM25).
    """

    def __init__(
        self,
        network: P2PNetwork,
        num_documents: int,
        average_doc_length: float,
    ) -> None:
        self.network = network
        self.scorer = BM25Scorer(
            num_documents=num_documents,
            average_doc_length=average_doc_length,
        )

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> tuple[list[RankedResult], int]:
        """Fetch full posting lists for every query term and rank.

        Returns (top-k results, postings transferred) — the second element
        is the per-query retrieval traffic Figure 6 plots.  See
        :meth:`search_outcome` for the full breakdown.
        """
        outcome = self.search_outcome(source_peer_name, query, k)
        return outcome.results, outcome.postings_transferred

    def search_outcome(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> STSearchOutcome:
        """Like :meth:`search` but returns the full
        :class:`STSearchOutcome` including which terms were found."""
        if k < 1:
            raise RetrievalError(f"k must be >= 1, got {k}")
        self.network.accounting.set_phase(Phase.RETRIEVAL)
        fetched: list[tuple[tuple[str, ...], Posting]] = []
        term_dfs: dict[str, int] = {}
        transferred = 0
        for term in query.terms:
            entry: STEntry | None = self.network.lookup(
                source_peer_name,
                term,
                lambda value: len(value.postings)
                if value is not None
                else 0,
                key_repr=term,
            )
            if entry is None:
                term_dfs[term] = 0
                continue
            term_dfs[term] = len(entry.postings)
            transferred += len(entry.postings)
            for posting in entry.postings:
                fetched.append(((term,), posting))
        ranker = DistributedRanker(self.scorer, term_dfs)
        return STSearchOutcome(
            results=ranker.rank(fetched, k),
            postings_transferred=transferred,
            terms_found=sum(1 for df in term_dfs.values() if df > 0),
            term_dfs=term_dfs,
        )
