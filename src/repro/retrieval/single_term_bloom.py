"""Bloom-filter-optimized distributed single-term retrieval.

The optimization the paper's related work proposes for conjunctive
multi-term queries over a distributed single-term index (Reynolds &
Vahdat's Middleware'03 protocol, also used by ODISSEA and analyzed by
Zhang & Suel): instead of shipping full posting lists to the query peer,

1. the peer responsible for the *rarest* query term builds a Bloom
   filter of its posting list and sends it to the peer responsible for
   the next term (traffic: the filter, a constant factor smaller than
   the list);
2. that peer pre-intersects its list through the filter and forwards the
   surviving candidate postings (true matches plus Bloom false
   positives) — iterating through all query terms;
3. the final candidates return to the first peer, which removes false
   positives exactly, and the result travels to the query initiator.

Traffic still grows linearly with the collection (both the filter and
the candidate sets scale with posting-list lengths); the point of this
baseline is to quantify the paper's claim that even the optimized
single-term approach is outscaled by HDK indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus.querylog import Query
from ..errors import RetrievalError
from ..index.bloom import BloomFilter
from ..index.bm25 import BM25Scorer
from ..index.postings import Posting
from ..net.accounting import Phase
from ..net.messages import MessageKind
from ..net.network import P2PNetwork
from .ranking import DistributedRanker, RankedResult
from .single_term import STEntry

__all__ = ["BloomSearchOutcome", "BloomSingleTermEngine"]


@dataclass
class BloomSearchOutcome:
    """Result + traffic breakdown of one Bloom-optimized AND query."""

    results: list[RankedResult]
    postings_transferred: int
    filter_posting_equivalents: int
    candidate_postings: int
    false_positives_removed: int
    #: Query terms with a non-empty indexed posting list; under AND
    #: semantics the protocol aborts at the first unknown term, so on an
    #: empty result this counts the terms found before the abort.
    terms_found: int = 0
    #: Query terms actually looked up: all of them on a completed run,
    #: ``terms_found + 1`` when the protocol aborted at an unknown term.
    terms_probed: int = 0


class BloomSingleTermEngine:
    """Conjunctive (AND) retrieval over a single-term DHT index using
    Bloom-filter pre-intersection.

    Requires the network to be indexed by
    :class:`repro.retrieval.single_term.SingleTermIndexer` first (the
    entries are shared).

    Args:
        network: the indexed network.
        num_documents: global document count (BM25).
        average_doc_length: global average document length (BM25).
        target_fpr: Bloom filter false-positive target.
    """

    def __init__(
        self,
        network: P2PNetwork,
        num_documents: int,
        average_doc_length: float,
        target_fpr: float = 0.01,
    ) -> None:
        if not 0.0 < target_fpr < 1.0:
            raise RetrievalError(
                f"target_fpr must be in (0, 1), got {target_fpr}"
            )
        self.network = network
        self.target_fpr = target_fpr
        self.scorer = BM25Scorer(
            num_documents=num_documents,
            average_doc_length=average_doc_length,
        )

    # -- internals -----------------------------------------------------------------

    def _entry_of(self, term: str) -> STEntry | None:
        """Read a term's entry without logging traffic (the protocol
        below logs the messages it actually sends)."""
        target = self.network.responsible_peer_for(term)
        for storage in self.network.storages():
            if storage.peer_id == target:
                value = storage.get(term)
                return value if isinstance(value, STEntry) else None
        return None

    def _peer_name_for(self, term: str) -> str:
        target = self.network.responsible_peer_for(term)
        for name in self.network.peer_names():
            if self.network.id_of(name) == target:
                return name
        raise RetrievalError(
            f"no registered peer is responsible for {term!r}"
        )  # pragma: no cover - network invariant

    # -- public API -----------------------------------------------------------------

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> BloomSearchOutcome:
        """Run the Bloom-optimized conjunctive protocol for ``query``.

        Returns ranked documents containing *all* query terms and the
        full traffic breakdown.  An unknown query term yields an empty
        result (AND semantics) at zero posting cost.
        """
        if k < 1:
            raise RetrievalError(f"k must be >= 1, got {k}")
        self.network.accounting.set_phase(Phase.RETRIEVAL)
        entries: dict[str, STEntry] = {}
        for term in query.terms:
            entry = self._entry_of(term)
            if entry is None:
                return BloomSearchOutcome(
                    results=[],
                    postings_transferred=0,
                    filter_posting_equivalents=0,
                    candidate_postings=0,
                    false_positives_removed=0,
                    terms_found=len(entries),
                    terms_probed=len(entries) + 1,
                )
            entries[term] = entry
        # Visit terms rarest-first: the first filter is smallest and the
        # candidate stream shrinks fastest.
        order = sorted(query.terms, key=lambda t: len(entries[t].postings))
        first_term = order[0]
        first_entry = entries[first_term]
        filter_ = BloomFilter.for_capacity(
            max(1, len(first_entry.postings)), self.target_fpr
        )
        filter_.add_all(first_entry.postings.doc_ids())
        filter_cost = filter_.posting_equivalents()
        transferred = 0
        previous_peer = self._peer_name_for(first_term)
        # Step 1: ship the filter along the term chain (each hop pays the
        # filter size once; real protocols re-filter, we keep the first
        # filter which is the rarest list's).
        candidates: list[Posting] | None = None
        false_positives = 0
        for term in order[1:]:
            peer = self._peer_name_for(term)
            self.network.transfer(
                previous_peer,
                peer,
                postings=filter_cost,
                kind=MessageKind.RESPONSE,
                key_repr=f"bloom({first_term})",
            )
            transferred += filter_cost
            entry = entries[term]
            surviving = [
                posting
                for posting in entry.postings
                if posting.doc_id in filter_
            ]
            if candidates is None:
                candidates = surviving
            else:
                surviving_ids = {p.doc_id for p in surviving}
                candidates = [
                    p for p in candidates if p.doc_id in surviving_ids
                ]
            previous_peer = peer
        if candidates is None:
            # Single-term query: the full list ships to the source.
            candidates = list(first_entry.postings)
        # Step 2: candidates return to the first peer for exact
        # verification (removes Bloom false positives).
        first_peer = self._peer_name_for(first_term)
        self.network.transfer(
            previous_peer,
            first_peer,
            postings=len(candidates),
            kind=MessageKind.RESPONSE,
            key_repr="bloom-candidates",
        )
        transferred += len(candidates)
        exact_ids = set(first_entry.postings.doc_ids())
        verified = [p for p in candidates if p.doc_id in exact_ids]
        false_positives = len(candidates) - len(verified)
        # Step 3: the verified result travels to the query initiator.
        self.network.transfer(
            first_peer,
            source_peer_name,
            postings=len(verified),
            kind=MessageKind.RESPONSE,
            key_repr="bloom-result",
        )
        transferred += len(verified)
        results = self._rank(verified, entries, query, k)
        return BloomSearchOutcome(
            results=results,
            postings_transferred=transferred,
            filter_posting_equivalents=filter_cost,
            candidate_postings=len(candidates),
            false_positives_removed=false_positives,
            terms_found=len(entries),
            terms_probed=len(query.terms),
        )

    def _rank(
        self,
        verified: list[Posting],
        entries: dict[str, STEntry],
        query: Query,
        k: int,
    ) -> list[RankedResult]:
        """BM25-rank the conjunctive matches with full term evidence."""
        term_dfs = {
            term: len(entry.postings) for term, entry in entries.items()
        }
        fetched: list[tuple[tuple[str, ...], Posting]] = []
        match_ids = {p.doc_id for p in verified}
        for term, entry in entries.items():
            for posting in entry.postings:
                if posting.doc_id in match_ids:
                    fetched.append(((term,), posting))
        ranker = DistributedRanker(self.scorer, term_dfs)
        return ranker.rank(fetched, k)
