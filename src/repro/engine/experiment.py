"""The peer-growth experiment of Section 5.

The paper simulates the evolution of a P2P system by starting with 4 peers
and adding 4 peers per run, each contributing 5,000 Wikipedia documents;
at every step it measures stored postings per peer (Figure 3), inserted
postings per peer (Figure 4), the IS_s/D ratios (Figure 5), retrieval
traffic per query (Figure 6), and the top-20 overlap with a centralized
BM25 engine (Figure 7).

:class:`GrowthExperiment` reproduces that protocol at configurable scale
over the synthetic corpus, for any set of ``DF_max`` values plus the
single-term baseline, producing one :class:`GrowthStepResult` per
(network size, engine configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentParameters, HDKParameters
from ..corpus.collection import DocumentCollection
from ..corpus.querylog import Query, QueryLogGenerator
from ..corpus.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator
from ..errors import ConfigurationError
from ..retrieval.centralized import CentralizedBM25Engine
from ..retrieval.metrics import mean_overlap, top_k_overlap
from .p2p_engine import EngineMode, P2PSearchEngine

__all__ = ["GrowthStepResult", "GrowthExperiment"]


@dataclass
class GrowthStepResult:
    """Measurements for one (network size, engine configuration) point.

    Attributes:
        label: configuration label, e.g. ``"ST"`` or ``"HDK df_max=12"``.
        num_peers: network size at this step.
        num_documents: total collection size at this step.
        stored_postings_per_peer: Figure 3's y-value.
        inserted_postings_per_peer: Figure 4's y-value.
        is_ratio_by_size: key size -> inserted postings / D (Figure 5).
        retrieval_postings_per_query: Figure 6's y-value (mean).
        keys_per_query: measured mean ``n_k`` (HDK only; 0 for ST).
        top20_overlap: Figure 7's y-value (mean % vs centralized BM25).
    """

    label: str
    num_peers: int
    num_documents: int
    stored_postings_per_peer: float = 0.0
    inserted_postings_per_peer: float = 0.0
    is_ratio_by_size: dict[int, float] = field(default_factory=dict)
    retrieval_postings_per_query: float = 0.0
    keys_per_query: float = 0.0
    top20_overlap: float = 0.0

    @property
    def is_ratio_total(self) -> float:
        """IS/D — the sum over key sizes (Figure 5's top curve)."""
        return sum(self.is_ratio_by_size.values())


class GrowthExperiment:
    """Runs the full Section-5 protocol over the synthetic corpus.

    Args:
        experiment: growth protocol parameters (peer counts, docs/peer).
        corpus_config: synthetic corpus configuration.
        df_max_values: the DF_max sweep (the paper uses 400 and 500);
            one HDK engine per value is measured at every step.
        include_single_term: also measure the ST baseline at every step.
        num_queries: queries sampled per step for Figures 6-7.
        top_k: ranking depth for the overlap metric (paper: 20).
        overlay: ``"chord"`` or ``"pgrid"``.
    """

    def __init__(
        self,
        experiment: ExperimentParameters,
        corpus_config: SyntheticCorpusConfig | None = None,
        df_max_values: tuple[int, ...] | None = None,
        include_single_term: bool = True,
        num_queries: int = 30,
        top_k: int = 20,
        overlay: str = "chord",
        incremental: bool = False,
    ) -> None:
        if num_queries < 1:
            raise ConfigurationError(
                f"num_queries must be >= 1, got {num_queries}"
            )
        self.experiment = experiment
        self.corpus_config = corpus_config or SyntheticCorpusConfig()
        base = experiment.hdk
        self.df_max_values = df_max_values or (base.df_max,)
        self.include_single_term = include_single_term
        self.num_queries = num_queries
        self.top_k = top_k
        self.overlay = overlay
        #: When True, each step joins the new peers into the *live*
        #: engines via the incremental protocol (NDK notifications +
        #: expansion) instead of rebuilding from scratch — the paper's
        #: actual growth mechanism, and much cheaper for long sweeps.
        self.incremental = incremental
        # One corpus for the largest step; smaller steps use prefixes, so
        # growth is cumulative exactly like peers joining with new docs.
        total_docs = experiment.max_peers * experiment.docs_per_peer
        self._corpus = SyntheticCorpusGenerator(
            self.corpus_config, seed=experiment.seed
        ).generate(total_docs)

    # -- execution ----------------------------------------------------------------

    def run(self) -> list[GrowthStepResult]:
        """Execute every step; returns all measurement rows."""
        results: list[GrowthStepResult] = []
        live_engines: dict[str, P2PSearchEngine] = {}
        previous_docs = 0
        for num_peers in self.experiment.peer_counts():
            num_docs = num_peers * self.experiment.docs_per_peer
            step_collection = self._collection_prefix(num_docs)
            queries = self._sample_queries(step_collection)
            centralized = CentralizedBM25Engine(step_collection)
            reference = {
                query.query_id: centralized.search(query, self.top_k)
                for query in queries
            }
            configs: list[tuple[str, EngineMode, HDKParameters]] = []
            if self.include_single_term:
                configs.append(
                    ("ST", EngineMode.SINGLE_TERM, self.experiment.hdk)
                )
            for df_max in self.df_max_values:
                configs.append(
                    (
                        f"HDK df_max={df_max}",
                        EngineMode.HDK,
                        self.experiment.hdk.with_df_max(df_max),
                    )
                )
            for label, mode, params in configs:
                if self.incremental:
                    engine = self._grow_live_engine(
                        live_engines,
                        label,
                        mode,
                        params,
                        step_collection,
                        num_peers,
                        previous_docs,
                    )
                    step = self._measure_live(
                        engine, label, num_peers, queries, reference, mode
                    )
                else:
                    step = self._measure_engine(
                        label=label,
                        mode=mode,
                        params=params,
                        collection=step_collection,
                        num_peers=num_peers,
                        queries=queries,
                        reference=reference,
                    )
                results.append(step)
            previous_docs = num_docs
        return results

    def _grow_live_engine(
        self,
        live_engines: dict[str, P2PSearchEngine],
        label: str,
        mode: EngineMode,
        params: HDKParameters,
        step_collection: DocumentCollection,
        num_peers: int,
        previous_docs: int,
    ) -> P2PSearchEngine:
        """Create or incrementally grow the live engine for ``label``."""
        engine = live_engines.get(label)
        if engine is None:
            engine = P2PSearchEngine.build(
                step_collection,
                num_peers=num_peers,
                params=params,
                mode=mode,
                overlay=self.overlay,
            )
            engine.index()
            live_engines[label] = engine
            return engine
        ids = step_collection.doc_ids()[previous_docs:]
        new_docs = step_collection.subset(ids)
        engine.add_peers(new_docs, num_peers - len(engine.peers))
        return engine

    def _measure_live(
        self,
        engine: P2PSearchEngine,
        label: str,
        num_peers: int,
        queries: list[Query],
        reference: dict[int, list],
        mode: EngineMode,
    ) -> GrowthStepResult:
        """Measure a live (incrementally grown) engine at this step."""
        step = GrowthStepResult(
            label=label,
            num_peers=num_peers,
            num_documents=num_peers * self.experiment.docs_per_peer,
        )
        step.stored_postings_per_peer = engine.stored_postings_per_peer()
        step.inserted_postings_per_peer = (
            engine.inserted_postings_per_peer()
        )
        sample_size = engine.collection_sample_size()
        if sample_size:
            step.is_ratio_by_size = {
                size: postings / sample_size
                for size, postings in sorted(
                    engine.inserted_postings_by_key_size().items()
                )
            }
        transferred: list[float] = []
        lookups: list[float] = []
        overlaps: list[float] = []
        for query in queries:
            result = engine.search(query, k=self.top_k)
            transferred.append(result.postings_transferred)
            lookups.append(result.keys_looked_up)
            overlaps.append(
                top_k_overlap(
                    result.results, reference[query.query_id], self.top_k
                )
            )
        step.retrieval_postings_per_query = sum(transferred) / len(
            transferred
        )
        step.keys_per_query = (
            sum(lookups) / len(lookups) if mode is EngineMode.HDK else 0.0
        )
        step.top20_overlap = mean_overlap(overlaps)
        return step

    # -- helpers ---------------------------------------------------------------------

    def _collection_prefix(self, num_docs: int) -> DocumentCollection:
        ids = self._corpus.doc_ids()[:num_docs]
        return self._corpus.subset(ids)

    def _sample_queries(self, collection: DocumentCollection) -> list[Query]:
        generator = QueryLogGenerator(
            collection,
            window_size=self.experiment.hdk.window_size,
            min_hits=min(20, max(1, len(collection) // 20)),
            seed=self.experiment.seed + len(collection),
        )
        return generator.generate(self.num_queries)

    def _measure_engine(
        self,
        label: str,
        mode: EngineMode,
        params: HDKParameters,
        collection: DocumentCollection,
        num_peers: int,
        queries: list[Query],
        reference: dict[int, list],
    ) -> GrowthStepResult:
        engine = P2PSearchEngine.build(
            collection,
            num_peers=num_peers,
            params=params,
            mode=mode,
            overlay=self.overlay,
        )
        engine.index()
        step = GrowthStepResult(
            label=label,
            num_peers=num_peers,
            num_documents=len(collection),
        )
        step.stored_postings_per_peer = engine.stored_postings_per_peer()
        step.inserted_postings_per_peer = engine.inserted_postings_per_peer()
        sample_size = engine.collection_sample_size()
        if sample_size:
            step.is_ratio_by_size = {
                size: postings / sample_size
                for size, postings in sorted(
                    engine.inserted_postings_by_key_size().items()
                )
            }
        transferred: list[float] = []
        lookups: list[float] = []
        overlaps: list[float] = []
        for query in queries:
            result = engine.search(query, k=self.top_k)
            transferred.append(result.postings_transferred)
            lookups.append(result.keys_looked_up)
            overlaps.append(
                top_k_overlap(
                    result.results, reference[query.query_id], self.top_k
                )
            )
        step.retrieval_postings_per_query = sum(transferred) / len(
            transferred
        )
        step.keys_per_query = (
            sum(lookups) / len(lookups) if mode is EngineMode.HDK else 0.0
        )
        step.top20_overlap = mean_overlap(overlaps)
        return step
