"""The peer-growth experiment of Section 5.

The paper simulates the evolution of a P2P system by starting with 4 peers
and adding 4 peers per run, each contributing 5,000 Wikipedia documents;
at every step it measures stored postings per peer (Figure 3), inserted
postings per peer (Figure 4), the IS_s/D ratios (Figure 5), retrieval
traffic per query (Figure 6), and the top-20 overlap with a centralized
BM25 engine (Figure 7).

:class:`GrowthExperiment` reproduces that protocol at configurable scale
over the synthetic corpus.  It runs on the redesigned API — one
:class:`~repro.engine.service.SearchService` per measured configuration —
so any registry backend can be swept: the classic sweep is the ST
baseline plus one HDK configuration per ``DF_max`` value, and the
``backends`` argument adds further substrates (``hdk_disk``,
``hdk_super``, ``topk``, ...) to the same growth protocol, producing one
:class:`GrowthStepResult` per (network size, configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentParameters, HDKParameters
from ..corpus.collection import DocumentCollection
from ..corpus.querylog import Query, QueryLogGenerator
from ..corpus.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator
from ..errors import ConfigurationError
from ..retrieval.centralized import CentralizedBM25Engine
from ..retrieval.metrics import mean_overlap, top_k_overlap
from .backends import registry as default_registry
from .service import SearchService

__all__ = ["GrowthStepResult", "GrowthExperiment"]

#: Backends that run the HDK model: they are swept across the
#: ``DF_max`` values and report ``n_k`` (keys per query).
_HDK_FAMILY = ("hdk", "hdk_disk", "hdk_super")


@dataclass
class GrowthStepResult:
    """Measurements for one (network size, configuration) point.

    Attributes:
        label: configuration label, e.g. ``"ST"``, ``"HDK df_max=12"``,
            or ``"hdk_super df_max=12"``.
        num_peers: network size at this step.
        num_documents: total collection size at this step.
        stored_postings_per_peer: Figure 3's y-value.
        inserted_postings_per_peer: Figure 4's y-value.
        is_ratio_by_size: key size -> inserted postings / D (Figure 5).
        retrieval_postings_per_query: Figure 6's y-value (mean).
        keys_per_query: measured mean ``n_k`` (HDK family only; 0
            otherwise).
        top20_overlap: Figure 7's y-value (mean % vs centralized BM25).
    """

    label: str
    num_peers: int
    num_documents: int
    stored_postings_per_peer: float = 0.0
    inserted_postings_per_peer: float = 0.0
    is_ratio_by_size: dict[int, float] = field(default_factory=dict)
    retrieval_postings_per_query: float = 0.0
    keys_per_query: float = 0.0
    top20_overlap: float = 0.0

    @property
    def is_ratio_total(self) -> float:
        """IS/D — the sum over key sizes (Figure 5's top curve)."""
        return sum(self.is_ratio_by_size.values())


@dataclass(frozen=True)
class _Config:
    """One measured configuration: a labelled (backend, params) pair."""

    label: str
    backend: str
    params: HDKParameters

    @property
    def hdk_family(self) -> bool:
        return self.backend in _HDK_FAMILY


class GrowthExperiment:
    """Runs the full Section-5 protocol over the synthetic corpus.

    Args:
        experiment: growth protocol parameters (peer counts, docs/peer).
        corpus_config: synthetic corpus configuration.
        df_max_values: the DF_max sweep (the paper uses 400 and 500);
            each HDK-family backend is measured at every value and step.
        include_single_term: also measure the ST baseline at every step.
        num_queries: queries sampled per step for Figures 6-7.
        top_k: ranking depth for the overlap metric (paper: 20).
        overlay: ``"chord"`` or ``"pgrid"``.
        incremental: grow live services via the incremental join
            protocol instead of rebuilding each step.
        backends: registry backends to sweep (default ``("hdk",)``).
            HDK-family names (``hdk``, ``hdk_disk``, ``hdk_super``) get
            one configuration per ``DF_max`` value — plain ``hdk`` keeps
            the classic ``"HDK df_max=N"`` label, the others are
            labelled ``"<backend> df_max=N"``; any other registered
            backend (``topk``, ``single_term_bloom``, ...) is measured
            once per step under its own name with the base parameters.
    """

    def __init__(
        self,
        experiment: ExperimentParameters,
        corpus_config: SyntheticCorpusConfig | None = None,
        df_max_values: tuple[int, ...] | None = None,
        include_single_term: bool = True,
        num_queries: int = 30,
        top_k: int = 20,
        overlay: str = "chord",
        incremental: bool = False,
        backends: tuple[str, ...] = ("hdk",),
    ) -> None:
        if num_queries < 1:
            raise ConfigurationError(
                f"num_queries must be >= 1, got {num_queries}"
            )
        for name in backends:
            if name not in default_registry:
                known = ", ".join(default_registry.names())
                raise ConfigurationError(
                    f"unknown backend {name!r}; registered backends: {known}"
                )
        self.experiment = experiment
        self.corpus_config = corpus_config or SyntheticCorpusConfig()
        base = experiment.hdk
        self.df_max_values = df_max_values or (base.df_max,)
        self.include_single_term = include_single_term
        self.num_queries = num_queries
        self.top_k = top_k
        self.overlay = overlay
        self.backends = tuple(backends)
        #: When True, each step joins the new peers into the *live*
        #: services via the incremental protocol (NDK notifications +
        #: expansion) instead of rebuilding from scratch — the paper's
        #: actual growth mechanism, and much cheaper for long sweeps.
        self.incremental = incremental
        # One corpus for the largest step; smaller steps use prefixes, so
        # growth is cumulative exactly like peers joining with new docs.
        total_docs = experiment.max_peers * experiment.docs_per_peer
        self._corpus = SyntheticCorpusGenerator(
            self.corpus_config, seed=experiment.seed
        ).generate(total_docs)

    # -- configuration sweep --------------------------------------------------------

    def _configs(self) -> list[_Config]:
        configs: list[_Config] = []
        base = self.experiment.hdk
        if self.include_single_term:
            configs.append(_Config("ST", "single_term", base))
        for backend in self.backends:
            if backend in _HDK_FAMILY:
                for df_max in self.df_max_values:
                    prefix = "HDK" if backend == "hdk" else backend
                    configs.append(
                        _Config(
                            f"{prefix} df_max={df_max}",
                            backend,
                            base.with_df_max(df_max),
                        )
                    )
            else:
                configs.append(_Config(backend, backend, base))
        return configs

    # -- execution ----------------------------------------------------------------

    def run(self) -> list[GrowthStepResult]:
        """Execute every step; returns all measurement rows."""
        results: list[GrowthStepResult] = []
        live_services: dict[str, SearchService] = {}
        previous_docs = 0
        for num_peers in self.experiment.peer_counts():
            num_docs = num_peers * self.experiment.docs_per_peer
            step_collection = self._collection_prefix(num_docs)
            queries = self._sample_queries(step_collection)
            centralized = CentralizedBM25Engine(step_collection)
            reference = {
                query.query_id: centralized.search(query, self.top_k)
                for query in queries
            }
            for config in self._configs():
                if self.incremental:
                    service = self._grow_live_service(
                        live_services,
                        config,
                        step_collection,
                        num_peers,
                        previous_docs,
                    )
                else:
                    service = self._build_service(
                        config, step_collection, num_peers
                    )
                results.append(
                    self._measure(
                        service, config, num_peers, queries, reference
                    )
                )
            previous_docs = num_docs
        return results

    def _build_service(
        self,
        config: _Config,
        collection: DocumentCollection,
        num_peers: int,
    ) -> SearchService:
        """Build and index a fresh service for one configuration.

        Cache-less on purpose: the experiment measures per-query
        protocol traffic, which a result cache would hide.
        """
        service = SearchService.build(
            collection,
            num_peers=num_peers,
            backend=config.backend,
            params=config.params,
            overlay=self.overlay,
            cache_capacity=None,
        )
        service.index()
        return service

    def _grow_live_service(
        self,
        live_services: dict[str, SearchService],
        config: _Config,
        step_collection: DocumentCollection,
        num_peers: int,
        previous_docs: int,
    ) -> SearchService:
        """Create or incrementally grow the live service for ``config``."""
        service = live_services.get(config.label)
        if service is None:
            service = self._build_service(
                config, step_collection, num_peers
            )
            live_services[config.label] = service
            return service
        ids = step_collection.doc_ids()[previous_docs:]
        new_docs = step_collection.subset(ids)
        service.add_peers(new_docs, num_peers - len(service.peers))
        return service

    def _measure(
        self,
        service: SearchService,
        config: _Config,
        num_peers: int,
        queries: list[Query],
        reference: dict[int, list],
    ) -> GrowthStepResult:
        """Measure one service at one step (Figures 3-7 rows)."""
        step = GrowthStepResult(
            label=config.label,
            num_peers=num_peers,
            num_documents=num_peers * self.experiment.docs_per_peer,
        )
        step.stored_postings_per_peer = service.stored_postings_per_peer()
        step.inserted_postings_per_peer = (
            service.inserted_postings_per_peer()
        )
        sample_size = service.collection_sample_size()
        if sample_size:
            step.is_ratio_by_size = {
                size: postings / sample_size
                for size, postings in sorted(
                    service.inserted_postings_by_key_size().items()
                )
            }
        transferred: list[float] = []
        lookups: list[float] = []
        overlaps: list[float] = []
        for query in queries:
            response = service.search(query, k=self.top_k)
            transferred.append(response.postings_transferred)
            lookups.append(response.keys_looked_up)
            overlaps.append(
                top_k_overlap(
                    response.results,
                    reference[query.query_id],
                    self.top_k,
                )
            )
        step.retrieval_postings_per_query = sum(transferred) / len(
            transferred
        )
        step.keys_per_query = (
            sum(lookups) / len(lookups) if config.hdk_family else 0.0
        )
        step.top20_overlap = mean_overlap(overlaps)
        return step

    # -- helpers ---------------------------------------------------------------------

    def _collection_prefix(self, num_docs: int) -> DocumentCollection:
        ids = self._corpus.doc_ids()[:num_docs]
        return self._corpus.subset(ids)

    def _sample_queries(self, collection: DocumentCollection) -> list[Query]:
        generator = QueryLogGenerator(
            collection,
            window_size=self.experiment.hdk.window_size,
            min_hits=min(20, max(1, len(collection) // 20)),
            seed=self.experiment.seed + len(collection),
        )
        return generator.generate(self.num_queries)
