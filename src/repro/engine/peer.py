"""A peer: local documents plus its two index roles.

Following Section 3, each peer (1) stores a fraction of the global
document collection and indexes it into the global index, and (2)
maintains the fraction of the global index the DHT allocates to it.  Role
(2) lives in the network substrate (:class:`repro.net.storage.PeerStorage`);
this class binds a named peer to role (1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus.collection import DocumentCollection

__all__ = ["Peer"]


@dataclass
class Peer:
    """A named peer and its local document fraction ``D(P_i)``.

    Attributes:
        name: the peer's network name (registered with the overlay).
        collection: the documents this peer contributes.
    """

    name: str
    collection: DocumentCollection

    @property
    def num_documents(self) -> int:
        return len(self.collection)

    @property
    def sample_size(self) -> int:
        """Local sample size ``l`` — term occurrences contributed."""
        return self.collection.sample_size

    def __repr__(self) -> str:
        return (
            f"Peer(name={self.name!r}, docs={self.num_documents}, "
            f"tokens={self.sample_size})"
        )
