"""The search-service facade.

:class:`SearchService` is the public entry point of the redesigned API:
it owns the text/query pipeline, a pluggable :class:`RetrievalBackend`
(chosen by name from the backend registry), an LRU query-result cache,
and per-query traffic accounting, and exposes three query surfaces:

- :meth:`SearchService.search` — one query, returning a
  :class:`~repro.engine.backends.SearchResponse` with timing, cache-hit
  flag, and the per-phase traffic window it generated;
- :meth:`SearchService.search_batch` — a query batch (the heavy-traffic
  scenario): repeated term sets inside the batch are amortized through
  the cache and the report aggregates traffic, lookups, and hit rates;
- :meth:`SearchService.run_querylog` — replay a generated query log,
  returning the same per-query + aggregate report.

Typical use::

    from repro import SearchService
    from repro.corpus import SyntheticCorpusGenerator

    collection = SyntheticCorpusGenerator(seed=1).generate(600)
    service = SearchService.build(collection, num_peers=8, backend="hdk")
    service.index()
    response = service.search("t00042 t00137", k=10)
    report = service.search_batch(["t00042 t00137"] * 50)

The legacy :class:`repro.engine.p2p_engine.P2PSearchEngine` is a thin
shim over this facade.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..config import HDKParameters
from ..corpus.collection import DocumentCollection
from ..corpus.querylog import Query
from ..errors import ConfigurationError, RetrievalError
from ..hdk.indexer import IndexingReport
from ..index.global_index import GlobalKeyIndex
from ..net.accounting import (
    Phase,
    TrafficAccounting,
    TrafficSnapshot,
    empty_snapshot,
)
from ..net.chord import ChordOverlay, Overlay
from ..net.network import P2PNetwork
from ..net.pgrid import PGridOverlay
from ..obs.metrics import LatencyHistogram
from ..obs.trace import current_span, get_tracer
from ..replication import (
    AntiEntropyRepairer,
    RepairReport,
    ReplicaFailoverRouter,
    ReplicationManager,
)
from ..retrieval.cache import CacheStats, QueryResultCache
from ..retrieval.query import QueryProcessor
from ..store import snapshot as snapshot_io
from ..store.spill import SpillingGlobalKeyIndex
from ..text.pipeline import PipelineConfig, TextPipeline
from .backends import (
    BackendContext,
    BackendRegistry,
    RetrievalBackend,
    SearchResponse,
    registry as default_registry,
)
from .peer import Peer

__all__ = [
    "BatchSearchReport",
    "SearchService",
    "make_overlay",
    "spawn_peers",
]


def make_overlay(overlay: str) -> Overlay:
    """Resolve an overlay name (``"chord"`` or ``"pgrid"``)."""
    if overlay == "chord":
        return ChordOverlay()
    if overlay == "pgrid":
        return PGridOverlay()
    raise ConfigurationError(
        f"unknown overlay {overlay!r}; use 'chord' or 'pgrid'"
    )


def spawn_peers(
    network: P2PNetwork,
    collection: DocumentCollection,
    num_peers: int,
    start: int = 0,
) -> list[Peer]:
    """Split ``collection`` across ``num_peers`` new peers registered
    with ``network``, named ``peer-NNN`` from index ``start``."""
    peers: list[Peer] = []
    # One router rebuild for the whole wave, not one per joiner.
    with network.membership_batch():
        for offset, slice_ in enumerate(collection.split(num_peers)):
            name = f"peer-{start + offset:03d}"
            network.add_peer(name)
            peers.append(Peer(name=name, collection=slice_))
    return peers


class _InFlightQuery:
    """A single-flight slot: one in-progress backend resolution that
    concurrent identical queries (same term set, depth <= ``k``) wait
    on instead of hitting the index again."""

    __slots__ = ("k", "done")

    def __init__(self, k: int) -> None:
        self.k = k
        self.done = threading.Event()


@dataclass
class BatchSearchReport:
    """Per-query responses plus batch-level aggregates.

    Attributes:
        responses: one :class:`SearchResponse` per query, in order.
        traffic: the per-phase traffic window the whole batch generated
            on the network (cache hits generate none).
        elapsed_ms: wall-clock time for the whole batch.
        cache_hits / cache_misses: cache outcomes inside this batch.
    """

    responses: list[SearchResponse] = field(default_factory=list)
    traffic: TrafficSnapshot | None = None
    elapsed_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def num_queries(self) -> int:
        return len(self.responses)

    @property
    def total_postings_transferred(self) -> int:
        """Network traffic of the batch in postings (cache hits count
        zero — they were served locally)."""
        return sum(r.postings_transferred for r in self.responses)

    @property
    def mean_postings_per_query(self) -> float:
        if not self.responses:
            return 0.0
        return self.total_postings_transferred / len(self.responses)

    @property
    def total_keys_looked_up(self) -> int:
        """Index lookups actually issued (cache hits issue none)."""
        return sum(r.keys_looked_up for r in self.responses)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_elapsed_ms(self) -> float:
        if not self.responses:
            return 0.0
        return sum(r.elapsed_ms for r in self.responses) / len(
            self.responses
        )


class SearchService:
    """The facade tying pipeline, backend, cache, and accounting together.

    Build via :meth:`build` (which also constructs the simulated
    network), or construct directly around an existing network and peer
    split.  Then :meth:`index` once and query via :meth:`search`,
    :meth:`search_batch`, or :meth:`run_querylog`.

    Args:
        peers: the initial peer population with their local collections.
        network: the shared simulated network.
        params: HDK model parameters (forwarded to the backend).
        backend: a backend *name* resolved through ``backend_registry``,
            or an already-constructed :class:`RetrievalBackend` instance.
        pipeline: the text pipeline queries are processed with; must
            match the one used to build the collections.
        cache_capacity: LRU query-cache size; ``None`` or ``0`` disables
            caching entirely (every query hits the backend).
        backend_registry: the registry names are resolved against
            (defaults to the module-level registry with the built-in
            backends).
        store_dir: directory for disk-backed backends (``hdk_disk``);
            ``None`` gives the store a private temporary directory.
        memory_budget: deprecated posting-count RAM budget for
            disk-backed backends; prefer ``memory_budget_bytes``.
        memory_budget_bytes: RAM residency budget for disk-backed
            backends, in encoded posting bytes.
        wal: write-ahead-log incremental writes in the disk backend's
            store (crash-durable builds); ``None`` keeps the index
            default (on).
        overlay_fanout: leaves per super-peer cluster (``hdk_super``).
        path_cache_capacity: per-super-peer in-network result-cache
            size (``hdk_super``); ``0`` disables path caching.
        overlay_adaptive: load-aware overlay adaptation (``hdk_super``):
            load-weighed super-peer election, hot-cluster splitting
            with cool-down merges, and multi-level path caching with
            invalidation fan-out.  Results stay byte-identical.
        overlay_split_threshold: windowed load score at which a hot
            cluster splits (adaptive overlay).
        overlay_merge_threshold: score at or below which a split pair
            counts as calm; must be < ``overlay_split_threshold``.
        sync: fsync segment files on rollover/close and the snapshot
            manifest on :meth:`save` (disk-backed durability knob).
        index_workers: thread-pool width of the sharded indexing
            pipeline (:mod:`repro.indexing`) the backend builds with;
            the build outcome is byte-identical at any value.
        replication: replica count per key range (``1`` disables the
            replication subsystem entirely — no manager, no failover
            wrapper, byte-identical results *and* traffic to the
            unreplicated stack).  With ``R >= 2`` every insert and
            stats publication fans out to the key's R successor owners,
            lookups fail over past crashed replicas, and
            :meth:`run_anti_entropy` re-converges divergent replicas.
    """

    def __init__(
        self,
        peers: list[Peer],
        network: P2PNetwork,
        params: HDKParameters | None = None,
        backend: str | RetrievalBackend = "hdk",
        pipeline: TextPipeline | None = None,
        cache_capacity: int | None = 256,
        backend_registry: BackendRegistry | None = None,
        store_dir: str | Path | None = None,
        memory_budget: int | None = None,
        memory_budget_bytes: int | None = None,
        wal: bool | None = None,
        overlay_fanout: int = 8,
        path_cache_capacity: int = 128,
        overlay_adaptive: bool = False,
        overlay_split_threshold: int = 64,
        overlay_merge_threshold: int = 16,
        sync: bool = False,
        index_workers: int = 1,
        replication: int = 1,
    ) -> None:
        if not peers:
            raise ConfigurationError("service needs at least one peer")
        if replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1, got {replication}"
            )
        self.peers = list(peers)
        self.network = network
        self.params = params or HDKParameters()
        self.pipeline = pipeline or TextPipeline(PipelineConfig())
        self.query_processor = QueryProcessor(self.pipeline)
        self._sync = sync
        self.replication = replication
        # The manager must exist before the backend is constructed so
        # snapshot population and backend-internal placement see it; the
        # failover wrapper is installed after, so it can wrap whatever
        # routing policy the backend installs (hdk_super's hierarchy).
        self.replication_manager: ReplicationManager | None = (
            ReplicationManager(network, replication).install()
            if replication > 1
            else None
        )
        reg = backend_registry or default_registry
        if isinstance(backend, str):
            context = BackendContext(
                network=network,
                params=self.params,
                store_dir=store_dir,
                memory_budget=memory_budget,
                memory_budget_bytes=memory_budget_bytes,
                wal=wal,
                overlay_fanout=overlay_fanout,
                path_cache_capacity=path_cache_capacity,
                overlay_adaptive=overlay_adaptive,
                overlay_split_threshold=overlay_split_threshold,
                overlay_merge_threshold=overlay_merge_threshold,
                sync=sync,
                index_workers=index_workers,
                replication=replication,
            )
            self.backend: RetrievalBackend = reg.create(backend, context)
        else:
            self.backend = backend
        if self.replication_manager is not None:
            network.router = ReplicaFailoverRouter(
                self.replication_manager, inner=network.router
            )
            self._repairer: AntiEntropyRepairer | None = AntiEntropyRepairer(
                network, self.replication_manager
            )
        else:
            self._repairer = None
        self.cache: QueryResultCache | None = (
            QueryResultCache(cache_capacity) if cache_capacity else None
        )
        self._indexed = False
        self._reports: list[IndexingReport] = []
        # Concurrency design (short critical sections): only the cache
        # lookup/fill and the single-flight table are serialized, under
        # this fine-grained lock; the backend section of a query runs
        # fully concurrent, with a thread-scoped traffic window keeping
        # its per-query delta exact (see repro.net.accounting).
        self._cache_lock = threading.Lock()
        #: In-flight backend computations by term set (single-flight:
        #: concurrent identical queries wait for one resolution).
        self._inflight: dict[frozenset[str], _InFlightQuery] = {}
        #: Service-side latency distribution over every search() call
        #: (hits and misses alike); :meth:`stats` exposes its state so
        #: the serving gateway can merge the per-worker histograms.
        self._latency_lock = threading.Lock()
        self._latency = LatencyHistogram()

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        collection: DocumentCollection,
        num_peers: int,
        backend: str = "hdk",
        params: HDKParameters | None = None,
        overlay: str = "chord",
        pipeline: TextPipeline | None = None,
        accounting: TrafficAccounting | None = None,
        cache_capacity: int | None = 256,
        backend_registry: BackendRegistry | None = None,
        store_dir: str | Path | None = None,
        memory_budget: int | None = None,
        memory_budget_bytes: int | None = None,
        wal: bool | None = None,
        overlay_fanout: int = 8,
        path_cache_capacity: int = 128,
        overlay_adaptive: bool = False,
        overlay_split_threshold: int = 64,
        overlay_merge_threshold: int = 16,
        sync: bool = False,
        index_workers: int = 1,
        replication: int = 1,
    ) -> "SearchService":
        """Build a service over ``collection`` split across ``num_peers``.

        Args:
            collection: the global document collection.
            num_peers: how many peers share it (round-robin split).
            backend: backend *name* (``hdk``, ``hdk_disk``,
                ``single_term``, ``single_term_bloom``, ``topk``,
                ``centralized``).  An instance is rejected here: a
                pre-constructed backend is bound to the network it was
                built with, which cannot be the one this method creates —
                construct :class:`SearchService` directly around that
                network instead.
            params: HDK model parameters (paper defaults when omitted).
            overlay: ``"chord"`` or ``"pgrid"``.
            pipeline: the query text pipeline.
            accounting: shared traffic counters (created when omitted).
            cache_capacity: query-cache size; falsy disables caching.
            backend_registry: custom registry for name resolution.
            store_dir: segment-store directory for ``hdk_disk``.
            memory_budget: deprecated posting-count RAM budget for
                ``hdk_disk``; prefer ``memory_budget_bytes``.
            memory_budget_bytes: RAM residency budget for ``hdk_disk``
                in encoded posting bytes.
            wal: write-ahead-log incremental writes (``hdk_disk``);
                ``None`` keeps the index default (on).
            overlay_fanout: super-peer cluster fanout (``hdk_super``).
            path_cache_capacity: in-network result-cache size per
                super-peer (``hdk_super``).
            overlay_adaptive: load-aware overlay adaptation
                (``hdk_super``): load-weighed election, hot-cluster
                split/merge, multi-level path caching.
            overlay_split_threshold: windowed load score at which a
                hot cluster splits (adaptive overlay).
            overlay_merge_threshold: calm score for merging a split
                pair back; must be < ``overlay_split_threshold``.
            sync: fsync segments on rollover/close and the manifest on
                :meth:`save`.
            index_workers: worker threads for the sharded indexing
                pipeline :meth:`index` (and :meth:`add_peers`) runs on;
                byte-identical results at any value.
            replication: replica count per key range; ``1`` is the
                unreplicated stack.
        """
        if not isinstance(backend, str):
            raise ConfigurationError(
                "build() creates its own network, so it only accepts a "
                "backend name; pass a backend instance to SearchService() "
                "together with the network it was constructed for"
            )
        if num_peers < 1:
            raise ConfigurationError(
                f"num_peers must be >= 1, got {num_peers}"
            )
        network = P2PNetwork(
            overlay=make_overlay(overlay), accounting=accounting
        )
        peers = spawn_peers(network, collection, num_peers)
        return cls(
            peers,
            network,
            params=params,
            backend=backend,
            pipeline=pipeline,
            cache_capacity=cache_capacity,
            backend_registry=backend_registry,
            store_dir=store_dir,
            memory_budget=memory_budget,
            memory_budget_bytes=memory_budget_bytes,
            wal=wal,
            overlay_fanout=overlay_fanout,
            path_cache_capacity=path_cache_capacity,
            overlay_adaptive=overlay_adaptive,
            overlay_split_threshold=overlay_split_threshold,
            overlay_merge_threshold=overlay_merge_threshold,
            sync=sync,
            index_workers=index_workers,
            replication=replication,
        )

    # -- indexing ----------------------------------------------------------------

    def index(self) -> list[IndexingReport]:
        """Run the backend's indexing protocol over the initial peers.

        Runs exactly once per service: a second call would replay the
        whole publication protocol into the already-populated index
        (duplicate inserts, double-counted statistics), so double-build
        is an explicit :class:`ConfigurationError` — both here and at
        the backend seam — rather than a silent re-run.  Grow an indexed
        service with :meth:`add_peers`.
        """
        if self._indexed:
            raise ConfigurationError(
                "service is already indexed; index() runs once — grow "
                "with add_peers() or build a fresh service to rebuild"
            )
        self.network.accounting.set_phase(Phase.INDEXING)
        self._reports = self.backend.index(self.peers)
        self._indexed = True
        return self._reports

    def add_peers(
        self, new_collection: DocumentCollection, num_new_peers: int
    ) -> list[IndexingReport]:
        """Grow the network: new peers join with new documents and index
        them incrementally; the query cache is invalidated."""
        if not self._indexed:
            raise ConfigurationError(
                "index() the initial network before add_peers()"
            )
        if num_new_peers < 1:
            raise ConfigurationError(
                f"num_new_peers must be >= 1, got {num_new_peers}"
            )
        new_peers = spawn_peers(
            self.network, new_collection, num_new_peers, start=len(self.peers)
        )
        self.network.accounting.set_phase(Phase.INDEXING)
        reports = self.backend.add_peers(new_peers)
        self.peers.extend(new_peers)
        self._reports.extend(reports)
        if self.cache is not None:
            self.cache.invalidate()
        return reports

    # -- querying ----------------------------------------------------------------

    def search(
        self,
        raw_query: str | Query,
        k: int = 20,
        source_peer: str | None = None,
    ) -> SearchResponse:
        """Execute one query through cache + backend.

        Args:
            raw_query: a raw query string (processed through the
                service's pipeline) or an already-processed
                :class:`Query`.
            k: result depth.
            source_peer: the querying peer's name; defaults to the first
                peer.

        Returns a :class:`SearchResponse` carrying the ranked results,
        the traffic window the query generated, wall-clock timing, and
        whether it was served from the cache.

        Thread-safe, and concurrent calls genuinely overlap: only the
        cache lookup/fill runs under a lock; the backend section runs
        outside it with a thread-scoped traffic window, so each
        response's ``traffic`` is exactly the messages its own backend
        call generated.  Concurrent calls for the *same* term set are
        de-duplicated (single-flight): one caller resolves against the
        index, the others wait and are served as cache hits.

        When tracing is active (see :mod:`repro.obs`) the call records a
        ``service.search`` span with cache-hit / single-flight
        attribution and a ``service.backend`` child covering the backend
        section; the no-trace path adds only a guard check and one
        histogram observation.
        """
        tracer = get_tracer()
        if not tracer.active:
            response = self._search_impl(raw_query, k, source_peer)
            self._observe_latency(response.elapsed_ms)
            return response
        with tracer.span("service.search", k=k) as span:
            response = self._search_impl(raw_query, k, source_peer)
            span.set_attrs(
                backend=self.backend.name,
                cache_hit=response.cache_hit,
                query=" ".join(sorted(response.query.term_set))
                if response.query is not None
                else "",
                postings_transferred=response.postings_transferred,
            )
        self._observe_latency(response.elapsed_ms)
        return response

    def _observe_latency(self, elapsed_ms: float) -> None:
        with self._latency_lock:
            self._latency.observe(elapsed_ms)

    def _search_impl(
        self,
        raw_query: str | Query,
        k: int,
        source_peer: str | None,
    ) -> SearchResponse:
        if not self._indexed:
            raise RetrievalError("call index() before search()")
        if k < 1:
            raise RetrievalError(f"k must be >= 1, got {k}")
        query = self._process(raw_query)  # pipeline work outside the lock
        source = source_peer or self.peers[0].name
        started = time.perf_counter()
        if self.cache is None:
            # No cache, no single-flight: every call pays the backend.
            return self._backend_search(source, query, k, started)
        while True:
            with self._cache_lock:
                cached = self.cache.try_hit(query, k)
                if cached is None:
                    flight = self._inflight.get(query.term_set)
                    if flight is None or flight.k < k:
                        # Become the leader for this term set (a deeper
                        # request supersedes a shallower in-flight one).
                        self.cache.note_miss()
                        flight = _InFlightQuery(k)
                        self._inflight[query.term_set] = flight
                        break
            if cached is not None:
                # Shape the hit outside the lock: clipping copies the
                # result list, and concurrent lookups must not queue
                # behind per-hit copies (cached payloads are never
                # mutated, so no lock is needed to read one).
                return self._hit_response(cached, query, k, started)
            # Follower: an identical term set is already resolving.
            # Wait outside the lock, then retry the cache (the leader
            # fills it before signalling; on leader failure or eviction
            # the retry simply becomes the new leader).
            span = current_span()
            if span is not None:
                span.set_attr("flight", "follower")
            flight.done.wait()
        span = current_span()
        if span is not None:
            span.set_attr("flight", "leader")
        try:
            response = self._backend_search(source, query, k, started)
            # Cache a copy, not the object handed to the caller: a
            # caller mutating response.results must not poison hits.
            # The cache is internally locked and followers only read it
            # after flight.done below, so the fill runs outside
            # _cache_lock — other queries' lookups must not queue
            # behind this clip-and-insert.
            self.cache.put(
                query,
                k,
                response.clipped(k),
                response.postings_transferred,
            )
            return response
        finally:
            with self._cache_lock:
                if self._inflight.get(query.term_set) is flight:
                    del self._inflight[query.term_set]
            flight.done.set()

    def _backend_search(
        self, source: str, query: Query, k: int, started: float
    ) -> SearchResponse:
        """The concurrent section: backend resolution under a
        thread-scoped traffic window (no service lock held)."""
        tracer = get_tracer()
        if not tracer.active:
            with self.network.accounting.measure(scope="thread") as window:
                response = self.backend.search(source, query, k)
            response.traffic = window.delta
            response.elapsed_ms = _ms_since(started)
            return response
        with tracer.span(
            "service.backend", backend=self.backend.name, source=source
        ) as span:
            with self.network.accounting.measure(scope="thread") as window:
                response = self.backend.search(source, query, k)
            response.traffic = window.delta
            span.set_attrs(
                keys_looked_up=response.keys_looked_up,
                keys_found=response.keys_found,
                postings=response.postings_transferred,
            )
        response.elapsed_ms = _ms_since(started)
        return response

    @staticmethod
    def _hit_response(
        cached: SearchResponse, query: Query, k: int, started: float
    ) -> SearchResponse:
        """Shape a cached payload into this call's response."""
        response = cached.clipped(k)
        response.query = query  # the caller's query object
        response.cache_hit = True
        # Cost fields describe THIS call: a hit is served locally,
        # issuing zero lookups and zero transfers.
        response.postings_transferred = 0
        response.keys_looked_up = 0
        response.keys_found = 0
        response.dk_keys = 0
        response.ndk_keys = 0
        response.traffic = empty_snapshot()
        response.elapsed_ms = _ms_since(started)
        return response

    def search_batch(
        self,
        queries: Sequence[str | Query],
        k: int = 20,
        source_peer: str | None = None,
        workers: int = 1,
    ) -> BatchSearchReport:
        """Execute a batch of queries, amortizing repeats via the cache.

        This is the heavy-traffic surface: identical term sets inside
        the batch resolve against the index only once (when the cache is
        enabled), and the report aggregates traffic, index lookups,
        timing, and cache outcomes across the batch.

        Args:
            queries: raw strings or processed :class:`Query` objects.
            k: result depth.
            source_peer: the querying peer (defaults to the first).
            workers: thread-pool width.  With ``workers > 1`` the whole
                query path — cache, accounting, backend — runs
                concurrently: the backend section is never serialized,
                and each response still carries its own exact per-query
                traffic window (thread-scoped accumulation).  Responses
                keep the input order, and when the cache is enabled the
                batch is de-duplicated in input order: the *first*
                occurrence of each term set resolves against the index
                (concurrently with the other first occurrences) and
                every repeat is a cache hit — identical reports
                (results, scores, cost fields, traffic snapshots;
                timing aside) for ``workers=1`` and ``workers=8``.  (Exactness caveat: if
                a single batch carries more *distinct* term sets than
                the cache capacity, eviction order — and therefore which
                late repeats still hit — depends on backend completion
                order; results and scores stay identical, only cache-hit
                flags and their zero-traffic windows can differ.)
        """
        if not self._indexed:
            raise RetrievalError("call index() before search_batch()")
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        started = time.perf_counter()
        hits_before, misses_before = self._cache_counters()
        report = BatchSearchReport()
        with self.network.accounting.measure(scope="global") as window:
            if workers == 1 or len(queries) <= 1:
                for raw in queries:
                    report.responses.append(
                        self.search(raw, k=k, source_peer=source_peer)
                    )
            else:
                report.responses.extend(
                    self._search_parallel(queries, k, source_peer, workers)
                )
        report.traffic = window.delta
        report.elapsed_ms = _ms_since(started)
        hits_after, misses_after = self._cache_counters()
        report.cache_hits = hits_after - hits_before
        report.cache_misses = misses_after - misses_before
        return report

    def _search_parallel(
        self,
        queries: Sequence[str | Query],
        k: int,
        source_peer: str | None,
        workers: int,
    ) -> list[SearchResponse]:
        """Run a batch on a thread pool, preserving input order.

        With the cache enabled, repeated term sets are resolved in input
        order: the first occurrence of each distinct set goes to the
        pool (all first occurrences run concurrently), repeats are then
        served as cache hits.  This keeps the per-position hit/miss
        pattern — and therefore every per-query traffic window —
        identical to a sequential run, instead of letting thread timing
        decide which duplicate pays the backend cost.  Single-flight in
        :meth:`search` still guards identical term sets racing *across*
        batches or from direct concurrent callers.

        Context propagation: pool threads start with *empty* contexts
        (contextvars do not flow into ``ThreadPoolExecutor`` tasks), so
        each backend task runs inside a fresh copy of the submitting
        thread's context — a traced batch parents every per-query span
        on the batch caller's span, and one task's span state can never
        leak into another's (a :class:`contextvars.Context` is also not
        concurrently enterable, hence one copy per task, not a shared
        one).
        """
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # Phase 1: pipeline work (tokenize/stem) across the pool.
            processed = list(pool.map(self._process, queries))
            responses: list[SearchResponse | None] = [None] * len(processed)
            if self.cache is None:
                # Without a cache every occurrence pays the backend,
                # exactly as in a sequential run — fan the batch out.
                resolve = list(range(len(processed)))
            else:
                first_of: dict[frozenset[str], int] = {}
                for position, query in enumerate(processed):
                    first_of.setdefault(query.term_set, position)
                # enumerate + setdefault inserts positions ascending,
                # so the values are already in input order.
                resolve = list(first_of.values())
            # Phase 2: backend resolution across the pool, each task in
            # its own copy of this thread's context.
            contexts = [
                contextvars.copy_context() for _ in resolve
            ]

            def run_one(
                position: int, ctx: contextvars.Context
            ) -> SearchResponse:
                return ctx.run(
                    self.search,
                    processed[position],
                    k=k,
                    source_peer=source_peer,
                )

            for position, response in zip(
                resolve, pool.map(run_one, resolve, contexts)
            ):
                responses[position] = response
        for position, query in enumerate(processed):
            if responses[position] is None:  # a repeat: served by cache
                responses[position] = self.search(
                    query, k=k, source_peer=source_peer
                )
        return responses  # type: ignore[return-value]

    def run_querylog(
        self,
        querylog: Iterable[Query],
        k: int = 20,
        source_peer: str | None = None,
        workers: int = 1,
    ) -> BatchSearchReport:
        """Replay a generated query log (see
        :class:`repro.corpus.querylog.QueryLogGenerator`); returns the
        same per-query + aggregate report as :meth:`search_batch`."""
        return self.search_batch(
            list(querylog), k=k, source_peer=source_peer, workers=workers
        )

    # -- fault tolerance ---------------------------------------------------------

    def kill_peer(self, peer_name: str) -> None:
        """Crash a peer: its storage is destroyed without handoff (see
        :meth:`P2PNetwork.kill_peer`).  With ``replication >= 2`` reads
        fail over to the surviving replicas; the query cache is dropped
        so post-crash responses reflect the degraded network."""
        self.network.kill_peer(peer_name)
        if self.cache is not None:
            self.cache.invalidate()

    def respawn_peer(self, peer_name: str) -> None:
        """Revive a crashed peer with empty storage; run
        :meth:`run_anti_entropy` to re-converge it from its replica
        peers."""
        self.network.respawn_peer(peer_name)
        if self.cache is not None:
            self.cache.invalidate()

    def run_anti_entropy(self) -> RepairReport:
        """One anti-entropy pass: replicas of every key range exchange
        Merkle digests (MAINTENANCE-phase traffic) and ship only their
        divergent keys.  The service-level repair cadence: call after
        crashes/respawns, or periodically under churn.

        Raises:
            ConfigurationError: the service runs unreplicated.
        """
        if self._repairer is None:
            raise ConfigurationError(
                "anti-entropy repair needs replication >= 2; this "
                "service was built with replication=1"
            )
        report = self._repairer.run()
        if self.cache is not None:
            # Repair may have refreshed entries a failover read would
            # now see differently.
            self.cache.invalidate()
        return report

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path, sync: bool | None = None) -> None:
        """Persist the indexed collection as a snapshot directory.

        The snapshot (manifest + ranking statistics + a compacted
        segment store of every global-index entry) is self-contained:
        :meth:`load` rebuilds a queryable service from it without
        re-running the indexing protocol — the build-once / serve-many
        workflow.  Only the HDK-family backends (``hdk``, ``hdk_disk``,
        ``hdk_super``) persist; the baselines raise.

        Args:
            path: the snapshot directory (must not hold one already).
            sync: fsync the snapshot's segment files as they close and
                the manifest after it is written, so the completed save
                survives power loss; ``None`` inherits the service's
                construction-time ``sync`` setting.

        Raises:
            ConfigurationError: unindexed service or a backend without a
                global key index.
            StoreError: ``path`` already holds a snapshot.
        """
        if not self._indexed:
            raise ConfigurationError(
                "index() (or load()) the service before save()"
            )
        global_index = getattr(self.backend, "global_index", None)
        if not isinstance(global_index, GlobalKeyIndex):
            raise ConfigurationError(
                f"backend {self.backend_name!r} does not support "
                f"persistence; use 'hdk', 'hdk_disk', or 'hdk_super'"
            )
        overlay_name = (
            "pgrid"
            if isinstance(self.network.overlay, PGridOverlay)
            else "chord"
        )
        snapshot_io.save_index_snapshot(
            path,
            backend_name=self.backend_name,
            overlay_name=overlay_name,
            peer_names=[peer.name for peer in self.peers],
            params=self.params.as_dict(),
            global_index=global_index,
            sync=self._sync if sync is None else sync,
            replication=self.replication,
            replication_state=(
                self.replication_manager.export_state()
                if self.replication_manager is not None
                else {}
            ),
        )

    @classmethod
    def load(
        cls,
        path: str | Path,
        backend: str | None = None,
        memory_budget: int | None = None,
        memory_budget_bytes: int | None = None,
        wal: bool | None = None,
        cache_capacity: int | None = 256,
        pipeline: TextPipeline | None = None,
        backend_registry: BackendRegistry | None = None,
        overlay_fanout: int = 8,
        path_cache_capacity: int = 128,
        overlay_adaptive: bool = False,
        overlay_split_threshold: int = 64,
        overlay_merge_threshold: int = 16,
        sync: bool = False,
        replication: int | None = None,
    ) -> "SearchService":
        """Rebuild a queryable service from a :meth:`save` snapshot.

        The network (overlay type, peer names), parameters, entries, and
        ranking statistics all come from the snapshot; no indexing
        traffic is generated.  With the ``hdk_disk`` backend the
        snapshot's segment files are served *in place*: startup rebuilds
        the offset directory from each segment's ``.idx`` sidecar —
        O(segments) metadata reads, no record bodies touched.  Legacy
        generation-1 snapshots (no sidecars) are checksum-scanned once
        and self-heal their sidecars where the directory is writable;
        either way no posting-list objects are decoded until queried.  Auto-compaction is disabled on the snapshot-backed
        store so serving (and even later inserts, which only append)
        never deletes the snapshot's segment files.

        Args:
            path: the snapshot directory.
            backend: override the backend recorded in the manifest
                (``hdk`` and ``hdk_super`` load eagerly into RAM,
                ``hdk_disk`` lazily).
            memory_budget: deprecated posting-count RAM budget
                (``hdk_disk``); prefer ``memory_budget_bytes``.
            memory_budget_bytes: RAM residency budget in encoded
                posting bytes (``hdk_disk``).
            wal: write-ahead-log later incremental writes into the
                snapshot's store (``hdk_disk``); ``None`` keeps the
                index default (on).
            cache_capacity: LRU query-cache size for the new service.
            pipeline: query text pipeline (must match the one the
                collection was built with).
            backend_registry: custom registry for name resolution.
            overlay_fanout: super-peer cluster fanout (``hdk_super``).
            path_cache_capacity: in-network result-cache size per
                super-peer (``hdk_super``).
            overlay_adaptive: load-aware overlay adaptation
                (``hdk_super``): load-weighed election, hot-cluster
                split/merge, multi-level path caching.
            overlay_split_threshold: windowed load score at which a
                hot cluster splits (adaptive overlay).
            overlay_merge_threshold: calm score for merging a split
                pair back; must be < ``overlay_split_threshold``.
            sync: durability knob for the loaded service's own writes
                and later :meth:`save` calls.
            replication: replica count for the loaded service; ``None``
                keeps the degree recorded in the manifest.  With
                ``R >= 2`` every snapshot entry is placed at all R
                owners and the persisted replication state (origin
                sequence numbers, version vectors) is restored, so
                anti-entropy resumes where the saved service left off.

        Note: peers of a loaded service carry empty local collections
        (the snapshot persists the *index*, not the documents), so a
        later :meth:`add_peers` indexes only the joining peers' documents
        and cannot replay NDK-expansion at pre-snapshot contributors.
        With ``hdk_disk``, :meth:`add_peers` also appends spilled
        entries into the snapshot's ``segments/`` directory — treat a
        snapshot that keeps growing as owned by one service, and
        :meth:`save` a fresh copy to publish it.
        """
        manifest = snapshot_io.read_manifest(path)
        params = HDKParameters.from_dict(manifest.params)
        network = P2PNetwork(overlay=make_overlay(manifest.overlay))
        peers: list[Peer] = []
        for name in manifest.peer_names:
            network.add_peer(name)
            peers.append(Peer(name=name, collection=DocumentCollection()))
        backend_name = backend or manifest.backend
        effective_replication = (
            manifest.replication if replication is None else replication
        )
        service = cls(
            peers,
            network,
            params=params,
            backend=backend_name,
            pipeline=pipeline,
            cache_capacity=cache_capacity,
            backend_registry=backend_registry,
            store_dir=snapshot_io.segments_dir(path),
            memory_budget=memory_budget,
            memory_budget_bytes=memory_budget_bytes,
            wal=wal,
            overlay_fanout=overlay_fanout,
            path_cache_capacity=path_cache_capacity,
            overlay_adaptive=overlay_adaptive,
            overlay_split_threshold=overlay_split_threshold,
            overlay_merge_threshold=overlay_merge_threshold,
            sync=sync,
            replication=effective_replication,
        )
        global_index = getattr(service.backend, "global_index", None)
        restore = getattr(service.backend, "restore", None)
        if restore is None or not isinstance(global_index, GlobalKeyIndex):
            raise ConfigurationError(
                f"backend {backend_name!r} cannot serve snapshots; "
                f"use 'hdk', 'hdk_disk', or 'hdk_super'"
            )
        if isinstance(global_index, SpillingGlobalKeyIndex):
            # Never let compaction unlink the snapshot's own segment
            # files (a concurrent reader of the same snapshot would
            # lose them); writes, if any, only append.
            global_index.store.compact_dead_ratio = 1.0
            snapshot_io.populate_lazy(path, global_index)
        else:
            snapshot_io.populate_eager(path, global_index)
        restore()
        manager = service.replication_manager
        if manager is not None:
            # Resume replication where the saved service left off: the
            # persisted sequence numbers/vectors (when the snapshot was
            # replicated) plus uniform per-key versions for the freshly
            # placed — convergent by construction — replica copies, so a
            # first anti-entropy pass ships nothing.
            if (
                manifest.replication_state
                and manifest.replication == service.replication
            ):
                manager.restore_state(manifest.replication_state)
            manager.seed_versions_from_storage()
        service._indexed = True
        return service

    # -- inspection --------------------------------------------------------------

    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def indexing_reports(self) -> list[IndexingReport]:
        return list(self._reports)

    @property
    def cache_stats(self) -> CacheStats:
        """Cumulative cache counters (zeros when caching is disabled)."""
        return self.cache.stats if self.cache is not None else CacheStats()

    def stats(self) -> dict[str, object]:
        """Service-level statistics: backend index stats, peer count,
        cache counters, and the cumulative traffic snapshot.

        Returns *plain data only* — scalars, strings, and nested dicts
        of the same — snapshotting every counter instead of exposing
        live internals.  That keeps the call cheap and the result
        picklable/JSON-able as-is, which is what lets the serving
        workers (:mod:`repro.serving.pool`) report service statistics
        across the process boundary and the gateway publish them
        verbatim on ``GET /stats``.
        """
        stats: dict[str, object] = dict(self.backend.stats())
        stats["num_peers"] = len(self.peers)
        stats["cache_hits"] = self.cache_stats.hits
        stats["cache_misses"] = self.cache_stats.misses
        with self._latency_lock:
            stats["latency"] = self._latency.as_dict()
            # Lossless twin of "latency": the serving gateway rebuilds
            # per-worker histograms from this and merges them into one
            # fleet-wide distribution on GET /stats.
            stats["latency_state"] = self._latency.to_state()
        stats["traffic"] = self.network.accounting.snapshot().as_dict()
        stats["replication"] = self.replication
        if self.replication_manager is not None:
            stats["replication_detail"] = (
                self.replication_manager.describe()
            )
        return stats

    def stored_postings_total(self) -> int:
        return self.backend.stored_postings_total()

    # -- figure measurements -------------------------------------------------------
    # The per-peer / per-size aggregations the Section-5 growth
    # experiment plots (previously on the legacy engine shim).

    def stored_postings_per_peer(self) -> float:
        """Average postings stored per peer (Figure 3's y-axis)."""
        return self.stored_postings_total() / max(1, len(self.peers))

    def inserted_postings_total(self) -> int:
        """Total postings inserted during indexing (Figure 4 numerator,
        from the network's INDEXING-phase accounting)."""
        return self.network.accounting.postings(Phase.INDEXING)

    def inserted_postings_per_peer(self) -> float:
        """Average postings inserted per peer (Figure 4's y-axis)."""
        return self.inserted_postings_total() / max(1, len(self.peers))

    def inserted_postings_by_key_size(self) -> dict[int, int]:
        """Key size -> postings inserted across all peers (Figure 5)."""
        totals: dict[int, int] = {}
        for report in self._reports:
            for size, postings in report.inserted_postings_by_size.items():
                totals[size] = totals.get(size, 0) + postings
        return totals

    def collection_sample_size(self) -> int:
        """Global sample size ``D`` (Figure 5's denominator)."""
        return sum(peer.sample_size for peer in self.peers)

    # -- internals ---------------------------------------------------------------

    def _process(self, raw_query: str | Query) -> Query:
        if isinstance(raw_query, Query):
            return raw_query
        return self.query_processor.process(raw_query)

    def _cache_counters(self) -> tuple[int, int]:
        if self.cache is None:
            return 0, 0
        return self.cache.stats.hits, self.cache.stats.misses


def _ms_since(started: float) -> float:
    return (time.perf_counter() - started) * 1000.0
