"""The assembled P2P retrieval engine and the Section-5 experiments.

- :mod:`repro.engine.peer` — a peer bundling its local collection with its
  indexing role,
- :mod:`repro.engine.p2p_engine` — :class:`P2PSearchEngine`, the
  user-facing engine (build network, index, search) in either HDK or
  single-term mode,
- :mod:`repro.engine.experiment` — the peer-growth experiment protocol
  (4 -> 28 peers) producing the data series of Figures 3-7,
- :mod:`repro.engine.reporting` — typed result rows and text rendering.
"""

from .experiment import GrowthExperiment, GrowthStepResult
from .p2p_engine import EngineMode, P2PSearchEngine
from .peer import Peer
from .reporting import render_growth_table

__all__ = [
    "GrowthExperiment",
    "GrowthStepResult",
    "EngineMode",
    "P2PSearchEngine",
    "Peer",
    "render_growth_table",
]
