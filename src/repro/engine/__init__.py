"""The assembled P2P retrieval engine and the Section-5 experiments.

- :mod:`repro.engine.peer` — a peer bundling its local collection with its
  indexing role,
- :mod:`repro.engine.backends` — the pluggable :class:`RetrievalBackend`
  protocol, the string-keyed backend registry, and the four built-in
  backends (``hdk``, ``single_term``, ``single_term_bloom``,
  ``centralized``),
- :mod:`repro.engine.service` — :class:`SearchService`, the public
  facade (pipeline + backend + query cache + traffic accounting) with
  single, batch, and query-log search surfaces,
- :mod:`repro.engine.p2p_engine` — :class:`P2PSearchEngine`, the legacy
  facade (build network, index, search) kept as a thin shim over
  :class:`SearchService`,
- :mod:`repro.engine.experiment` — the peer-growth experiment protocol
  (4 -> 28 peers) producing the data series of Figures 3-7,
- :mod:`repro.engine.reporting` — typed result rows and text rendering.
"""

from .backends import (
    BackendContext,
    BackendRegistry,
    CentralizedBackend,
    HDKBackend,
    RetrievalBackend,
    SearchResponse,
    SingleTermBackend,
    SingleTermBloomBackend,
    registry,
)
from .experiment import GrowthExperiment, GrowthStepResult
from .p2p_engine import EngineMode, P2PSearchEngine
from .peer import Peer
from .reporting import render_growth_table
from .service import BatchSearchReport, SearchService, make_overlay

__all__ = [
    "BackendContext",
    "BackendRegistry",
    "BatchSearchReport",
    "CentralizedBackend",
    "EngineMode",
    "GrowthExperiment",
    "GrowthStepResult",
    "HDKBackend",
    "P2PSearchEngine",
    "Peer",
    "RetrievalBackend",
    "SearchResponse",
    "SearchService",
    "SingleTermBackend",
    "SingleTermBloomBackend",
    "make_overlay",
    "registry",
    "render_growth_table",
]
