"""The assembled P2P search engine.

:class:`P2PSearchEngine` is the library's primary entry point: give it a
document collection and a peer count, and it builds the overlay, splits the
collection across peers, runs the distributed indexing protocol (HDK or
single-term), and answers queries with full traffic accounting.

Typical use::

    from repro import HDKParameters, P2PSearchEngine
    from repro.corpus import SyntheticCorpusGenerator

    collection = SyntheticCorpusGenerator(seed=1).generate(600)
    engine = P2PSearchEngine.build(
        collection, num_peers=8, params=HDKParameters(df_max=12,
        window_size=8, s_max=3, ff=4000))
    engine.index()
    result = engine.search("t00042 t00137")
"""

from __future__ import annotations

from enum import Enum

from ..config import HDKParameters
from ..corpus.collection import DocumentCollection
from ..corpus.querylog import Query
from ..errors import ConfigurationError, RetrievalError
from ..hdk.indexer import (
    IndexingReport,
    PeerIndexer,
    run_distributed_indexing,
    run_incremental_join,
)
from ..index.global_index import GlobalKeyIndex
from ..net.accounting import Phase, TrafficAccounting
from ..net.chord import ChordOverlay, Overlay
from ..net.network import P2PNetwork
from ..net.pgrid import PGridOverlay
from ..retrieval.hdk_engine import HDKRetrievalEngine, HDKSearchResult
from ..retrieval.query import QueryProcessor
from ..retrieval.single_term import (
    SingleTermIndexer,
    SingleTermRetrievalEngine,
)
from ..text.pipeline import PipelineConfig, TextPipeline
from .peer import Peer

__all__ = ["EngineMode", "P2PSearchEngine"]


class EngineMode(Enum):
    """Which indexing/retrieval model the engine runs."""

    HDK = "hdk"
    SINGLE_TERM = "single_term"


class P2PSearchEngine:
    """A complete simulated P2P retrieval engine.

    Build via :meth:`build`; then :meth:`index` and :meth:`search`.
    """

    def __init__(
        self,
        peers: list[Peer],
        network: P2PNetwork,
        params: HDKParameters,
        mode: EngineMode,
        pipeline: TextPipeline,
    ) -> None:
        if not peers:
            raise ConfigurationError("engine needs at least one peer")
        self.peers = peers
        self.network = network
        self.params = params
        self.mode = mode
        self.pipeline = pipeline
        self.query_processor = QueryProcessor(pipeline)
        self.global_index = GlobalKeyIndex(network, params)
        self._indexed = False
        self._reports: list[IndexingReport] = []
        self._st_indexers: list[SingleTermIndexer] = []
        self._hdk_indexers: list[PeerIndexer] = []
        self._hdk_engine: HDKRetrievalEngine | None = None
        self._st_engine: SingleTermRetrievalEngine | None = None

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        collection: DocumentCollection,
        num_peers: int,
        params: HDKParameters | None = None,
        mode: EngineMode = EngineMode.HDK,
        overlay: str = "chord",
        pipeline: TextPipeline | None = None,
        accounting: TrafficAccounting | None = None,
    ) -> "P2PSearchEngine":
        """Build an engine over ``collection`` split across ``num_peers``.

        Args:
            collection: the global document collection.
            num_peers: how many peers share it (round-robin split).
            params: HDK model parameters (paper defaults when omitted).
            mode: HDK (the paper's model) or SINGLE_TERM (the baseline).
            overlay: ``"chord"`` or ``"pgrid"``.
            pipeline: the text pipeline queries are processed with; must
                match the one used to build ``collection``.
            accounting: shared traffic counters (created when omitted).
        """
        if num_peers < 1:
            raise ConfigurationError(f"num_peers must be >= 1, got {num_peers}")
        params = params or HDKParameters()
        overlay_impl = cls._make_overlay(overlay)
        network = P2PNetwork(overlay=overlay_impl, accounting=accounting)
        slices = collection.split(num_peers)
        peers: list[Peer] = []
        for index, slice_ in enumerate(slices):
            name = f"peer-{index:03d}"
            network.add_peer(name)
            peers.append(Peer(name=name, collection=slice_))
        pipeline = pipeline or TextPipeline(PipelineConfig())
        return cls(peers, network, params, mode, pipeline)

    @staticmethod
    def _make_overlay(overlay: str) -> Overlay:
        if overlay == "chord":
            return ChordOverlay()
        if overlay == "pgrid":
            return PGridOverlay()
        raise ConfigurationError(
            f"unknown overlay {overlay!r}; use 'chord' or 'pgrid'"
        )

    # -- indexing ---------------------------------------------------------------------

    def index(self) -> list[IndexingReport]:
        """Run the distributed indexing protocol for the configured mode.

        Returns per-peer indexing reports (HDK mode) or synthesized
        reports with total inserted postings (single-term mode).
        """
        if self._indexed:
            raise ConfigurationError("engine is already indexed")
        self.network.accounting.set_phase(Phase.INDEXING)
        if self.mode is EngineMode.HDK:
            self._hdk_indexers = [
                PeerIndexer(
                    peer.name, peer.collection, self.global_index, self.params
                )
                for peer in self.peers
            ]
            self._reports = run_distributed_indexing(
                self._hdk_indexers, self.params
            )
            self._hdk_engine = HDKRetrievalEngine(
                self.global_index, self.params
            )
        else:
            self._st_indexers = [
                SingleTermIndexer(peer.name, peer.collection, self.network)
                for peer in self.peers
            ]
            for indexer, peer in zip(self._st_indexers, self.peers):
                indexer.index()
                report = IndexingReport(peer_name=peer.name)
                report.inserted_postings_by_size[1] = (
                    indexer.inserted_postings
                )
                self._reports.append(report)
            total_docs = sum(p.num_documents for p in self.peers)
            total_tokens = sum(p.sample_size for p in self.peers)
            self._st_engine = SingleTermRetrievalEngine(
                self.network,
                num_documents=max(1, total_docs),
                average_doc_length=(
                    total_tokens / total_docs if total_docs else 1.0
                ),
            )
        self._indexed = True
        return self._reports

    def add_peers(
        self, new_collection: DocumentCollection, num_new_peers: int
    ) -> list[IndexingReport]:
        """Grow the network: new peers join with new documents and index
        them incrementally (the paper's growth protocol).

        In HDK mode the joining peers run the generation rounds against
        the live global index; keys their inserts push over ``DF_max``
        trigger NDK notifications and expansion at the contributing peers
        (see :func:`repro.hdk.indexer.run_incremental_join`).  In
        single-term mode the new peers simply insert their posting lists.

        Args:
            new_collection: the documents the joining peers contribute;
                ids must not collide with already-indexed documents.
            num_new_peers: how many peers share the new documents.

        Returns the joining peers' indexing reports.
        """
        if not self._indexed:
            raise ConfigurationError(
                "index() the initial network before add_peers()"
            )
        if num_new_peers < 1:
            raise ConfigurationError(
                f"num_new_peers must be >= 1, got {num_new_peers}"
            )
        slices = new_collection.split(num_new_peers)
        new_peers: list[Peer] = []
        start = len(self.peers)
        for offset, slice_ in enumerate(slices):
            name = f"peer-{start + offset:03d}"
            self.network.add_peer(name)
            new_peers.append(Peer(name=name, collection=slice_))
        self.network.accounting.set_phase(Phase.INDEXING)
        if self.mode is EngineMode.HDK:
            joining = [
                PeerIndexer(
                    peer.name, peer.collection, self.global_index, self.params
                )
                for peer in new_peers
            ]
            reports = run_incremental_join(
                self._hdk_indexers, joining, self.params
            )
            self._hdk_indexers.extend(joining)
        else:
            reports = []
            for peer in new_peers:
                indexer = SingleTermIndexer(
                    peer.name, peer.collection, self.network
                )
                indexer.index()
                self._st_indexers.append(indexer)
                report = IndexingReport(peer_name=peer.name)
                report.inserted_postings_by_size[1] = (
                    indexer.inserted_postings
                )
                reports.append(report)
            total_docs = sum(p.num_documents for p in self.peers) + sum(
                p.num_documents for p in new_peers
            )
            total_tokens = sum(p.sample_size for p in self.peers) + sum(
                p.sample_size for p in new_peers
            )
            self._st_engine = SingleTermRetrievalEngine(
                self.network,
                num_documents=max(1, total_docs),
                average_doc_length=(
                    total_tokens / total_docs if total_docs else 1.0
                ),
            )
        self.peers.extend(new_peers)
        self._reports.extend(reports)
        return reports

    # -- searching ------------------------------------------------------------------------

    def search(
        self,
        raw_query: str | Query,
        k: int = 20,
        source_peer: str | None = None,
    ) -> HDKSearchResult:
        """Execute a query; returns an :class:`HDKSearchResult` in both
        modes (the single-term result is adapted into the same shape).

        Args:
            raw_query: a raw query string (processed through the engine's
                pipeline) or an already-processed :class:`Query`.
            k: result depth.
            source_peer: the querying peer's name; defaults to the first
                peer.
        """
        if not self._indexed:
            raise RetrievalError("call index() before search()")
        if isinstance(raw_query, Query):
            query = raw_query
        else:
            query = self.query_processor.process(raw_query)
        source = source_peer or self.peers[0].name
        if self.mode is EngineMode.HDK:
            assert self._hdk_engine is not None
            return self._hdk_engine.search(source, query, k)
        assert self._st_engine is not None
        results, transferred = self._st_engine.search(source, query, k)
        adapted = HDKSearchResult(query=query)
        adapted.results = results
        adapted.keys_looked_up = len(query.terms)
        adapted.keys_found = sum(
            1 for _ in query.terms
        )  # every term lookup is answered (possibly empty)
        adapted.postings_transferred = transferred
        return adapted

    # -- inspection -----------------------------------------------------------------------

    @property
    def indexing_reports(self) -> list[IndexingReport]:
        return list(self._reports)

    def stored_postings_total(self) -> int:
        """Total postings stored in the network (Figure 3 numerator)."""
        if self.mode is EngineMode.HDK:
            return self.global_index.stored_postings_total()
        return self.network.stored_value_total(
            lambda value: value.posting_count()
            if hasattr(value, "posting_count")
            else 0
        )

    def stored_postings_per_peer(self) -> float:
        """Average postings stored per peer (Figure 3's y-axis)."""
        return self.stored_postings_total() / max(1, len(self.peers))

    def inserted_postings_total(self) -> int:
        """Total postings inserted during indexing (Figure 4 numerator)."""
        return self.network.accounting.postings(Phase.INDEXING)

    def inserted_postings_per_peer(self) -> float:
        """Average postings inserted per peer (Figure 4's y-axis)."""
        return self.inserted_postings_total() / max(1, len(self.peers))

    def inserted_postings_by_key_size(self) -> dict[int, int]:
        """Key size -> postings inserted across all peers (Figure 5)."""
        totals: dict[int, int] = {}
        for report in self._reports:
            for size, postings in report.inserted_postings_by_size.items():
                totals[size] = totals.get(size, 0) + postings
        return totals

    def collection_sample_size(self) -> int:
        """Global sample size ``D`` (Figure 5's denominator)."""
        return sum(peer.sample_size for peer in self.peers)

    def stored_index_bytes(self) -> int:
        """Total wire size of the stored index in bytes (delta+varint
        codec), the byte-level counterpart of
        :meth:`stored_postings_total`."""
        from ..index.codec import posting_list_wire_size

        total = 0
        for storage in self.network.storages():
            for entry in storage:
                postings = getattr(entry.value, "postings", None)
                if postings is not None:
                    total += posting_list_wire_size(postings)
        return total
