"""The assembled P2P search engine (legacy facade).

:class:`P2PSearchEngine` is the original entry point: give it a document
collection and a peer count, and it builds the overlay, splits the
collection across peers, runs the distributed indexing protocol (HDK or
single-term), and answers queries with full traffic accounting.

It is now a thin back-compat shim over the redesigned API — a
:class:`repro.engine.service.SearchService` holding a pluggable
:class:`repro.engine.backends.RetrievalBackend` — and keeps its original
surface (``build`` / ``index`` / ``add_peers`` / ``search`` returning
:class:`HDKSearchResult` in both modes) unchanged.  New code should use
:class:`SearchService` directly: it supports two more backends
(``single_term_bloom``, ``centralized``), result caching, and batch
querying.

Typical use::

    from repro import HDKParameters, P2PSearchEngine
    from repro.corpus import SyntheticCorpusGenerator

    collection = SyntheticCorpusGenerator(seed=1).generate(600)
    engine = P2PSearchEngine.build(
        collection, num_peers=8, params=HDKParameters(df_max=12,
        window_size=8, s_max=3, ff=4000))
    engine.index()
    result = engine.search("t00042 t00137")
"""

from __future__ import annotations

from enum import Enum

from ..config import HDKParameters
from ..corpus.collection import DocumentCollection
from ..corpus.querylog import Query
from ..errors import ConfigurationError
from ..hdk.indexer import IndexingReport
from ..index.global_index import GlobalKeyIndex
from ..net.accounting import TrafficAccounting
from ..net.chord import Overlay
from ..net.network import P2PNetwork
from ..retrieval.hdk_engine import HDKSearchResult
from ..retrieval.query import QueryProcessor
from ..text.pipeline import TextPipeline
from .backends import HDKBackend, SearchResponse
from .peer import Peer
from .service import SearchService, make_overlay, spawn_peers

__all__ = ["EngineMode", "P2PSearchEngine"]


class EngineMode(Enum):
    """Which indexing/retrieval model the engine runs."""

    HDK = "hdk"
    SINGLE_TERM = "single_term"

    @property
    def backend_name(self) -> str:
        """The registry key of the backend implementing this mode."""
        return self.value


class P2PSearchEngine:
    """A complete simulated P2P retrieval engine (legacy API).

    Build via :meth:`build`; then :meth:`index` and :meth:`search`.
    Internally delegates to a cache-less :class:`SearchService` so the
    original per-query traffic semantics are preserved exactly.
    """

    def __init__(
        self,
        peers: list[Peer],
        network: P2PNetwork,
        params: HDKParameters,
        mode: EngineMode,
        pipeline: TextPipeline,
    ) -> None:
        self.mode = mode
        self._service = SearchService(
            peers,
            network,
            params=params,
            backend=mode.backend_name,
            pipeline=pipeline,
            cache_capacity=None,  # legacy engine has no result cache
        )

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        collection: DocumentCollection,
        num_peers: int,
        params: HDKParameters | None = None,
        mode: EngineMode = EngineMode.HDK,
        overlay: str = "chord",
        pipeline: TextPipeline | None = None,
        accounting: TrafficAccounting | None = None,
    ) -> "P2PSearchEngine":
        """Build an engine over ``collection`` split across ``num_peers``.

        Args:
            collection: the global document collection.
            num_peers: how many peers share it (round-robin split).
            params: HDK model parameters (paper defaults when omitted).
            mode: HDK (the paper's model) or SINGLE_TERM (the baseline).
            overlay: ``"chord"`` or ``"pgrid"``.
            pipeline: the text pipeline queries are processed with; must
                match the one used to build ``collection``.
            accounting: shared traffic counters (created when omitted).
        """
        if num_peers < 1:
            raise ConfigurationError(f"num_peers must be >= 1, got {num_peers}")
        network = P2PNetwork(
            overlay=cls._make_overlay(overlay), accounting=accounting
        )
        peers = spawn_peers(network, collection, num_peers)
        pipeline = pipeline or TextPipeline()
        return cls(peers, network, params or HDKParameters(), mode, pipeline)

    @staticmethod
    def _make_overlay(overlay: str) -> Overlay:
        return make_overlay(overlay)

    # -- delegated attributes ----------------------------------------------------

    @property
    def service(self) -> SearchService:
        """The underlying facade (the new API), for migration paths."""
        return self._service

    @property
    def peers(self) -> list[Peer]:
        return self._service.peers

    @property
    def network(self) -> P2PNetwork:
        return self._service.network

    @property
    def params(self) -> HDKParameters:
        return self._service.params

    @property
    def pipeline(self) -> TextPipeline:
        return self._service.pipeline

    @property
    def query_processor(self) -> QueryProcessor:
        return self._service.query_processor

    @property
    def global_index(self) -> GlobalKeyIndex:
        """The distributed key index (live in HDK mode; an empty
        placeholder in single-term mode, as in the original engine)."""
        backend = self._service.backend
        if isinstance(backend, HDKBackend):
            return backend.global_index
        placeholder = getattr(self, "_placeholder_index", None)
        if placeholder is None:
            placeholder = GlobalKeyIndex(self.network, self.params)
            self._placeholder_index = placeholder
        return placeholder

    # -- indexing ----------------------------------------------------------------

    def index(self) -> list[IndexingReport]:
        """Run the distributed indexing protocol for the configured mode.

        Returns per-peer indexing reports (HDK mode) or synthesized
        reports with total inserted postings (single-term mode).
        """
        return self._service.index()

    def add_peers(
        self, new_collection: DocumentCollection, num_new_peers: int
    ) -> list[IndexingReport]:
        """Grow the network: new peers join with new documents and index
        them incrementally (the paper's growth protocol).

        In HDK mode the joining peers run the generation rounds against
        the live global index; keys their inserts push over ``DF_max``
        trigger NDK notifications and expansion at the contributing peers
        (see :func:`repro.hdk.indexer.run_incremental_join`).  In
        single-term mode the new peers simply insert their posting lists.

        Args:
            new_collection: the documents the joining peers contribute;
                ids must not collide with already-indexed documents.
            num_new_peers: how many peers share the new documents.

        Returns the joining peers' indexing reports.
        """
        return self._service.add_peers(new_collection, num_new_peers)

    # -- searching ---------------------------------------------------------------

    def search(
        self,
        raw_query: str | Query,
        k: int = 20,
        source_peer: str | None = None,
    ) -> HDKSearchResult:
        """Execute a query; returns an :class:`HDKSearchResult` in both
        modes (the backend response is adapted into the legacy shape).

        Args:
            raw_query: a raw query string (processed through the engine's
                pipeline) or an already-processed :class:`Query`.
            k: result depth.
            source_peer: the querying peer's name; defaults to the first
                peer.
        """
        response = self._service.search(raw_query, k=k, source_peer=source_peer)
        return self._adapt(response)

    @staticmethod
    def _adapt(response: SearchResponse) -> HDKSearchResult:
        adapted = HDKSearchResult(query=response.query)
        adapted.results = response.results
        adapted.keys_looked_up = response.keys_looked_up
        adapted.keys_found = response.keys_found
        adapted.postings_transferred = response.postings_transferred
        adapted.dk_keys = response.dk_keys
        adapted.ndk_keys = response.ndk_keys
        return adapted

    # -- inspection --------------------------------------------------------------

    @property
    def indexing_reports(self) -> list[IndexingReport]:
        return self._service.indexing_reports

    def stored_postings_total(self) -> int:
        """Total postings stored in the network (Figure 3 numerator)."""
        return self._service.stored_postings_total()

    def stored_postings_per_peer(self) -> float:
        """Average postings stored per peer (Figure 3's y-axis)."""
        return self._service.stored_postings_per_peer()

    def inserted_postings_total(self) -> int:
        """Total postings inserted during indexing (Figure 4 numerator)."""
        return self._service.inserted_postings_total()

    def inserted_postings_per_peer(self) -> float:
        """Average postings inserted per peer (Figure 4's y-axis)."""
        return self._service.inserted_postings_per_peer()

    def inserted_postings_by_key_size(self) -> dict[int, int]:
        """Key size -> postings inserted across all peers (Figure 5)."""
        return self._service.inserted_postings_by_key_size()

    def collection_sample_size(self) -> int:
        """Global sample size ``D`` (Figure 5's denominator)."""
        return self._service.collection_sample_size()

    def stored_index_bytes(self) -> int:
        """Total wire size of the stored index in bytes (delta+varint
        codec), the byte-level counterpart of
        :meth:`stored_postings_total`."""
        from ..index.codec import posting_list_wire_size

        total = 0
        for storage in self.network.storages():
            for entry in storage:
                postings = getattr(entry.value, "postings", None)
                if postings is not None:
                    total += posting_list_wire_size(postings)
        return total
