"""Text rendering of experiment results.

Benchmarks and examples print the same rows the paper's figures plot;
these helpers render :class:`GrowthStepResult` sequences as aligned text
tables and as per-figure series.
"""

from __future__ import annotations

from typing import Sequence

from ..utils import format_count, format_table
from .experiment import GrowthStepResult

__all__ = [
    "render_growth_table",
    "series_by_label",
    "render_figure_series",
]


def render_growth_table(results: Sequence[GrowthStepResult]) -> str:
    """All measurements, one row per (step, configuration)."""
    headers = [
        "config",
        "peers",
        "docs",
        "stored/peer",
        "inserted/peer",
        "IS/D",
        "retrieved/query",
        "n_k",
        "top-20 overlap %",
    ]
    rows = []
    for step in results:
        rows.append(
            [
                step.label,
                step.num_peers,
                step.num_documents,
                format_count(step.stored_postings_per_peer),
                format_count(step.inserted_postings_per_peer),
                f"{step.is_ratio_total:.2f}",
                format_count(step.retrieval_postings_per_query),
                f"{step.keys_per_query:.2f}" if step.keys_per_query else "-",
                f"{step.top20_overlap:.1f}",
            ]
        )
    return format_table(headers, rows)


def series_by_label(
    results: Sequence[GrowthStepResult],
) -> dict[str, list[GrowthStepResult]]:
    """Group results into one series per configuration label, ordered by
    collection size (the lines of Figures 3-7)."""
    series: dict[str, list[GrowthStepResult]] = {}
    for step in results:
        series.setdefault(step.label, []).append(step)
    for steps in series.values():
        steps.sort(key=lambda s: s.num_documents)
    return series


def render_figure_series(
    results: Sequence[GrowthStepResult],
    value_of,
    value_header: str,
) -> str:
    """Render one figure: rows are collection sizes, columns are series.

    Args:
        results: the experiment output.
        value_of: function extracting the plotted value from a step.
        value_header: what the value means (title row).
    """
    series = series_by_label(results)
    labels = sorted(series)
    doc_counts = sorted({step.num_documents for step in results})
    headers = ["#docs"] + labels
    rows = []
    for docs in doc_counts:
        row: list[str] = [str(docs)]
        for label in labels:
            match = next(
                (
                    step
                    for step in series[label]
                    if step.num_documents == docs
                ),
                None,
            )
            row.append(format_count(value_of(match)) if match else "-")
        rows.append(row)
    return f"{value_header}\n" + format_table(headers, rows)
