"""Pluggable retrieval backends.

The engine used to hard-code its two retrieval models as an enum with
``if/else`` branches; every new routing/caching substrate (the super-peer
and DHT-caching directions in PAPERS.md) would have meant touching the
core again.  This module turns the seam into a first-class API:

- :class:`RetrievalBackend` — the protocol every backend implements
  (``index`` / ``add_peers`` / ``search`` / ``stats``), all returning the
  shared :class:`SearchResponse` shape;
- :class:`BackendRegistry` and the module-level :data:`registry` — a
  string-keyed factory map (``registry.create("hdk", context)``);
- six registered implementations:

  ==================  ====================================================
  ``hdk``             the paper's model (bounded per-key transfers)
  ``hdk_disk``        the paper's model over the disk-backed
                      :class:`repro.store.SpillingGlobalKeyIndex`
                      (cold posting lists live in segment files under a
                      RAM budget; identical results to ``hdk``)
  ``hdk_super``       the paper's model routed through the super-peer
                      hierarchy (:mod:`repro.overlay`): bounded-hop
                      paths, Bloom cluster summaries, and in-network
                      DHT-path result caches at super-peers (identical
                      results to ``hdk``; hops and traffic only improve)
  ``single_term``     naive distributed single-term baseline (Figure 6)
  ``single_term_bloom``  Bloom pre-intersection over the single-term
                      index (Reynolds & Vahdat's conjunctive protocol)
  ``topk``            distributed top-k via the Threshold Algorithm
                      (Balke et al.) over the single-term index
  ``centralized``     single-node BM25 oracle (the Terrier stand-in)
  ==================  ====================================================

Backends are constructed from a :class:`BackendContext` (network +
parameters) and own their indexers/engines; the
:class:`repro.engine.service.SearchService` facade owns everything above
(query pipeline, cache, traffic windows, batching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Protocol, runtime_checkable

from ..config import HDKParameters
from ..corpus.collection import DocumentCollection
from ..corpus.querylog import Query
from ..errors import ConfigurationError, RetrievalError
from ..hdk.indexer import IndexingReport, PeerIndexer
from ..index.global_index import GlobalKeyIndex
from ..indexing.pipeline import IndexingPipeline
from ..net.accounting import TrafficSnapshot
from ..net.network import P2PNetwork
from ..overlay import HierarchicalRouter, SuperPeerTopology
from ..retrieval.centralized import CentralizedBM25Engine
from ..retrieval.hdk_engine import HDKRetrievalEngine
from ..retrieval.ranking import RankedResult
from ..retrieval.single_term import (
    SingleTermIndexer,
    SingleTermRetrievalEngine,
)
from ..retrieval.single_term_bloom import BloomSingleTermEngine
from ..retrieval.topk import DistributedTopKEngine
from ..store.spill import SpillingGlobalKeyIndex
from .peer import Peer

__all__ = [
    "BackendContext",
    "BackendRegistry",
    "CentralizedBackend",
    "DistributedTopKBackend",
    "HDKBackend",
    "HDKDiskBackend",
    "HDKSuperBackend",
    "RetrievalBackend",
    "SearchResponse",
    "SingleTermBackend",
    "SingleTermBloomBackend",
    "registry",
]


@dataclass
class SearchResponse:
    """The uniform response every backend returns for one query.

    Attributes:
        query: the executed (processed) query.
        backend: name of the backend that answered it.
        results: top-k ranked documents.
        k: the requested result depth.
        keys_looked_up: index lookups issued by this call (``n_k`` for
            HDK, one per probed term for the single-term family, term
            count for centralized; zero when served from the cache).
        keys_found: lookups that returned a *non-empty* indexed entry.
        postings_transferred: network traffic in postings (the paper's
            cost unit); zero for the centralized oracle and for cache
            hits.
        dk_keys / ndk_keys: HDK lattice classification counts (zero for
            the other backends).
        cache_hit: True when the service answered from its result cache.
        elapsed_ms: wall-clock service time for this query.
        traffic: the per-phase traffic window the query generated
            (``None`` until the service attaches it; cached responses
            carry an all-zero window).
        detail: backend-specific extras (e.g. the Bloom protocol's
            filter/candidate/false-positive breakdown).
    """

    query: Query
    backend: str
    results: list[RankedResult] = field(default_factory=list)
    k: int = 20
    keys_looked_up: int = 0
    keys_found: int = 0
    postings_transferred: int = 0
    dk_keys: int = 0
    ndk_keys: int = 0
    cache_hit: bool = False
    elapsed_ms: float = 0.0
    traffic: TrafficSnapshot | None = None
    detail: dict[str, int] = field(default_factory=dict)

    def clipped(self, k: int) -> "SearchResponse":
        """A copy truncated to depth ``k`` (deep-enough cached rankings
        prefix-match shallower requests)."""
        return SearchResponse(
            query=self.query,
            backend=self.backend,
            results=self.results[:k],
            k=k,
            keys_looked_up=self.keys_looked_up,
            keys_found=self.keys_found,
            postings_transferred=self.postings_transferred,
            dk_keys=self.dk_keys,
            ndk_keys=self.ndk_keys,
            cache_hit=self.cache_hit,
            elapsed_ms=self.elapsed_ms,
            traffic=self.traffic,
            detail=dict(self.detail),
        )


@dataclass
class BackendContext:
    """Everything a backend needs to build itself.

    Attributes:
        network: the shared simulated network (overlay + storage +
            traffic accounting).
        params: HDK model parameters (backends that don't use them may
            ignore them).
        store_dir: directory for disk-backed backends (``hdk_disk``);
            ``None`` gives the store a private temporary directory.
        memory_budget: deprecated posting-count RAM budget for
            disk-backed backends; ``None`` uses the byte-denominated
            default.  Mutually exclusive with ``memory_budget_bytes``.
        memory_budget_bytes: RAM residency budget for disk-backed
            backends in encoded posting bytes; ``None`` uses the store
            default.
        wal: write-ahead-log incremental writes in the disk backend's
            store (crash-durable builds); ``None`` keeps the index
            default (on).
        overlay_fanout: leaves per super-peer cluster (``hdk_super``).
        path_cache_capacity: per-super-peer in-network result-cache
            size in keys (``hdk_super``); ``0`` disables path caching.
        overlay_adaptive: load-aware overlay adaptation
            (``hdk_super``) — super-peer election weighs observed load,
            hot clusters split and cooled-down pairs merge back, and
            path caching extends to every super-peer on the query path
            with invalidation fan-out.  Off keeps the static,
            byte-reproducible overlay.
        overlay_split_threshold: windowed per-cluster load score at
            which a hot cluster splits (adaptive overlay only).
        overlay_merge_threshold: score at or below which a split pair
            counts as calm; must be < ``overlay_split_threshold``.
        sync: fsync segment files on rollover/close (disk-backed
            backends) — the durability knob for real deployments.
        index_workers: thread-pool width of the sharded indexing
            pipeline the backend builds with (``repro.indexing``);
            ``1`` is the sequential reference build, any value is
            byte-identical to it.
        replication: replica count per key range (``repro.replication``).
            Informational at this layer — the service installs the
            :class:`~repro.replication.ReplicationManager` on the
            network; backends see its effects only through the network
            primitives they already use.  ``1`` means the unreplicated
            stack, byte-identical to before the subsystem existed.
    """

    network: P2PNetwork
    params: HDKParameters
    store_dir: str | Path | None = None
    memory_budget: int | None = None
    memory_budget_bytes: int | None = None
    wal: bool | None = None
    overlay_fanout: int = 8
    path_cache_capacity: int = 128
    overlay_adaptive: bool = False
    overlay_split_threshold: int = 64
    overlay_merge_threshold: int = 16
    sync: bool = False
    index_workers: int = 1
    replication: int = 1


@runtime_checkable
class RetrievalBackend(Protocol):
    """The protocol every pluggable backend implements.

    Lifecycle: construct from a :class:`BackendContext` (via the
    registry), :meth:`index` the initial peers once, optionally
    :meth:`add_peers` as the network grows, then :meth:`search` freely.
    """

    #: Registry key; also stamped on every :class:`SearchResponse`.
    name: str

    def index(self, peers: list[Peer]) -> list[IndexingReport]:
        """Run the backend's indexing protocol over ``peers``."""
        ...

    def add_peers(self, new_peers: list[Peer]) -> list[IndexingReport]:
        """Index newly joined peers incrementally."""
        ...

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> SearchResponse:
        """Answer ``query`` issued from ``source_peer_name``."""
        ...

    def stats(self) -> dict[str, Any]:
        """Backend-specific index statistics (sizes, key counts, ...)."""
        ...

    def stored_postings_total(self) -> int:
        """Total postings held by the backend's index."""
        ...


BackendFactory = Callable[[BackendContext], "RetrievalBackend"]


class BackendRegistry:
    """String-keyed registry of backend factories.

    The default instance (:data:`registry`) has the four built-in
    backends; extensions register their own::

        @registry.backend("super_peer")
        class SuperPeerBackend: ...
    """

    def __init__(self) -> None:
        self._factories: dict[str, BackendFactory] = {}

    def register(self, name: str, factory: BackendFactory) -> None:
        """Register ``factory`` under ``name`` (must be unused)."""
        if not name:
            raise ConfigurationError("backend name must be non-empty")
        if name in self._factories:
            raise ConfigurationError(
                f"backend {name!r} is already registered"
            )
        self._factories[name] = factory

    def backend(self, name: str) -> Callable[[type], type]:
        """Class-decorator form of :meth:`register`; also stamps the
        class's ``name`` attribute."""

        def decorate(cls: type) -> type:
            cls.name = name
            self.register(name, cls)
            return cls

        return decorate

    def create(
        self, name: str, context: BackendContext
    ) -> "RetrievalBackend":
        """Instantiate the backend registered under ``name``.

        Raises:
            ConfigurationError: unknown name (the message lists the
                registered backends).
        """
        factory = self._factories.get(name)
        if factory is None:
            known = ", ".join(self.names())
            raise ConfigurationError(
                f"unknown backend {name!r}; registered backends: {known}"
            )
        return factory(context)

    def names(self) -> list[str]:
        """Registered backend names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


#: The default registry holding the built-in backends.
registry = BackendRegistry()


def _guard_double_index(
    backend: "RetrievalBackend", indexed: bool
) -> None:
    """Make double-build explicit: ``index()`` *starts* at most once per
    backend instance.  Re-running it — after success or after a failed
    attempt — would replay the publication protocol into an already
    (partially) populated index: duplicate inserts, double-counted
    statistics, silent corruption.  Growth goes through ``add_peers()``;
    recovery from a failed build goes through a fresh backend."""
    if indexed:
        raise ConfigurationError(
            f"backend {backend.name!r} already ran index(); it runs once "
            "per backend (even a failed run leaves partial state) — grow "
            "the population with add_peers(), or construct a fresh "
            "backend to rebuild"
        )


# -- HDK ------------------------------------------------------------------------


@registry.backend("hdk")
class HDKBackend:
    """The paper's model: distributed HDK indexing + lattice retrieval."""

    def __init__(self, context: BackendContext) -> None:
        self.context = context
        self.global_index = self._make_index(context)
        #: The shared build path: initial builds and incremental joins
        #: both run through this sharded pipeline (sequential when
        #: ``context.index_workers == 1``, byte-identical either way).
        self.pipeline = IndexingPipeline(workers=context.index_workers)
        self._indexers: list[PeerIndexer] = []
        self._engine: HDKRetrievalEngine | None = None
        self._index_started = False

    def _make_index(self, context: BackendContext) -> GlobalKeyIndex:
        return GlobalKeyIndex(context.network, context.params)

    def index(self, peers: list[Peer]) -> list[IndexingReport]:
        # Guard on *started*, not succeeded: a failed build leaves
        # partial state a retry would double-publish into.
        _guard_double_index(self, self._index_started)
        self._index_started = True
        params = self.context.params
        self._indexers = [
            PeerIndexer(peer.name, peer.collection, self.global_index, params)
            for peer in peers
        ]
        reports = self.pipeline.build(self._indexers, params)
        self._engine = HDKRetrievalEngine(self.global_index, params)
        return reports

    def add_peers(self, new_peers: list[Peer]) -> list[IndexingReport]:
        params = self.context.params
        joining = [
            PeerIndexer(peer.name, peer.collection, self.global_index, params)
            for peer in new_peers
        ]
        reports = self.pipeline.join(self._indexers, joining, params)
        self._indexers.extend(joining)
        return reports

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> SearchResponse:
        if self._engine is None:
            raise RetrievalError("call index() before search()")
        result = self._engine.search(source_peer_name, query, k)
        return SearchResponse(
            query=query,
            backend=self.name,
            results=result.results,
            k=k,
            keys_looked_up=result.keys_looked_up,
            keys_found=result.keys_found,
            postings_transferred=result.postings_transferred,
            dk_keys=result.dk_keys,
            ndk_keys=result.ndk_keys,
        )

    def restore(self) -> None:
        """Mark the backend queryable after its global index was
        populated externally (snapshot load): builds the retrieval
        engine without running the indexing protocol."""
        self._index_started = True  # index() must not replay onto it
        self._engine = HDKRetrievalEngine(
            self.global_index, self.context.params
        )

    def stats(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "keys": self.global_index.key_count(),
            "stored_postings": self.stored_postings_total(),
            "num_documents": self.global_index.num_documents,
        }

    def stored_postings_total(self) -> int:
        return self.global_index.stored_postings_total()


@registry.backend("hdk_super")
class HDKSuperBackend(HDKBackend):
    """The paper's model served through a super-peer hierarchy.

    Storage placement, the indexing protocol, and the lattice walk are
    byte-identical to ``hdk`` — only *routing* changes: the backend
    clusters the network's peers under super-peers
    (:class:`repro.overlay.SuperPeerTopology`, ``overlay_fanout`` leaves
    per cluster) and installs a
    :class:`repro.overlay.HierarchicalRouter`, so every DHT message
    takes a bounded-hop path (leaf → super-peer → home super-peer →
    owner) instead of the flat O(log N) overlay walk, and the home
    super-peer answers repeated term-sets from its bounded in-network
    result cache (``path_cache_capacity`` keys, invalidated on insert)
    and definitely-absent keys from its Bloom cluster summary.

    With ``overlay_adaptive`` the overlay additionally balances itself
    under skew: super-peer election weighs observed load, hot clusters
    split at their median member (and merge back after a cool-down),
    and responses fill a path cache at *every* super-peer they retrace
    through, with scoped invalidation fan-out on insert.  Results stay
    byte-identical to ``hdk`` either way.

    Membership changes re-cluster and rebuild the routing state; that
    traffic is accounted under the MAINTENANCE phase alongside the key
    handoffs themselves.  Crash/respawn events repair only the affected
    cluster (the fault model keeps ring positions), preserving the
    other clusters' path caches.

    Concurrency note: results and posting counts are deterministic at
    any worker count, but per-query *hop* counts can vary with thread
    interleaving — concurrent first lookups of a shared key may both
    miss the path cache where a sequential run would hit on the second.
    """

    def __init__(self, context: BackendContext) -> None:
        super().__init__(context)
        topology = SuperPeerTopology(
            context.network, fanout=context.overlay_fanout
        )
        self.router = HierarchicalRouter(
            topology,
            path_cache_capacity=context.path_cache_capacity,
            adaptive=context.overlay_adaptive,
            split_threshold=context.overlay_split_threshold,
            merge_threshold=context.overlay_merge_threshold,
        )
        self.router.install(context.network)

    def restore(self) -> None:
        # Snapshot loads place entries directly into storages without
        # routing them, so the cluster summaries must be rebuilt before
        # the first query can consult them.
        self.router.refresh()
        super().restore()

    def stats(self) -> dict[str, Any]:
        stats = super().stats()
        stats["overlay"] = self.router.describe()
        return stats


@registry.backend("hdk_disk")
class HDKDiskBackend(HDKBackend):
    """The paper's model over the disk-backed spilling index.

    The indexing and retrieval protocols (and therefore the results and
    the traffic accounting) are identical to ``hdk``; the difference is
    residency: cold posting lists live in append-only segment files
    (:class:`repro.store.SegmentStore`) and only a bounded hot set plus
    a bounded block cache stay in RAM, so the collection can exceed
    memory.  Configure via :class:`BackendContext` (``store_dir``,
    ``memory_budget``).
    """

    global_index: SpillingGlobalKeyIndex

    def _make_index(self, context: BackendContext) -> GlobalKeyIndex:
        kwargs: dict[str, Any] = {}
        if context.memory_budget is not None:
            kwargs["memory_budget"] = context.memory_budget
        elif context.memory_budget_bytes is not None:
            kwargs["memory_budget_bytes"] = context.memory_budget_bytes
        if context.wal is not None:
            kwargs["wal"] = context.wal
        return SpillingGlobalKeyIndex(
            context.network,
            context.params,
            store_dir=context.store_dir,
            sync=context.sync,
            **kwargs,
        )

    def stats(self) -> dict[str, Any]:
        stats = super().stats()
        stats["spill"] = self.global_index.spill_stats()
        return stats


# -- single-term family ---------------------------------------------------------


class _SingleTermIndexedBackend:
    """Shared indexing side of the two single-term backends.

    Both insert full per-term posting lists via
    :class:`SingleTermIndexer`; they differ only in the query protocol,
    supplied by :meth:`_make_engine`.  Global BM25 statistics
    (document count, average length) are recomputed from the full peer
    population in one place — :meth:`_rebuild_engine` — for both the
    initial build and every incremental join.
    """

    name = "single_term_base"

    def __init__(self, context: BackendContext) -> None:
        self.context = context
        self._peers: list[Peer] = []
        self._indexers: list[SingleTermIndexer] = []
        self._engine: Any = None
        self._index_started = False

    # -- indexing (shared) ------------------------------------------------------

    def index(self, peers: list[Peer]) -> list[IndexingReport]:
        _guard_double_index(self, self._index_started)
        self._index_started = True
        return self._index_new(peers)

    def add_peers(self, new_peers: list[Peer]) -> list[IndexingReport]:
        return self._index_new(new_peers)

    def _index_new(self, peers: list[Peer]) -> list[IndexingReport]:
        reports: list[IndexingReport] = []
        for peer in peers:
            indexer = SingleTermIndexer(
                peer.name, peer.collection, self.context.network
            )
            indexer.index()
            self._indexers.append(indexer)
            report = IndexingReport(peer_name=peer.name)
            report.inserted_postings_by_size[1] = indexer.inserted_postings
            reports.append(report)
        self._peers.extend(peers)
        self._rebuild_engine()
        return reports

    def _rebuild_engine(self) -> None:
        """Recompute global BM25 statistics and rebuild the query engine
        (the logic previously copy-pasted between ``index()`` and
        ``add_peers()``)."""
        total_docs = sum(p.num_documents for p in self._peers)
        total_tokens = sum(p.sample_size for p in self._peers)
        self._engine = self._make_engine(
            num_documents=max(1, total_docs),
            average_doc_length=(
                total_tokens / total_docs if total_docs else 1.0
            ),
        )

    def _make_engine(
        self, num_documents: int, average_doc_length: float
    ) -> Any:
        raise NotImplementedError

    # -- shared inspection ------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "stored_postings": self.stored_postings_total(),
            "num_documents": sum(p.num_documents for p in self._peers),
        }

    def stored_postings_total(self) -> int:
        return self.context.network.stored_value_total(
            lambda value: value.posting_count()
            if hasattr(value, "posting_count")
            else 0
        )


@registry.backend("single_term")
class SingleTermBackend(_SingleTermIndexedBackend):
    """Naive distributed single-term retrieval (full posting lists)."""

    def _make_engine(
        self, num_documents: int, average_doc_length: float
    ) -> SingleTermRetrievalEngine:
        return SingleTermRetrievalEngine(
            self.context.network,
            num_documents=num_documents,
            average_doc_length=average_doc_length,
        )

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> SearchResponse:
        if self._engine is None:
            raise RetrievalError("call index() before search()")
        outcome = self._engine.search_outcome(source_peer_name, query, k)
        return SearchResponse(
            query=query,
            backend=self.name,
            results=outcome.results,
            k=k,
            keys_looked_up=len(query.terms),
            keys_found=outcome.terms_found,
            postings_transferred=outcome.postings_transferred,
        )


@registry.backend("single_term_bloom")
class SingleTermBloomBackend(_SingleTermIndexedBackend):
    """Bloom-filter pre-intersection over the single-term index
    (conjunctive semantics; Reynolds & Vahdat's protocol)."""

    def _make_engine(
        self, num_documents: int, average_doc_length: float
    ) -> BloomSingleTermEngine:
        return BloomSingleTermEngine(
            self.context.network,
            num_documents=num_documents,
            average_doc_length=average_doc_length,
        )

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> SearchResponse:
        if self._engine is None:
            raise RetrievalError("call index() before search()")
        outcome = self._engine.search(source_peer_name, query, k)
        return SearchResponse(
            query=query,
            backend=self.name,
            results=outcome.results,
            k=k,
            # The AND protocol stops probing at the first unknown term,
            # so the lookup count can be below len(query.terms).
            keys_looked_up=outcome.terms_probed,
            keys_found=outcome.terms_found,
            postings_transferred=outcome.postings_transferred,
            detail={
                "filter_posting_equivalents": (
                    outcome.filter_posting_equivalents
                ),
                "candidate_postings": outcome.candidate_postings,
                "false_positives_removed": outcome.false_positives_removed,
            },
        )


@registry.backend("topk")
class DistributedTopKBackend(_SingleTermIndexedBackend):
    """Distributed top-k (Threshold Algorithm, Balke et al. ICDE 2005)
    over the single-term index: sorted access in score order plus random
    access to complete candidates, stopping at the exact BM25 top-k."""

    #: Postings fetched per term per round of sorted access.
    batch_size = 10

    def _make_engine(
        self, num_documents: int, average_doc_length: float
    ) -> DistributedTopKEngine:
        return DistributedTopKEngine(
            self.context.network,
            num_documents=num_documents,
            average_doc_length=average_doc_length,
            batch_size=self.batch_size,
        )

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> SearchResponse:
        if self._engine is None:
            raise RetrievalError("call index() before search()")
        outcome = self._engine.search(source_peer_name, query, k)
        return SearchResponse(
            query=query,
            backend=self.name,
            results=outcome.results,
            k=k,
            keys_looked_up=len(query.terms),
            keys_found=outcome.terms_found,
            postings_transferred=outcome.postings_transferred,
            detail={
                "sorted_accesses": outcome.sorted_accesses,
                "random_accesses": outcome.random_accesses,
                "rounds": outcome.rounds,
            },
        )


# -- centralized oracle ---------------------------------------------------------


@registry.backend("centralized")
class CentralizedBackend:
    """Single-node BM25 over the whole collection — the zero-network
    oracle baseline (the paper's Terrier stand-in for Figure 7)."""

    def __init__(self, context: BackendContext) -> None:
        self.context = context
        self._peers: list[Peer] = []
        self._engine: CentralizedBM25Engine | None = None
        self._index_started = False

    def index(self, peers: list[Peer]) -> list[IndexingReport]:
        _guard_double_index(self, self._index_started)
        self._index_started = True
        return self._absorb(peers)

    def add_peers(self, new_peers: list[Peer]) -> list[IndexingReport]:
        return self._absorb(new_peers)

    def _absorb(self, peers: list[Peer]) -> list[IndexingReport]:
        """Pull the peers' documents into the central index (rebuilt from
        scratch — a centralized engine has no incremental protocol)."""
        self._peers.extend(peers)
        merged = DocumentCollection()
        for peer in self._peers:
            merged.extend(peer.collection)
        self._engine = CentralizedBM25Engine(merged)
        reports: list[IndexingReport] = []
        for peer in peers:
            report = IndexingReport(peer_name=peer.name)
            report.inserted_postings_by_size[1] = sum(
                len(doc.distinct_terms) for doc in peer.collection
            )
            reports.append(report)
        return reports

    def search(
        self, source_peer_name: str, query: Query, k: int = 20
    ) -> SearchResponse:
        if self._engine is None:
            raise RetrievalError("call index() before search()")
        results = self._engine.search(query, k)
        found = sum(
            1 for term in query.terms if term in self._engine.index
        )
        return SearchResponse(
            query=query,
            backend=self.name,
            results=results,
            k=k,
            keys_looked_up=len(query.terms),
            keys_found=found,
            postings_transferred=0,  # answered locally, no network
        )

    def stats(self) -> dict[str, Any]:
        index = self._engine.index if self._engine else None
        return {
            "backend": self.name,
            "stored_postings": self.stored_postings_total(),
            "num_documents": index.num_documents() if index else 0,
            "distinct_terms": len(index) if index else 0,
        }

    def stored_postings_total(self) -> int:
        if self._engine is None:
            return 0
        return self._engine.index.total_postings()
