"""Command-line interface.

Subcommands::

    repro stats       corpus statistics (Table 1) for a synthetic corpus
                      or a directory of .txt files
    repro search      build + index + query in one shot, against any
                      registered retrieval backend (--backend), single
                      query or batch query-log replay (--batch); persist
                      an indexed collection with --save and serve it
                      again with --load (skipping indexing entirely);
                      the hdk_disk backend takes --store-dir,
                      --memory-budget-bytes, --wal/--no-wal, and
                      --sync; the hdk_super
                      backend takes --overlay-fanout and
                      --path-cache-capacity; --index-workers builds
                      the index on the sharded parallel pipeline
    repro serve       boot the asyncio HTTP gateway over a pool of
                      snapshot-loaded SearchService worker processes
                      (--snapshot --port --pool-size --max-inflight
                      --rate-limit); drains gracefully on SIGTERM
    repro experiment  run the Section-5 growth experiment over any
                      backend sweep (--backends)
    repro plan        adaptive parameter planning from a traffic budget
    repro traffic     the Figure-8 total-traffic model

Run ``repro <subcommand> --help`` for options.  Everything prints plain
text; machine-readable output can use ``--format csv`` where offered.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from . import __version__
from .analysis.planner import plan_parameters
from .analysis.traffic import TrafficModel
from .config import ExperimentParameters, HDKParameters
from .corpus import (
    SyntheticCorpusConfig,
    SyntheticCorpusGenerator,
    build_collection_from_texts,
    compute_statistics,
)
from .corpus.querylog import QueryLogGenerator
from .engine.backends import registry
from .engine.experiment import GrowthExperiment
from .engine.reporting import render_growth_table
from .engine.service import SearchService
from .utils import format_count, format_table

__all__ = ["main", "build_parser"]


def _add_corpus_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--docs", type=int, default=300, help="synthetic documents"
    )
    parser.add_argument(
        "--vocabulary", type=int, default=2_000, help="vocabulary size"
    )
    parser.add_argument(
        "--doc-length", type=int, default=60, help="mean document length"
    )
    parser.add_argument(
        "--topics", type=int, default=10, help="number of topics"
    )
    parser.add_argument(
        "--zipf-skew", type=float, default=1.2, help="Zipf skew a"
    )
    parser.add_argument("--seed", type=int, default=7, help="RNG seed")
    parser.add_argument(
        "--text-dir",
        type=Path,
        default=None,
        help="index .txt files from this directory instead of synthesizing",
    )


def _add_hdk_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--df-max", type=int, default=15)
    parser.add_argument("--window", type=int, default=8)
    parser.add_argument("--s-max", type=int, default=3)
    parser.add_argument("--ff", type=int, default=10_000)
    parser.add_argument("--peers", type=int, default=8)
    parser.add_argument(
        "--mode",
        choices=["hdk", "single_term"],
        default="hdk",
        help="indexing model (legacy alias; prefer --backend)",
    )
    parser.add_argument(
        "--overlay", choices=["chord", "pgrid"], default="chord"
    )


def _build_collection(args: argparse.Namespace):
    if args.text_dir is not None:
        paths = sorted(args.text_dir.glob("*.txt"))
        if not paths:
            raise SystemExit(f"no .txt files under {args.text_dir}")
        texts = [path.read_text(encoding="utf-8") for path in paths]
        return build_collection_from_texts(
            texts, title_fn=lambda i: paths[i].name
        )
    config = SyntheticCorpusConfig(
        vocabulary_size=args.vocabulary,
        mean_doc_length=args.doc_length,
        num_topics=args.topics,
        zipf_skew=args.zipf_skew,
    )
    return SyntheticCorpusGenerator(config, seed=args.seed).generate(
        args.docs
    )


def _hdk_params(args: argparse.Namespace) -> HDKParameters:
    return HDKParameters(
        df_max=args.df_max,
        window_size=args.window,
        s_max=args.s_max,
        ff=args.ff,
    )


# -- subcommand implementations -----------------------------------------------


def _cmd_stats(args: argparse.Namespace) -> int:
    collection = _build_collection(args)
    stats = compute_statistics(collection)
    rows = stats.summary_rows()
    rows.append(("hapax legomena", f"{stats.hapax_count():,}"))
    print(format_table(["statistic", "value"], rows))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    if args.batch < 0:
        raise SystemExit(f"--batch must be >= 0, got {args.batch}")
    if args.cache_capacity < 0:
        raise SystemExit(
            f"--cache-capacity must be >= 0, got {args.cache_capacity}"
        )
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.index_workers < 1:
        raise SystemExit(
            f"--index-workers must be >= 1, got {args.index_workers}"
        )
    if args.link_latency < 0.0:
        raise SystemExit(
            f"--link-latency must be >= 0, got {args.link_latency}"
        )
    if args.memory_budget is not None and args.memory_budget < 0:
        raise SystemExit(
            f"--memory-budget must be >= 0, got {args.memory_budget}"
        )
    if args.memory_budget_bytes is not None and args.memory_budget_bytes < 0:
        raise SystemExit(
            "--memory-budget-bytes must be >= 0, got "
            f"{args.memory_budget_bytes}"
        )
    if args.memory_budget is not None and args.memory_budget_bytes is not None:
        raise SystemExit(
            "pass either --memory-budget-bytes or the deprecated "
            "--memory-budget, not both"
        )
    if args.overlay_fanout < 1:
        raise SystemExit(
            f"--overlay-fanout must be >= 1, got {args.overlay_fanout}"
        )
    if args.path_cache_capacity < 0:
        raise SystemExit(
            "--path-cache-capacity must be >= 0, got "
            f"{args.path_cache_capacity}"
        )
    if args.overlay_split_threshold < 1:
        raise SystemExit(
            "--overlay-split-threshold must be >= 1, got "
            f"{args.overlay_split_threshold}"
        )
    if not 0 <= args.overlay_merge_threshold < args.overlay_split_threshold:
        raise SystemExit(
            "--overlay-merge-threshold must satisfy 0 <= merge < "
            f"--overlay-split-threshold, got {args.overlay_merge_threshold} "
            f"vs {args.overlay_split_threshold}"
        )
    if args.replication is not None and args.replication < 1:
        raise SystemExit(
            f"--replication must be >= 1, got {args.replication}"
        )
    if args.query is None and not args.batch:
        raise SystemExit("a query string is required unless --batch is given")
    if args.query is not None and args.batch:
        raise SystemExit(
            "--batch replays a generated query log and would ignore "
            f"{args.query!r}; drop the query string or --batch"
        )
    if args.load is not None:
        # Serve a snapshot: no corpus build, no indexing.  The corpus is
        # regenerated only when --batch needs documents to sample
        # queries from (pass the same corpus flags as at build time).
        service = SearchService.load(
            args.load,
            backend=args.backend,
            memory_budget=args.memory_budget,
            memory_budget_bytes=args.memory_budget_bytes,
            wal=args.wal,
            cache_capacity=None if args.no_cache else args.cache_capacity,
            overlay_fanout=args.overlay_fanout,
            path_cache_capacity=args.path_cache_capacity,
            overlay_adaptive=args.overlay_adaptive,
            overlay_split_threshold=args.overlay_split_threshold,
            overlay_merge_threshold=args.overlay_merge_threshold,
            sync=args.sync,
            replication=args.replication,
        )
        collection = _build_collection(args) if args.batch else None
        print(
            f"loaded snapshot {args.load} "
            f"({service.stored_postings_total():,} stored postings, "
            f"backend={service.backend_name})"
        )
    else:
        collection = _build_collection(args)
        params = _hdk_params(args)
        service = SearchService.build(
            collection,
            num_peers=args.peers,
            backend=args.backend or args.mode,
            params=params,
            overlay=args.overlay,
            cache_capacity=None if args.no_cache else args.cache_capacity,
            store_dir=args.store_dir,
            memory_budget=args.memory_budget,
            memory_budget_bytes=args.memory_budget_bytes,
            wal=args.wal,
            overlay_fanout=args.overlay_fanout,
            path_cache_capacity=args.path_cache_capacity,
            overlay_adaptive=args.overlay_adaptive,
            overlay_split_threshold=args.overlay_split_threshold,
            overlay_merge_threshold=args.overlay_merge_threshold,
            sync=args.sync,
            index_workers=args.index_workers,
            replication=args.replication or 1,
        )
        service.index()
        print(
            f"indexed {len(collection)} documents over {args.peers} peers "
            f"({service.stored_postings_total():,} stored postings, "
            f"backend={service.backend_name})"
        )
    if args.save is not None:
        service.save(args.save)
        print(f"saved snapshot to {args.save}")
    # Latency applies to the serving phase only: indexing above ran at
    # zero latency, queries below pay it per overlay hop.
    service.network.link_latency_s = args.link_latency
    if args.trace:
        from .obs.trace import get_tracer

        get_tracer().enable()
    if args.batch:
        code = _run_batch(args, service, collection)
        if args.trace:
            _print_recent_trace()
        return code
    response = service.search(args.query, k=args.top)
    print(
        f"query {args.query!r}: n_k={response.keys_looked_up}, "
        f"{response.postings_transferred} postings transferred "
        f"({response.elapsed_ms:.1f} ms)"
    )
    rows = []
    for rank, ranked in enumerate(response.results, start=1):
        title = (
            collection.get(ranked.doc_id).title
            if collection is not None and ranked.doc_id in collection
            else "-"
        )
        rows.append([rank, ranked.doc_id, f"{ranked.score:.3f}", title])
    print(format_table(["#", "doc", "score", "title"], rows))
    if args.trace:
        _print_recent_trace()
    return 0


def _print_recent_trace() -> None:
    """Print the most recent trace (--trace: the query just served)."""
    from .obs.trace import format_span_tree, get_tracer

    traces = get_tracer().recent_traces(limit=1)
    if not traces:
        print("no spans recorded")
        return
    trace = traces[0]
    print()
    print(f"trace {trace['trace_id']} ({len(trace['spans'])} spans):")
    print(format_span_tree(trace["spans"]))


def _run_batch(args: argparse.Namespace, service, collection) -> int:
    """Replay a generated query log through ``search_batch`` and print
    the aggregate traffic / cache breakdown."""
    queries = QueryLogGenerator(
        collection,
        window_size=service.params.window_size,
        min_hits=min(20, max(1, len(collection) // 20)),
        seed=args.seed,
    ).generate(args.batch)
    report = service.run_querylog(queries, k=args.top, workers=args.workers)
    rows = [
        ("queries", f"{report.num_queries:,}"),
        ("postings transferred", f"{report.total_postings_transferred:,}"),
        (
            "postings/query (mean)",
            f"{report.mean_postings_per_query:,.1f}",
        ),
        ("index lookups", f"{report.total_keys_looked_up:,}"),
        ("cache hits", f"{report.cache_hits:,}"),
        ("cache hit rate", f"{report.cache_hit_rate:.1%}"),
        ("batch time", f"{report.elapsed_ms:.1f} ms"),
    ]
    if report.traffic is not None:
        rows.append(
            (
                "retrieval postings (accounting)",
                f"{report.traffic.retrieval_postings:,}",
            )
        )
    print(format_table(["batch statistic", "value"], rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Deferred import: the serving stack (asyncio, multiprocessing) is
    # only paid for by the subcommand that uses it.
    from .serving import Gateway, GatewayConfig, WorkerPool, WorkerSpec

    if args.pool_size < 1:
        raise SystemExit(f"--pool-size must be >= 1, got {args.pool_size}")
    if args.max_inflight < 1:
        raise SystemExit(
            f"--max-inflight must be >= 1, got {args.max_inflight}"
        )
    if args.rate_limit < 0:
        raise SystemExit(
            f"--rate-limit must be >= 0, got {args.rate_limit}"
        )
    if args.cache_capacity < 0:
        raise SystemExit(
            f"--cache-capacity must be >= 0, got {args.cache_capacity}"
        )
    if not args.snapshot.is_dir():
        raise SystemExit(f"snapshot directory not found: {args.snapshot}")
    if not 0.0 <= args.trace_sample <= 1.0:
        raise SystemExit(
            f"--trace-sample must be in [0, 1], got {args.trace_sample}"
        )
    sink = None
    if args.trace_dir is not None:
        from .obs.export import JsonlSpanSink
        from .obs.trace import get_tracer

        sink = JsonlSpanSink(
            args.trace_dir / "spans.jsonl",
            sample_rate=args.trace_sample,
        )
        tracer = get_tracer()
        tracer.add_sink(sink)
        tracer.enable()
        print(
            f"tracing to {args.trace_dir / 'spans.jsonl'} "
            f"(sample={args.trace_sample:g})",
            flush=True,
        )
    spec = WorkerSpec(
        snapshot=str(args.snapshot),
        backend=args.backend,
        memory_budget=args.memory_budget,
        memory_budget_bytes=args.memory_budget_bytes,
        cache_capacity=args.cache_capacity or None,
        link_latency_s=args.link_latency,
    )
    pool = WorkerPool(spec, size=args.pool_size)
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        rate_limit=args.rate_limit,
    )
    gateway = Gateway(pool, config)
    gateway.on_ready = lambda: print(
        f"serving on http://{config.host}:{gateway.port} "
        f"(pool={args.pool_size}, max_inflight={config.max_inflight}, "
        f"rate_limit={config.rate_limit or 'off'}); "
        "SIGTERM drains gracefully",
        flush=True,
    )
    print(
        f"loading snapshot {args.snapshot} into "
        f"{args.pool_size} worker process(es)...",
        flush=True,
    )
    with pool:
        try:
            gateway.run(install_signal_handlers=True)
        except KeyboardInterrupt:
            gateway.initiate_drain()
            gateway.wait_finished(30.0)
        snapshot = gateway.metrics.snapshot()
        print(
            f"drained: {snapshot['completed']} requests served "
            f"({snapshot['qps']} qps lifetime), "
            f"shed {snapshot['shed_overload']} overload / "
            f"{snapshot['shed_rate_limited']} rate-limited / "
            f"{snapshot['shed_draining']} draining"
        )
    if sink is not None:
        from .obs.trace import get_tracer

        get_tracer().remove_sink(sink)
        sink.close()
        print(
            f"traces: {sink.written} spans written, "
            f"{sink.dropped} sampled out"
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiment = ExperimentParameters(
        initial_peers=args.initial_peers,
        peer_step=args.peer_step,
        max_peers=args.max_peers,
        docs_per_peer=args.docs_per_peer,
        hdk=_hdk_params(args),
        seed=args.seed,
    )
    corpus = SyntheticCorpusConfig(
        vocabulary_size=args.vocabulary,
        mean_doc_length=args.doc_length,
        num_topics=args.topics,
        zipf_skew=args.zipf_skew,
    )
    results = GrowthExperiment(
        experiment,
        corpus_config=corpus,
        df_max_values=tuple(args.df_max_values),
        num_queries=args.queries,
        backends=tuple(args.backends),
    ).run()
    print(render_growth_table(results))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    distribution = {2: 0.7, 3: 0.3}
    if args.query_sizes:
        distribution = {}
        for piece in args.query_sizes.split(","):
            size, weight = piece.split(":")
            distribution[int(size)] = float(weight)
    plan = plan_parameters(
        args.budget,
        distribution,
        window_size=args.window,
        s_max=args.s_max,
        zipf_skew=args.zipf_skew,
    )
    rows = [
        ("recommended DF_max", plan.params.df_max),
        ("expected n_k", f"{plan.expected_keys_per_query:.2f}"),
        (
            "retrieval bound/query",
            format_count(plan.retrieval_bound_per_query),
        ),
        (
            "index size multiplier (IS/D bound)",
            f"{plan.index_size_multiplier:.2f}",
        ),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    model = TrafficModel(df_max=args.df_max)
    rows = []
    for docs in args.doc_counts:
        point = model.point(docs)
        rows.append(
            [
                format_count(docs),
                format_count(point.st_total),
                format_count(point.hdk_total),
                f"{point.st_over_hdk:.1f}x",
            ]
        )
    print(format_table(["#docs", "single-term", "HDK", "ST/HDK"], rows))
    return 0


# -- parser ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "HDK-based P2P web retrieval "
            "(Podnar et al., ICDE 2007 reproduction)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser("stats", help="collection statistics")
    _add_corpus_options(stats)
    stats.set_defaults(handler=_cmd_stats)

    search = subparsers.add_parser("search", help="index and query")
    _add_corpus_options(search)
    _add_hdk_options(search)
    search.add_argument(
        "query",
        nargs="?",
        default=None,
        help="query string (omit when using --batch)",
    )
    search.add_argument("--top", type=int, default=10)
    search.add_argument(
        "--backend",
        choices=registry.names(),
        default=None,
        help="retrieval backend (overrides --mode)",
    )
    search.add_argument(
        "--batch",
        type=int,
        default=0,
        metavar="N",
        help="replay an N-query generated log through search_batch "
        "and print aggregate traffic and cache statistics",
    )
    search.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the service's query-result cache",
    )
    search.add_argument(
        "--cache-capacity",
        type=int,
        default=256,
        help="LRU query-cache capacity (default 256; 0 disables)",
    )
    search.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="thread-pool width for --batch execution (the backend "
        "section of each query runs genuinely concurrent)",
    )
    search.add_argument(
        "--index-workers",
        type=int,
        default=1,
        metavar="N",
        help="thread-pool width of the sharded indexing pipeline used "
        "to build the index (extraction and message transmission run "
        "per shard; merges stay ordered, so the built index is "
        "byte-identical at any value)",
    )
    search.add_argument(
        "--link-latency",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="simulated per-hop link latency applied to the serving "
        "phase (indexing stays instantaneous); non-zero values make "
        "--workers overlap real wait time",
    )
    search.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="segment-store directory for the hdk_disk backend "
        "(default: a private temporary directory)",
    )
    search.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="POSTINGS",
        help="deprecated posting-count RAM budget of the hdk_disk "
        "backend; prefer --memory-budget-bytes",
    )
    search.add_argument(
        "--memory-budget-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="RAM residency budget of the hdk_disk backend in encoded "
        "posting bytes (default 1048576)",
    )
    search.add_argument(
        "--wal",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="write-ahead-log incremental writes in the hdk_disk "
        "store (crash-durable builds; default on — --no-wal appends "
        "straight to segments)",
    )
    search.add_argument(
        "--overlay-fanout",
        type=int,
        default=8,
        metavar="N",
        help="leaves per super-peer cluster for the hdk_super backend "
        "(default 8)",
    )
    search.add_argument(
        "--path-cache-capacity",
        type=int,
        default=128,
        metavar="KEYS",
        help="in-network result-cache size per super-peer for the "
        "hdk_super backend (default 128; 0 disables path caching)",
    )
    search.add_argument(
        "--overlay-adaptive",
        action="store_true",
        help="load-aware overlay adaptation for the hdk_super backend: "
        "super-peer election weighs observed load, hot clusters split "
        "(and merge back after a cool-down), and path caching extends "
        "to every super-peer on the query path",
    )
    search.add_argument(
        "--overlay-split-threshold",
        type=int,
        default=64,
        metavar="SCORE",
        help="windowed per-cluster load score (lookups + cache churn) "
        "at which a hot cluster splits (default 64; adaptive overlay "
        "only)",
    )
    search.add_argument(
        "--overlay-merge-threshold",
        type=int,
        default=16,
        metavar="SCORE",
        help="score at or below which a split pair counts as calm and "
        "becomes eligible to merge back (default 16; must be below "
        "--overlay-split-threshold)",
    )
    search.add_argument(
        "--replication",
        type=int,
        default=None,
        metavar="R",
        help="replica count per key range (default: 1 when building, "
        "the manifest's recorded degree when serving a --load "
        "snapshot).  R >= 2 fans every insert out to R successor "
        "owners, fails lookups over past crashed replicas, and enables "
        "Merkle anti-entropy repair",
    )
    search.add_argument(
        "--sync",
        action="store_true",
        help="fsync segment files on rollover/close and the snapshot "
        "manifest on --save (durability knob for disk-backed backends)",
    )
    search.add_argument(
        "--save",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist the indexed collection as a snapshot directory "
        "(hdk / hdk_disk backends)",
    )
    search.add_argument(
        "--load",
        type=Path,
        default=None,
        metavar="DIR",
        help="serve a previously saved snapshot instead of building and "
        "indexing (corpus flags are ignored except for --batch query "
        "sampling; --backend may override the snapshot's backend)",
    )
    search.add_argument(
        "--trace",
        action="store_true",
        help="trace the query end to end and print the span tree "
        "(gateway-less: service, per-hop routing, and store spans) "
        "after the results",
    )
    search.set_defaults(handler=_cmd_search)

    serve = subparsers.add_parser(
        "serve",
        help="HTTP gateway over a pool of snapshot-loaded worker "
        "processes",
    )
    serve.add_argument(
        "--snapshot",
        type=Path,
        required=True,
        metavar="DIR",
        help="snapshot directory saved with 'repro search --save' "
        "(every worker process loads it)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (0 picks a free one)",
    )
    serve.add_argument(
        "--pool-size",
        type=int,
        default=2,
        metavar="N",
        help="worker processes, each loading the snapshot (true "
        "multi-core: one SearchService per process)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="admission-control window; requests beyond this many "
        "simultaneously in the pool are shed with 503 (default 64)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="QPS",
        help="per-client token-bucket rate limit in requests/second "
        "(clients are keyed by X-Client-Id header, else source IP; "
        "0 disables)",
    )
    serve.add_argument(
        "--backend",
        choices=registry.names(),
        default=None,
        help="override the snapshot manifest's backend for the workers",
    )
    serve.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="POSTINGS",
        help="deprecated per-worker posting-count RAM budget "
        "(hdk_disk backend); prefer --memory-budget-bytes",
    )
    serve.add_argument(
        "--memory-budget-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-worker RAM residency budget in encoded posting bytes "
        "(hdk_disk backend)",
    )
    serve.add_argument(
        "--cache-capacity",
        type=int,
        default=256,
        help="per-worker LRU query-cache capacity (0 disables)",
    )
    serve.add_argument(
        "--link-latency",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="simulated per-hop link latency inside each worker's "
        "network (the WAN-shaped serving regime of the benches)",
    )
    serve.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="enable end-to-end tracing and append finished spans as "
        "JSONL under this directory (also lights up GET /trace/recent)",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of traces written to --trace-dir (deterministic "
        "per-trace sampling; errors are always kept; default 1.0)",
    )
    serve.set_defaults(handler=_cmd_serve)

    experiment = subparsers.add_parser(
        "experiment", help="Section-5 growth experiment"
    )
    _add_corpus_options(experiment)
    _add_hdk_options(experiment)
    experiment.add_argument("--initial-peers", type=int, default=2)
    experiment.add_argument("--peer-step", type=int, default=2)
    experiment.add_argument("--max-peers", type=int, default=4)
    experiment.add_argument("--docs-per-peer", type=int, default=40)
    experiment.add_argument("--queries", type=int, default=10)
    experiment.add_argument(
        "--df-max-values",
        type=int,
        nargs="+",
        default=[8, 16],
        help="DF_max sweep values",
    )
    experiment.add_argument(
        "--backends",
        nargs="+",
        choices=registry.names(),
        default=["hdk"],
        metavar="NAME",
        help="registry backends to sweep alongside the ST baseline "
        "(HDK-family names are measured at every DF_max value; "
        f"choices: {', '.join(registry.names())})",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    plan = subparsers.add_parser(
        "plan", help="parameter planning from a traffic budget"
    )
    plan.add_argument(
        "budget", type=float, help="max postings per query"
    )
    plan.add_argument(
        "--query-sizes",
        default="",
        help="size:weight pairs, e.g. '2:0.7,3:0.3'",
    )
    plan.add_argument("--window", type=int, default=20)
    plan.add_argument("--s-max", type=int, default=3)
    plan.add_argument("--zipf-skew", type=float, default=1.5)
    plan.set_defaults(handler=_cmd_plan)

    traffic = subparsers.add_parser(
        "traffic", help="Figure-8 total-traffic model"
    )
    traffic.add_argument("--df-max", type=int, default=400)
    traffic.add_argument(
        "--doc-counts",
        type=int,
        nargs="+",
        default=[100_000, 653_546, 10**7, 10**8, 10**9],
    )
    traffic.set_defaults(handler=_cmd_traffic)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
