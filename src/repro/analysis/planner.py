"""Adaptive parameter planning.

The paper's conclusion highlights that the model "makes it possible to
take into account the characteristics of the used document collection,
the nature of the targeted usage model (e.g. the planned frequency of
indexing and querying), and the network related capacity constraints, and
can adequately adapt the various parameters of the model in order to meet
desired indexing and retrieval traffic requirements."

This module implements that planning loop: given a per-query traffic
budget, a query-size profile, and the collection's Zipf characteristics,
it derives the largest ``DF_max`` that honours the budget (maximizing
retrieval quality, per Figure 7) and estimates the induced index size via
Theorem 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HDKParameters
from ..errors import AnalysisError
from .estimators import frequent_term_probability, index_size_ratio
from .retrieval_cost import expected_keys_per_query

__all__ = ["ParameterPlan", "plan_df_max", "plan_parameters"]


@dataclass(frozen=True)
class ParameterPlan:
    """The outcome of parameter planning.

    Attributes:
        params: the recommended :class:`HDKParameters`.
        expected_keys_per_query: expected ``n_k`` under the query profile.
        retrieval_bound_per_query: worst-case postings per query,
            ``E[n_k] * DF_max``.
        index_size_multiplier: estimated index postings per collection
            token (sum of Theorem-3 ratios over key sizes) — the indexing
            cost the budget buys.
    """

    params: HDKParameters
    expected_keys_per_query: float
    retrieval_bound_per_query: float
    index_size_multiplier: float


def plan_df_max(
    traffic_budget_per_query: float,
    query_size_distribution: dict[int, float],
    s_max: int,
) -> int:
    """The largest ``DF_max`` whose expected retrieval traffic fits the
    per-query budget.

    Figure 7 shows retrieval quality improves with ``DF_max`` while
    Figure 6 shows traffic grows with it, so the budget-maximal value is
    the right choice.

    Raises:
        AnalysisError: when even ``DF_max = 1`` exceeds the budget.
    """
    if traffic_budget_per_query <= 0:
        raise AnalysisError(
            f"traffic budget must be > 0, got {traffic_budget_per_query}"
        )
    nk = expected_keys_per_query(query_size_distribution, s_max)
    df_max = int(traffic_budget_per_query / nk)
    if df_max < 1:
        raise AnalysisError(
            f"budget {traffic_budget_per_query} cannot accommodate even "
            f"DF_max=1 at expected n_k={nk:.2f}; raise the budget or "
            "lower s_max"
        )
    return df_max


def plan_parameters(
    traffic_budget_per_query: float,
    query_size_distribution: dict[int, float],
    window_size: int = 20,
    s_max: int = 3,
    zipf_skew: float = 1.5,
    fr: int = 100,
    ff: int = 100_000,
) -> ParameterPlan:
    """Produce a full parameter recommendation.

    Args:
        traffic_budget_per_query: maximal postings the network should
            transfer per query (derived from link capacity and expected
            query rate).
        query_size_distribution: query size -> probability (from a query
            log; the paper's log averages 2.3 terms).
        window_size: proximity window ``w``.
        s_max: maximal key size.
        zipf_skew: the collection's fitted Zipf skew ``a``.
        fr: rare/frequent threshold ``F_r``.
        ff: frequent/very-frequent threshold ``F_f``.

    Returns:
        A :class:`ParameterPlan` with the recommended parameters and the
        estimated costs they imply.
    """
    df_max = plan_df_max(
        traffic_budget_per_query, query_size_distribution, s_max
    )
    nk = expected_keys_per_query(query_size_distribution, s_max)
    params = HDKParameters(
        df_max=df_max,
        window_size=window_size,
        s_max=s_max,
        ff=ff,
        fr=fr,
    )
    # Index-size estimate: sum of the Theorem-3 ratios for sizes 1..s_max
    # using the frequent-term probability from Theorem 2 as P_f for every
    # size (an upper bound, since P_f,s decreases with s).
    p_f = frequent_term_probability(zipf_skew, fr, ff)
    multiplier = sum(
        index_size_ratio(p_f, window_size, size)
        for size in range(1, s_max + 1)
    )
    return ParameterPlan(
        params=params,
        expected_keys_per_query=nk,
        retrieval_bound_per_query=nk * df_max,
        index_size_multiplier=multiplier,
    )
