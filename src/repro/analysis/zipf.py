"""The Zipf rank-frequency model (paper Section 4.1, Figure 2).

The paper models term collection frequencies as ``z(r) = C(l) · r^-a``
where ``r`` is the term's rank, ``a`` the (collection-independent) skew and
``C(l)`` a scale that grows with the sample size ``l``.  This module
provides the parametric model, its inverse, and a log-log least-squares
fit from empirical rank-frequency data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import AnalysisError

__all__ = ["ZipfModel", "fit_zipf"]


@dataclass(frozen=True)
class ZipfModel:
    """A fitted/parametric Zipf law ``z(r) = scale * r**-skew``.

    Attributes:
        skew: the exponent ``a`` (> 0).
        scale: the scale ``C`` (> 0); approximately the frequency of the
            rank-1 term.
    """

    skew: float
    scale: float

    def __post_init__(self) -> None:
        if self.skew <= 0:
            raise AnalysisError(f"skew must be > 0, got {self.skew}")
        if self.scale <= 0:
            raise AnalysisError(f"scale must be > 0, got {self.scale}")

    def frequency(self, rank: int | float) -> float:
        """Return ``z(rank) = C · rank^-a``."""
        if rank < 1:
            raise AnalysisError(f"rank must be >= 1, got {rank}")
        return self.scale * float(rank) ** -self.skew

    def rank(self, frequency: float) -> float:
        """Inverse Zipf: the (real-valued) rank whose frequency is given,
        ``z^-1(y) = (C / y)^(1/a)`` (used in the proofs of Thms 1-2)."""
        if frequency <= 0:
            raise AnalysisError(
                f"frequency must be > 0, got {frequency}"
            )
        return (self.scale / frequency) ** (1.0 / self.skew)

    def hapax_rank(self) -> float:
        """Rank ``T'`` of the first hapax legomenon, ``z(T') = 1``.

        The scalability proofs truncate the normalizing integral at this
        rank to disregard the hapax tail.
        """
        return self.rank(1.0)

    def series(self, max_rank: int) -> list[float]:
        """Return ``[z(1), ..., z(max_rank)]`` (Figure 2 plotting data)."""
        if max_rank < 1:
            raise AnalysisError(f"max_rank must be >= 1, got {max_rank}")
        return [self.frequency(r) for r in range(1, max_rank + 1)]

    def rank_cutoffs(self, ff: float, fr: float) -> tuple[float, float]:
        """Return ``(r_f, r_r)`` — ranks where frequency crosses ``F_f``
        and ``F_r`` (the vertical guides of Figure 2).

        Raises:
            AnalysisError: when ``fr > ff`` (the paper requires
                ``F_r <= F_f``).
        """
        if fr > ff:
            raise AnalysisError(
                f"fr ({fr}) must not exceed ff ({ff})"
            )
        return self.rank(ff), self.rank(fr)


def fit_zipf(
    rank_frequency: Sequence[int | float],
    min_frequency: float = 2.0,
    max_points: int | None = None,
) -> ZipfModel:
    """Fit a :class:`ZipfModel` to empirical rank-frequency data.

    Performs ordinary least squares on ``log f = log C - a · log r``.

    Args:
        rank_frequency: frequencies sorted descending (element ``r-1`` is
            the frequency of rank ``r``), e.g.
            :attr:`repro.corpus.stats.CollectionStatistics.rank_frequency`.
        min_frequency: ranks whose frequency falls below this value are
            excluded; the paper's proofs disregard the hapax tail, which
            otherwise flattens the fit.
        max_points: optionally restrict the fit to the first ``max_points``
            ranks.

    Raises:
        AnalysisError: when fewer than two usable points remain.
    """
    points: list[tuple[float, float]] = []
    for index, freq in enumerate(rank_frequency):
        if freq < min_frequency:
            break
        points.append((math.log(index + 1), math.log(freq)))
        if max_points is not None and len(points) >= max_points:
            break
    if len(points) < 2:
        raise AnalysisError(
            "need at least two rank-frequency points with frequency >= "
            f"{min_frequency} to fit a Zipf model, got {len(points)}"
        )
    n = len(points)
    sum_x = math.fsum(x for x, _ in points)
    sum_y = math.fsum(y for _, y in points)
    sum_xx = math.fsum(x * x for x, _ in points)
    sum_xy = math.fsum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        raise AnalysisError("degenerate rank data: all ranks identical")
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    intercept = (sum_y - slope * sum_x) / n
    skew = -slope
    if skew <= 0:
        raise AnalysisError(
            f"fitted skew must be positive, got {skew:.4f}; the data is "
            "not Zipf-like (frequencies increase with rank?)"
        )
    return ZipfModel(skew=skew, scale=math.exp(intercept))
