"""Theorems 1-3 of the paper: occurrence probabilities and index size.

These estimators reproduce the closed forms derived in Section 4.1 and the
appendix:

- Theorem 1: probability of *very frequent* term occurrences, which depends
  on the sample size through the Zipf scale ``C(l)`` — motivating the
  removal of very frequent terms from the key vocabulary.
- Theorem 2: probability of *frequent* term occurrences, a constant of the
  collection (independent of the sample size), which makes the per-peer
  index size bounded.
- Theorem 3: upper bound on the positional index size for keys of size
  ``s``: ``IS_s(D) = D · P²_{f,s-1} · C(w-1, s-1)``.
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..utils import binomial

__all__ = [
    "very_frequent_term_probability",
    "frequent_term_probability",
    "index_size_estimate",
    "index_size_ratio",
]


def _check_thresholds(fr: float, ff: float) -> None:
    if fr < 1 or ff < 1:
        raise AnalysisError(
            f"frequency thresholds must be >= 1, got fr={fr}, ff={ff}"
        )
    if fr > ff:
        raise AnalysisError(f"fr ({fr}) must not exceed ff ({ff})")


def very_frequent_term_probability(
    skew: float, scale: float, ff: float
) -> float:
    """Theorem 1: ``P_vf(l) = (1 - (Ff/C(l))^((a-1)/a)) / (1 - (1/C(l))^((a-1)/a))``.

    Args:
        skew: the Zipf skew ``a`` (must be > 1 for the closed form to be a
            probability; the paper's fits are a=1.5).
        scale: the sample-size-dependent Zipf scale ``C(l)``.
        ff: the very-frequent cut-off ``F_f``.

    Returns:
        The probability mass of term occurrences contributed by terms with
        collection frequency above ``F_f``; clamped to [0, 1].
    """
    if skew <= 1:
        raise AnalysisError(
            f"the closed form requires skew > 1, got {skew}; for skew <= 1 "
            "the occurrence mass concentrates in the tail and the integral "
            "approximation of Theorem 1 does not apply"
        )
    if scale <= 1:
        raise AnalysisError(f"scale must be > 1, got {scale}")
    if ff < 1:
        raise AnalysisError(f"ff must be >= 1, got {ff}")
    exponent = (skew - 1.0) / skew
    if ff >= scale:
        # No term reaches frequency F_f: nothing is very frequent.
        return 0.0
    numerator = 1.0 - (ff / scale) ** exponent
    denominator = 1.0 - (1.0 / scale) ** exponent
    probability = numerator / denominator
    return min(1.0, max(0.0, probability))


def frequent_term_probability(skew: float, fr: float, ff: float) -> float:
    """Theorem 2: ``P_f = (1 - (Fr/Ff)^((a-1)/a)) / (1 - (1/Ff)^((a-1)/a))``.

    Independent of the sample size — the key property that bounds the HDK
    index: the density of frequent (hence expandable) terms converges to a
    collection constant.

    Args:
        skew: the Zipf skew ``a`` (> 1).
        fr: the rare/frequent cut-off ``F_r``.
        ff: the frequent/very-frequent cut-off ``F_f``.
    """
    if skew <= 1:
        raise AnalysisError(
            f"the closed form requires skew > 1, got {skew}"
        )
    _check_thresholds(fr, ff)
    exponent = (skew - 1.0) / skew
    numerator = 1.0 - (fr / ff) ** exponent
    denominator = 1.0 - (1.0 / ff) ** exponent
    if denominator <= 0:
        raise AnalysisError(
            f"degenerate thresholds: ff={ff} yields a zero denominator"
        )
    probability = numerator / denominator
    return min(1.0, max(0.0, probability))


def index_size_estimate(
    sample_size: int,
    frequent_probability_prev: float,
    window_size: int,
    key_size: int,
) -> float:
    """Theorem 3: ``IS_s(D) = D · P²_{f,s-1} · C(w-1, s-1)``.

    Upper bound on the positional index size contributed by keys of size
    ``s`` (rare + frequent), which in turn bounds the document-granularity
    HDK/NDK index.

    Args:
        sample_size: ``D`` — total term occurrences of the collection.
        frequent_probability_prev: ``P_{f,s-1}`` — occurrence probability
            of frequent keys of size ``s-1`` (from Theorem 2 with the
            size-``s-1`` skew, or measured empirically).
        window_size: the proximity window ``w``.
        key_size: the key size ``s`` (>= 1).

    Returns:
        The estimated number of postings; for ``s = 1`` the bound is simply
        ``D`` (each occurrence yields at most one posting).
    """
    if sample_size < 0:
        raise AnalysisError(f"sample_size must be >= 0, got {sample_size}")
    if key_size < 1:
        raise AnalysisError(f"key_size must be >= 1, got {key_size}")
    if window_size < 2:
        raise AnalysisError(
            f"window_size must be >= 2, got {window_size}"
        )
    if not 0.0 <= frequent_probability_prev <= 1.0:
        raise AnalysisError(
            "frequent_probability_prev must be in [0, 1], got "
            f"{frequent_probability_prev}"
        )
    if key_size == 1:
        return float(sample_size)
    return (
        sample_size
        * frequent_probability_prev**2
        * binomial(window_size - 1, key_size - 1)
    )


def index_size_ratio(
    frequent_probability_prev: float, window_size: int, key_size: int
) -> float:
    """The constant ``c = IS_s(D) / D`` of Theorem 3 (Figure 5's asymptote).

    For ``s = 1`` this is the paper's ``IS_1/D <= 1`` bound, returned as 1.
    """
    if key_size == 1:
        return 1.0
    return index_size_estimate(
        1, frequent_probability_prev, window_size, key_size
    )
