"""Scalability analysis (paper Section 4).

- :mod:`repro.analysis.zipf` — the Zipf rank-frequency model ``z(r) = C·r^-a``
  with least-squares fitting from empirical rank-frequency data (Figure 2).
- :mod:`repro.analysis.estimators` — Theorems 1-3: occurrence probabilities
  of very frequent / frequent terms and the positional index-size bound
  ``IS_s(D) = D · P²_{f,s-1} · C(w-1, s-1)``.
- :mod:`repro.analysis.retrieval_cost` — the query-to-key mapping count
  ``n_k`` and the retrieval traffic upper bound ``n_k · DF_max``.
- :mod:`repro.analysis.traffic` — the combined indexing+retrieval traffic
  model behind Figure 8.
"""

from .estimators import (
    frequent_term_probability,
    index_size_estimate,
    index_size_ratio,
    very_frequent_term_probability,
)
from .planner import ParameterPlan, plan_df_max, plan_parameters
from .retrieval_cost import keys_per_query, retrieval_traffic_bound
from .traffic import TrafficModel, TrafficPoint
from .zipf import ZipfModel, fit_zipf

__all__ = [
    "ZipfModel",
    "fit_zipf",
    "very_frequent_term_probability",
    "frequent_term_probability",
    "index_size_estimate",
    "index_size_ratio",
    "keys_per_query",
    "retrieval_traffic_bound",
    "ParameterPlan",
    "plan_df_max",
    "plan_parameters",
    "TrafficModel",
    "TrafficPoint",
]
