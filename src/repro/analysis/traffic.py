"""Total-traffic model behind Figure 8.

The paper compares the total monthly traffic (indexing + retrieval, counted
in transmitted postings) of single-term indexing against HDK indexing as
the collection grows to one billion documents, assuming monthly re-indexing
and a monthly query load of 1.5 million queries:

- single-term: indexing transmits ``~130`` postings per document; retrieval
  traffic per query grows linearly with the collection because posting
  lists are unbounded;
- HDK: indexing transmits up to ``~40.7x`` more postings per document
  (5,290 in the paper's worst-case estimate), but retrieval is bounded by
  ``n_k · DF_max`` postings per query regardless of collection size.

At the paper's calibration this makes the HDK approach generate about 20x
less total traffic at Wikipedia size (653,546 documents) and about 42x less
at one billion documents.  All constants are explicit and can be
re-calibrated from measured experiment data (see
:meth:`TrafficModel.calibrated`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import AnalysisError
from .retrieval_cost import keys_per_query

__all__ = ["TrafficModel", "TrafficPoint"]


@dataclass(frozen=True)
class TrafficPoint:
    """Traffic breakdown at one collection size.

    All quantities are postings per month.
    """

    num_documents: int
    st_indexing: float
    st_retrieval: float
    hdk_indexing: float
    hdk_retrieval: float

    @property
    def st_total(self) -> float:
        return self.st_indexing + self.st_retrieval

    @property
    def hdk_total(self) -> float:
        return self.hdk_indexing + self.hdk_retrieval

    @property
    def st_over_hdk(self) -> float:
        """How many times more traffic single-term generates than HDK."""
        if self.hdk_total == 0:
            raise AnalysisError("HDK total traffic is zero; ratio undefined")
        return self.st_total / self.hdk_total


@dataclass(frozen=True)
class TrafficModel:
    """Parametric monthly-traffic model (Figure 8).

    Attributes:
        st_postings_per_doc: single-term postings inserted per document at
            indexing time (the paper measures ~130 on Wikipedia).
        hdk_postings_per_doc: HDK postings inserted per document (the
            paper's worst-case estimate is 5,290 — 40.7x more).
        queries_per_month: monthly query load (paper: 1.5e6, the true
            number of queries in the two-month Wikipedia log halved).
        avg_query_size: average query length in terms (paper: 2.3 for the
            full log; 3.02 for the multi-term retrieval sample).
        st_retrieval_postings_per_doc: single-term retrieval traffic per
            query *per document in the collection* — the slope of the
            paper's Figure 6 single-term line.  Default calibrated so the
            Wikipedia-size and billion-document ratios bracket the paper's
            reported 20x / 42x.
        s_max: maximal key size (for ``n_k``).
        df_max: the HDK document-frequency threshold.
        indexings_per_month: how many times the collection is (re)indexed
            per month (paper assumes monthly indexing = 1).
    """

    st_postings_per_doc: float = 130.0
    hdk_postings_per_doc: float = 5_290.0
    queries_per_month: float = 1.5e6
    avg_query_size: float = 2.3
    st_retrieval_postings_per_doc: float = 0.145
    s_max: int = 3
    df_max: int = 400
    indexings_per_month: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "st_postings_per_doc",
            "hdk_postings_per_doc",
            "queries_per_month",
            "avg_query_size",
            "st_retrieval_postings_per_doc",
            "indexings_per_month",
        ):
            if getattr(self, name) <= 0:
                raise AnalysisError(f"{name} must be > 0")
        if self.s_max < 1:
            raise AnalysisError(f"s_max must be >= 1, got {self.s_max}")
        if self.df_max < 1:
            raise AnalysisError(f"df_max must be >= 1, got {self.df_max}")

    # -- per-component models -------------------------------------------------

    @property
    def keys_per_query(self) -> float:
        """``n_k`` evaluated at the (rounded-up) average query size, the
        paper's approximation (n_k ≈ 3.92 at 2.3 terms).

        The paper interpolates between the worst-case values at sizes 2 and
        3; we reproduce that by linear interpolation of ``2^|q| - 1``
        between the neighbouring integer sizes.
        """
        low = int(self.avg_query_size)
        high = low + 1
        fraction = self.avg_query_size - low
        nk_low = keys_per_query(low, self.s_max)
        nk_high = keys_per_query(high, self.s_max)
        return nk_low + fraction * (nk_high - nk_low)

    def st_indexing_traffic(self, num_documents: int) -> float:
        """Single-term postings inserted per month."""
        return (
            self.st_postings_per_doc * num_documents * self.indexings_per_month
        )

    def hdk_indexing_traffic(self, num_documents: int) -> float:
        """HDK postings inserted per month."""
        return (
            self.hdk_postings_per_doc
            * num_documents
            * self.indexings_per_month
        )

    def st_retrieval_traffic(self, num_documents: int) -> float:
        """Single-term postings retrieved per month; grows linearly in the
        collection size because posting lists are unbounded."""
        per_query = self.st_retrieval_postings_per_doc * num_documents
        return per_query * self.queries_per_month

    def hdk_retrieval_traffic(self, num_documents: int) -> float:
        """HDK postings retrieved per month; independent of collection
        size — the bounded ``n_k · DF_max`` per query."""
        per_query = self.keys_per_query * self.df_max
        return per_query * self.queries_per_month

    # -- figure generation ------------------------------------------------------

    def point(self, num_documents: int) -> TrafficPoint:
        """Evaluate the model at one collection size."""
        if num_documents < 0:
            raise AnalysisError(
                f"num_documents must be >= 0, got {num_documents}"
            )
        return TrafficPoint(
            num_documents=num_documents,
            st_indexing=self.st_indexing_traffic(num_documents),
            st_retrieval=self.st_retrieval_traffic(num_documents),
            hdk_indexing=self.hdk_indexing_traffic(num_documents),
            hdk_retrieval=self.hdk_retrieval_traffic(num_documents),
        )

    def series(self, document_counts: list[int]) -> list[TrafficPoint]:
        """Evaluate the model over a sweep of collection sizes (the x-axis
        of Figure 8 runs to 1e9 documents)."""
        return [self.point(m) for m in document_counts]

    # -- calibration ----------------------------------------------------------

    @classmethod
    def calibrated(
        cls,
        st_postings_per_doc: float,
        hdk_postings_per_doc: float,
        st_retrieval_slope: float,
        measured_keys_per_query: float | None = None,
        **overrides: float,
    ) -> "TrafficModel":
        """Build a model from measured experiment data.

        Args:
            st_postings_per_doc: measured single-term postings per document.
            hdk_postings_per_doc: measured HDK postings per document.
            st_retrieval_slope: measured slope of retrieval postings per
                query vs collection size (Figure 6 single-term line).
            measured_keys_per_query: if given, overrides the analytic
                ``n_k`` via an equivalent ``avg_query_size`` adjustment is
                not attempted; instead the value is applied directly by
                storing it (see note).
            **overrides: any other :class:`TrafficModel` field.

        Note:
            ``measured_keys_per_query`` is honoured by fixing
            ``avg_query_size`` such that the interpolated ``n_k`` matches;
            for values outside [1, 2^s_max - 1] it is clamped.
        """
        model = cls(
            st_postings_per_doc=st_postings_per_doc,
            hdk_postings_per_doc=hdk_postings_per_doc,
            st_retrieval_postings_per_doc=st_retrieval_slope,
            **overrides,
        )
        if measured_keys_per_query is not None:
            model = replace(
                model,
                avg_query_size=_query_size_for_nk(
                    measured_keys_per_query, model.s_max
                ),
            )
        return model


def _query_size_for_nk(target_nk: float, s_max: int) -> float:
    """Invert the interpolated ``n_k`` back to an average query size."""
    if target_nk < 1.0:
        return 1.0
    size = 1
    while True:
        nk_low = keys_per_query(size, s_max)
        nk_high = keys_per_query(size + 1, s_max)
        if nk_high >= target_nk or size > 32:
            if nk_high == nk_low:
                return float(size)
            fraction = (target_nk - nk_low) / (nk_high - nk_low)
            return size + max(0.0, min(1.0, fraction))
        size += 1
