"""Retrieval-cost model (paper Section 4.2).

A query of size ``|q|`` maps to at most ``n_k`` keys in the lattice of its
term subsets: ``2^|q| - 1`` when ``|q| <= s_max`` and the truncated
binomial sum otherwise.  Each key contributes at most ``DF_max`` postings,
so retrieval traffic is bounded by ``n_k · DF_max`` — a constant in the
collection size, which is the crux of the paper's scalability argument.
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..utils import binomial

__all__ = [
    "keys_per_query",
    "retrieval_traffic_bound",
    "expected_keys_per_query",
]


def keys_per_query(query_size: int, s_max: int) -> int:
    """Return ``n_k``, the worst-case number of keys a query maps to.

    ``n_k = 2^|q| - 1`` when ``|q| <= s_max``; otherwise
    ``sum_{i=1..s_max} C(|q|, i)``.
    """
    if query_size < 0:
        raise AnalysisError(f"query_size must be >= 0, got {query_size}")
    if s_max < 1:
        raise AnalysisError(f"s_max must be >= 1, got {s_max}")
    if query_size <= s_max:
        return 2**query_size - 1
    return sum(binomial(query_size, i) for i in range(1, s_max + 1))


def retrieval_traffic_bound(query_size: int, s_max: int, df_max: int) -> int:
    """Upper bound on postings retrieved for one query:
    ``n_k · DF_max``."""
    if df_max < 1:
        raise AnalysisError(f"df_max must be >= 1, got {df_max}")
    return keys_per_query(query_size, s_max) * df_max


def expected_keys_per_query(
    size_distribution: dict[int, float], s_max: int
) -> float:
    """Expected ``n_k`` under a query-size distribution.

    The paper reports ``n_k ≈ 3.92`` for the Wikipedia log's average query
    size of 2.3 terms.  Note the paper evaluates the worst-case formula at
    the average size; this helper computes the proper expectation over an
    explicit size distribution, which is the more useful quantity for
    capacity planning.

    Args:
        size_distribution: query size -> probability (weights are
            normalized internally).
        s_max: the maximal key size.
    """
    total_weight = sum(size_distribution.values())
    if total_weight <= 0:
        raise AnalysisError("size_distribution must have positive mass")
    expectation = 0.0
    for size, weight in size_distribution.items():
        expectation += (weight / total_weight) * keys_per_query(size, s_max)
    return expectation
