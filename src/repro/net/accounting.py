"""Traffic accounting.

Mirrors the paper's cost model: the dominant cost is the number of
*postings* transmitted through the network, tracked separately for the
indexing and retrieval phases (Figures 4 and 6).  Message and hop counts
are also kept for overlay diagnostics, and maintenance traffic (key
handoffs on churn) is tracked but reported separately, exactly as the paper
excludes it from its analysis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum

from .messages import Message, MessageKind

__all__ = [
    "Phase",
    "TrafficAccounting",
    "TrafficSnapshot",
    "TrafficWindow",
    "diff_snapshots",
]


class Phase(Enum):
    """The protocol phase a message belongs to."""

    INDEXING = "indexing"
    RETRIEVAL = "retrieval"
    MAINTENANCE = "maintenance"


@dataclass(frozen=True)
class TrafficSnapshot:
    """Immutable view of the counters at one instant."""

    postings_by_phase: dict[Phase, int]
    messages_by_phase: dict[Phase, int]
    hops_by_phase: dict[Phase, int]
    messages_by_kind: dict[MessageKind, int]

    @property
    def indexing_postings(self) -> int:
        return self.postings_by_phase.get(Phase.INDEXING, 0)

    @property
    def retrieval_postings(self) -> int:
        return self.postings_by_phase.get(Phase.RETRIEVAL, 0)

    @property
    def maintenance_postings(self) -> int:
        return self.postings_by_phase.get(Phase.MAINTENANCE, 0)

    @property
    def total_postings(self) -> int:
        """All postings including maintenance (the paper's headline numbers
        exclude maintenance; reports show both)."""
        return sum(self.postings_by_phase.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_phase.values())

    @property
    def total_hops(self) -> int:
        return sum(self.hops_by_phase.values())


class TrafficAccounting:
    """Mutable counters fed by the network simulator.

    The accounting object is shared: the network logs every message into
    it, and experiments snapshot/diff it around the operations they
    measure.
    """

    def __init__(self) -> None:
        self._postings: Counter[Phase] = Counter()
        self._messages: Counter[Phase] = Counter()
        self._hops: Counter[Phase] = Counter()
        self._by_kind: Counter[MessageKind] = Counter()
        self._current_phase = Phase.INDEXING

    # -- phase control ---------------------------------------------------------

    @property
    def phase(self) -> Phase:
        """The phase newly logged messages are attributed to."""
        return self._current_phase

    def set_phase(self, phase: Phase) -> None:
        """Switch the accounting phase (indexing/retrieval/maintenance)."""
        if not isinstance(phase, Phase):
            raise TypeError(f"expected Phase, got {type(phase).__name__}")
        self._current_phase = phase

    # -- recording ------------------------------------------------------------

    def record(self, message: Message) -> None:
        """Attribute ``message`` to the current phase."""
        phase = self._current_phase
        self._postings[phase] += message.postings
        self._messages[phase] += 1
        self._hops[phase] += message.hops
        self._by_kind[message.kind] += 1

    # -- reading ----------------------------------------------------------------

    def snapshot(self) -> TrafficSnapshot:
        """Return an immutable copy of all counters."""
        return TrafficSnapshot(
            postings_by_phase=dict(self._postings),
            messages_by_phase=dict(self._messages),
            hops_by_phase=dict(self._hops),
            messages_by_kind=dict(self._by_kind),
        )

    def measure(self) -> "TrafficWindow":
        """Open a measurement window over these counters.

        Usable as a context manager::

            with accounting.measure() as window:
                engine.search(...)
            print(window.delta.retrieval_postings)

        ``window.delta`` is the per-phase traffic generated inside the
        window — the snapshot-diff idiom experiments previously spelled
        out by hand around every measured operation.
        """
        return TrafficWindow(self)

    def postings(self, phase: Phase) -> int:
        """Postings transmitted so far in ``phase``."""
        return self._postings[phase]

    def messages(self, phase: Phase) -> int:
        """Messages sent so far in ``phase``."""
        return self._messages[phase]

    def hops(self, phase: Phase) -> int:
        """Total overlay hops traversed so far in ``phase``."""
        return self._hops[phase]

    def reset(self) -> None:
        """Zero every counter (the phase is preserved)."""
        self._postings.clear()
        self._messages.clear()
        self._hops.clear()
        self._by_kind.clear()


class TrafficWindow:
    """A live measurement window over a :class:`TrafficAccounting`.

    Captures a snapshot when opened; :attr:`delta` diffs the counters
    against that baseline (against the close-time snapshot once the
    window has been exited, so the delta is stable afterwards).
    """

    def __init__(self, accounting: TrafficAccounting) -> None:
        self._accounting = accounting
        self._before = accounting.snapshot()
        self._after: TrafficSnapshot | None = None

    def __enter__(self) -> "TrafficWindow":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> TrafficSnapshot:
        """Freeze the window; returns the final delta."""
        if self._after is None:
            self._after = self._accounting.snapshot()
        return self.delta

    @property
    def delta(self) -> TrafficSnapshot:
        """Traffic generated since the window opened."""
        after = self._after or self._accounting.snapshot()
        return diff_snapshots(self._before, after)


def diff_snapshots(
    before: TrafficSnapshot, after: TrafficSnapshot
) -> TrafficSnapshot:
    """Return ``after - before`` for every counter (measurement windows)."""
    def sub(a: dict, b: dict) -> dict:
        return {k: a.get(k, 0) - b.get(k, 0) for k in set(a) | set(b)}

    return TrafficSnapshot(
        postings_by_phase=sub(
            after.postings_by_phase, before.postings_by_phase
        ),
        messages_by_phase=sub(
            after.messages_by_phase, before.messages_by_phase
        ),
        hops_by_phase=sub(after.hops_by_phase, before.hops_by_phase),
        messages_by_kind=sub(after.messages_by_kind, before.messages_by_kind),
    )
