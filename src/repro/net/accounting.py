"""Traffic accounting.

Mirrors the paper's cost model: the dominant cost is the number of
*postings* transmitted through the network, tracked separately for the
indexing and retrieval phases (Figures 4 and 6).  Message and hop counts
are also kept for overlay diagnostics, and maintenance traffic (key
handoffs on churn) is tracked but reported separately, exactly as the paper
excludes it from its analysis.

Concurrency model: the accounting object is shared by every thread that
touches the network, so the global counters are guarded by a lock and
measurement windows *accumulate* messages as they are recorded instead of
diffing global snapshots (a snapshot diff taken around one query would
absorb every message other threads recorded in the meantime).  A window is
opened with a scope:

- ``scope="thread"`` — the window only sees messages recorded *by the
  thread that opened it*.  This is what makes per-query traffic windows
  exact under a concurrent ``search_batch``: each worker thread runs its
  query's backend section and accumulates only its own messages.
- ``scope="global"`` — the window sees messages recorded by *every*
  thread (batch-level aggregates, experiment-level measurements).

Either scope aggregates into the same global totals; closing a window
freezes its delta.
"""

from __future__ import annotations

import threading
import weakref
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from .messages import Message, MessageKind

__all__ = [
    "Phase",
    "TrafficAccounting",
    "TrafficSnapshot",
    "TrafficWindow",
    "diff_snapshots",
    "empty_snapshot",
    "merge_snapshots",
]


class Phase(Enum):
    """The protocol phase a message belongs to."""

    INDEXING = "indexing"
    RETRIEVAL = "retrieval"
    MAINTENANCE = "maintenance"


@dataclass(frozen=True)
class TrafficSnapshot:
    """Immutable view of the counters at one instant."""

    postings_by_phase: dict[Phase, int]
    messages_by_phase: dict[Phase, int]
    hops_by_phase: dict[Phase, int]
    messages_by_kind: dict[MessageKind, int]

    @property
    def indexing_postings(self) -> int:
        return self.postings_by_phase.get(Phase.INDEXING, 0)

    @property
    def retrieval_postings(self) -> int:
        return self.postings_by_phase.get(Phase.RETRIEVAL, 0)

    @property
    def maintenance_postings(self) -> int:
        return self.postings_by_phase.get(Phase.MAINTENANCE, 0)

    @property
    def total_postings(self) -> int:
        """All postings including maintenance (the paper's headline numbers
        exclude maintenance; reports show both)."""
        return sum(self.postings_by_phase.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_phase.values())

    @property
    def total_hops(self) -> int:
        return sum(self.hops_by_phase.values())

    def as_dict(self) -> dict[str, object]:
        """Plain-data view: string keys, int values — picklable without
        importing this module and JSON-serializable as-is (the shape
        service ``stats()`` ships across process and HTTP boundaries)."""
        return {
            "postings_by_phase": {
                phase.value: count
                for phase, count in sorted(
                    self.postings_by_phase.items(), key=lambda kv: kv[0].value
                )
            },
            "messages_by_phase": {
                phase.value: count
                for phase, count in sorted(
                    self.messages_by_phase.items(), key=lambda kv: kv[0].value
                )
            },
            "hops_by_phase": {
                phase.value: count
                for phase, count in sorted(
                    self.hops_by_phase.items(), key=lambda kv: kv[0].value
                )
            },
            "messages_by_kind": {
                kind.name.lower(): count
                for kind, count in sorted(
                    self.messages_by_kind.items(), key=lambda kv: kv[0].name
                )
            },
            "indexing_postings": self.indexing_postings,
            "retrieval_postings": self.retrieval_postings,
            "maintenance_postings": self.maintenance_postings,
            "total_postings": self.total_postings,
            "total_messages": self.total_messages,
            "total_hops": self.total_hops,
        }


class TrafficAccounting:
    """Mutable counters fed by the network simulator.

    The accounting object is shared: the network logs every message into
    it, and experiments snapshot/diff it around the operations they
    measure.  All mutation goes through :meth:`record`, which is
    thread-safe; per-thread measurement windows (see :meth:`measure`)
    keep per-operation deltas exact even when several threads record
    concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._postings: Counter[Phase] = Counter()
        self._messages: Counter[Phase] = Counter()
        self._hops: Counter[Phase] = Counter()
        self._by_kind: Counter[MessageKind] = Counter()
        self._current_phase = Phase.INDEXING
        #: Open windows fed by every thread's messages (under the lock).
        #: Weak references: the old snapshot-diff windows cost nothing
        #: when abandoned unclosed, so the accumulating kind must not
        #: regress that — a window nobody holds is collected and pruned
        #: on the next record() instead of taxing it forever.
        self._global_windows: list["weakref.ref[TrafficWindow]"] = []
        #: Per-thread state: open thread-scoped windows + phase override.
        self._local = threading.local()

    def _thread_windows(self) -> list["weakref.ref[TrafficWindow]"]:
        windows = getattr(self._local, "windows", None)
        if windows is None:
            windows = []
            self._local.windows = windows
        return windows

    @staticmethod
    def _absorb_into(
        refs: list["weakref.ref[TrafficWindow]"],
        phase: Phase,
        message: Message,
    ) -> None:
        """Feed ``message`` to every live window in ``refs``, pruning
        refs whose window was abandoned without close()."""
        dead = False
        for ref in refs:
            window = ref()
            if window is None:
                dead = True
            else:
                window._absorb(phase, message)
        if dead:
            refs[:] = [ref for ref in refs if ref() is not None]

    # -- phase control ---------------------------------------------------------

    @property
    def phase(self) -> Phase:
        """The phase newly logged messages are attributed to (the
        thread-local override from :meth:`phase_scope` wins)."""
        override = getattr(self._local, "phase_override", None)
        return override if override is not None else self._current_phase

    def set_phase(self, phase: Phase) -> None:
        """Switch the accounting phase (indexing/retrieval/maintenance)."""
        if not isinstance(phase, Phase):
            raise TypeError(f"expected Phase, got {type(phase).__name__}")
        self._current_phase = phase

    @contextmanager
    def phase_scope(self, phase: Phase) -> Iterator[None]:
        """Attribute messages recorded *by this thread* inside the block
        to ``phase``, without touching the shared phase other threads
        read (e.g. maintenance handoffs racing with retrieval queries).
        """
        if not isinstance(phase, Phase):
            raise TypeError(f"expected Phase, got {type(phase).__name__}")
        previous = getattr(self._local, "phase_override", None)
        self._local.phase_override = phase
        try:
            yield
        finally:
            self._local.phase_override = previous

    # -- recording ------------------------------------------------------------

    def record(self, message: Message) -> None:
        """Attribute ``message`` to the current phase (thread-safe)."""
        phase = self.phase
        with self._lock:
            self._postings[phase] += message.postings
            self._messages[phase] += 1
            self._hops[phase] += message.hops
            self._by_kind[message.kind] += 1
            self._absorb_into(self._global_windows, phase, message)
        # Thread-scoped windows belong to this thread alone: no other
        # thread reads them while open, so no lock is needed.
        self._absorb_into(self._thread_windows(), phase, message)

    # -- reading ----------------------------------------------------------------

    def snapshot(self) -> TrafficSnapshot:
        """Return an immutable copy of all counters."""
        with self._lock:
            return TrafficSnapshot(
                postings_by_phase=dict(self._postings),
                messages_by_phase=dict(self._messages),
                hops_by_phase=dict(self._hops),
                messages_by_kind=dict(self._by_kind),
            )

    def measure(self, scope: str = "global") -> "TrafficWindow":
        """Open a measurement window over these counters.

        Usable as a context manager::

            with accounting.measure() as window:
                engine.search(...)
            print(window.delta.retrieval_postings)

        ``window.delta`` is the per-phase traffic generated inside the
        window — the snapshot-diff idiom experiments previously spelled
        out by hand around every measured operation.

        Args:
            scope: ``"global"`` (default) accumulates messages recorded
                by every thread; ``"thread"`` accumulates only messages
                recorded by the calling thread, which keeps the delta
                exact when other threads record concurrently (per-query
                windows under a parallel batch).  A thread-scoped window
                must be closed by the thread that opened it.
        """
        return TrafficWindow(self, scope=scope)

    def postings(self, phase: Phase) -> int:
        """Postings transmitted so far in ``phase``."""
        with self._lock:
            return self._postings[phase]

    def messages(self, phase: Phase) -> int:
        """Messages sent so far in ``phase``."""
        with self._lock:
            return self._messages[phase]

    def hops(self, phase: Phase) -> int:
        """Total overlay hops traversed so far in ``phase``."""
        with self._lock:
            return self._hops[phase]

    def reset(self) -> None:
        """Zero every counter (the phase is preserved)."""
        with self._lock:
            self._postings.clear()
            self._messages.clear()
            self._hops.clear()
            self._by_kind.clear()

    # -- window registry (called by TrafficWindow) ------------------------------

    def _attach(self, window: "TrafficWindow") -> None:
        ref = weakref.ref(window)
        if window.scope == "global":
            with self._lock:
                self._global_windows.append(ref)
        else:
            self._thread_windows().append(ref)

    def _detach(self, window: "TrafficWindow") -> None:
        def prune(refs: list["weakref.ref[TrafficWindow]"]) -> None:
            refs[:] = [
                ref for ref in refs
                if ref() is not None and ref() is not window
            ]

        if window.scope == "global":
            with self._lock:
                prune(self._global_windows)
        else:
            prune(self._thread_windows())


class TrafficWindow:
    """A live measurement window over a :class:`TrafficAccounting`.

    Accumulates every message recorded while open (all threads' messages
    for ``scope="global"``, only the opening thread's for
    ``scope="thread"``); :attr:`delta` reads the accumulated counters
    (frozen once the window is closed, so the delta is stable afterwards).
    """

    def __init__(
        self, accounting: TrafficAccounting, scope: str = "global"
    ) -> None:
        if scope not in ("global", "thread"):
            raise ValueError(
                f"scope must be 'global' or 'thread', got {scope!r}"
            )
        self._accounting = accounting
        self.scope = scope
        self._postings: Counter[Phase] = Counter()
        self._messages: Counter[Phase] = Counter()
        self._hops: Counter[Phase] = Counter()
        self._by_kind: Counter[MessageKind] = Counter()
        self._frozen: TrafficSnapshot | None = None
        accounting._attach(self)

    def _absorb(self, phase: Phase, message: Message) -> None:
        """Fold one recorded message into the window's accumulators.

        Called by :meth:`TrafficAccounting.record` — under the accounting
        lock for global-scoped windows, lock-free from the owning thread
        for thread-scoped ones.
        """
        self._postings[phase] += message.postings
        self._messages[phase] += 1
        self._hops[phase] += message.hops
        self._by_kind[message.kind] += 1

    def _materialize(self) -> TrafficSnapshot:
        return TrafficSnapshot(
            postings_by_phase=dict(self._postings),
            messages_by_phase=dict(self._messages),
            hops_by_phase=dict(self._hops),
            messages_by_kind=dict(self._by_kind),
        )

    def __enter__(self) -> "TrafficWindow":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> TrafficSnapshot:
        """Freeze the window; returns the final delta."""
        if self._frozen is None:
            self._accounting._detach(self)
            if self.scope == "global":
                # Copy under the lock so a concurrent record() cannot
                # interleave with the freeze.
                with self._accounting._lock:
                    self._frozen = self._materialize()
            else:
                self._frozen = self._materialize()
        return self._frozen

    @property
    def delta(self) -> TrafficSnapshot:
        """Traffic accumulated since the window opened."""
        if self._frozen is not None:
            return self._frozen
        if self.scope == "global":
            with self._accounting._lock:
                return self._materialize()
        return self._materialize()


def empty_snapshot() -> TrafficSnapshot:
    """An all-zero snapshot (cache hits, unmeasured operations)."""
    return TrafficSnapshot(
        postings_by_phase={},
        messages_by_phase={},
        hops_by_phase={},
        messages_by_kind={},
    )


def merge_snapshots(*snapshots: TrafficSnapshot) -> TrafficSnapshot:
    """Sum every counter across ``snapshots``.

    Used to accumulate one logical operation's traffic out of several
    measurement windows — e.g. a peer's per-phase indexing windows
    opened round by round on whichever shard worker staged its inserts.
    """
    postings: Counter[Phase] = Counter()
    messages: Counter[Phase] = Counter()
    hops: Counter[Phase] = Counter()
    by_kind: Counter[MessageKind] = Counter()
    for snapshot in snapshots:
        postings.update(snapshot.postings_by_phase)
        messages.update(snapshot.messages_by_phase)
        hops.update(snapshot.hops_by_phase)
        by_kind.update(snapshot.messages_by_kind)
    return TrafficSnapshot(
        postings_by_phase=dict(postings),
        messages_by_phase=dict(messages),
        hops_by_phase=dict(hops),
        messages_by_kind=dict(by_kind),
    )


def diff_snapshots(
    before: TrafficSnapshot, after: TrafficSnapshot
) -> TrafficSnapshot:
    """Return ``after - before`` for every counter (measurement windows)."""
    def sub(a: dict, b: dict) -> dict:
        return {k: a.get(k, 0) - b.get(k, 0) for k in set(a) | set(b)}

    return TrafficSnapshot(
        postings_by_phase=sub(
            after.postings_by_phase, before.postings_by_phase
        ),
        messages_by_phase=sub(
            after.messages_by_phase, before.messages_by_phase
        ),
        hops_by_phase=sub(after.hops_by_phase, before.hops_by_phase),
        messages_by_kind=sub(after.messages_by_kind, before.messages_by_kind),
    )
