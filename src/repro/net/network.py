"""The network facade: overlay + per-peer storage + traffic accounting.

:class:`P2PNetwork` is the substrate the global index runs on.  It exposes
DHT-style primitives — merge-insert, lookup, notify — and logs every
simulated message with its posting payload into the shared
:class:`TrafficAccounting`, so higher layers never touch counters directly.

Peer churn (join/leave) triggers key handoff between the affected peers;
handoff traffic is attributed to the MAINTENANCE phase, which the paper's
analysis deliberately reports separately from indexing/retrieval postings.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol, runtime_checkable

from ..errors import NetworkError, PeerNotFoundError
from ..obs.trace import get_tracer
from .accounting import Phase, TrafficAccounting
from .chord import ChordOverlay, Overlay
from .messages import Message, MessageKind
from .node_id import canonical_term_set, hash_to_id, peer_id_for
from .storage import PeerStorage

__all__ = ["MembershipEvent", "P2PNetwork", "RoutingPolicy"]


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change, with *which kind* it was.

    Crash and churn are different failure models: ``leave`` (graceful
    churn) hands the departing peer's keys to its inheritor, while
    ``crash`` destroys them — and overlay/replication hooks need to
    observe which occurred (a crash must drop stale replica state; a
    leave must not).

    Attributes:
        kind: ``"join"``, ``"leave"``, ``"crash"``, or ``"respawn"``.
        peer_name: the affected peer's registered name.
        peer_id: the affected peer's overlay id.
    """

    kind: str
    peer_name: str
    peer_id: int


@runtime_checkable
class RoutingPolicy(Protocol):
    """Hop-level routing hook installed on a :class:`P2PNetwork`.

    The flat network routes every message along the structured overlay
    (``overlay.route_hops``).  A routing policy replaces that *path*
    without touching *responsibility*: storage placement still follows
    ``overlay.responsible_peer``, so results are identical — only hop
    counts, message shapes, and mid-path answering (in-network caches,
    summaries) change.  Install by assigning ``network.router``; the
    super-peer hierarchy (:class:`repro.overlay.HierarchicalRouter`) is
    the shipped implementation.
    """

    def route_lookup(
        self,
        network: "P2PNetwork",
        source_id: int,
        key: Any,
        key_id: int,
        response_size: Callable[[Any | None], int],
        key_repr: str = "",
    ) -> Any | None:
        """Execute one lookup end to end: log the routed request and
        response messages and return the value (which the policy may
        serve from a mid-path cache instead of the responsible peer)."""
        ...

    def path_hops(self, source_id: int, key_id: int) -> int:
        """Routed hop count from ``source_id`` to the peer responsible
        for ``key_id`` (used for insert / stats-publication messages)."""
        ...

    def on_insert(self, key: Any, key_id: int) -> None:
        """Called after an insert is applied at the responsible peer
        (freshness hook: invalidate mid-path caches, update summaries)."""
        ...

    def on_membership_change(
        self, event: MembershipEvent | None = None
    ) -> None:
        """Called after the peer population changed (re-cluster, rebuild
        routing state).  ``event`` says what happened — join, leave,
        crash, or respawn; ``None`` means a coalesced batch of changes
        (see :meth:`P2PNetwork.membership_batch`)."""
        ...


class P2PNetwork:
    """A simulated structured P2P network.

    Args:
        overlay: an :class:`Overlay` implementation (Chord by default;
            pass a :class:`repro.net.pgrid.PGridOverlay` for the paper's
            P-Grid substrate).
        accounting: shared traffic counters; created when omitted.
        link_latency_s: simulated one-hop link latency in seconds; every
            logged message blocks the sending thread for
            ``hops * link_latency_s``.  The default ``0.0`` keeps the
            simulation instantaneous; a non-zero value models the WAN
            round-trips a real DHT pays, which is what makes concurrent
            query execution (``search_batch(workers=N)``) overlap useful
            work.  Mutable — benchmarks typically index at zero latency
            and turn it on for the serving phase.
    """

    def __init__(
        self,
        overlay: Overlay | None = None,
        accounting: TrafficAccounting | None = None,
        link_latency_s: float = 0.0,
    ) -> None:
        if link_latency_s < 0.0:
            raise NetworkError(
                f"link_latency_s must be >= 0, got {link_latency_s}"
            )
        self.overlay: Overlay = overlay if overlay is not None else ChordOverlay()
        self.accounting = accounting or TrafficAccounting()
        self.link_latency_s = link_latency_s
        #: Optional hop-level routing hook (see :class:`RoutingPolicy`).
        #: ``None`` routes every message along the structured overlay.
        self.router: RoutingPolicy | None = None
        #: Optional replication manager (see :mod:`repro.replication`).
        #: ``None`` keeps the network byte-identical to the unreplicated
        #: stack: one owner per key, no fan-out, no failover probes.
        self.replication: Any | None = None
        self._storage: dict[int, PeerStorage] = {}
        self._names: dict[str, int] = {}
        # Membership-batch state: depth of open membership_batch()
        # scopes and whether a join/leave happened inside one.
        self._membership_batch_depth = 0
        self._membership_changed_in_batch = False

    def _send(self, message: Message, route: str | None = None) -> None:
        """Log ``message`` and pay its simulated transmission latency.

        When a trace is in flight (tracing enabled, or an enabled
        caller's span is active in this context) the message becomes a
        ``net.msg`` span containing one ``net.hop`` child per accounted
        hop, so a trace's ``net.hop`` count equals the
        :class:`TrafficAccounting` hop total of the traced operation.
        The per-hop link latency is paid inside the hop spans (same
        total sleep as the untraced path)."""
        self.accounting.record(message)
        tracer = get_tracer()
        if tracer.active:
            self._send_traced(message, route, tracer)
            return
        if self.link_latency_s > 0.0 and message.hops > 0:
            time.sleep(self.link_latency_s * message.hops)

    def _send_traced(
        self, message: Message, route: str | None, tracer: Any
    ) -> None:
        attrs: dict[str, object] = {
            "kind": message.kind.name,
            "source": message.source,
            "destination": message.destination,
            "postings": message.postings,
            "hops": message.hops,
        }
        if route:
            attrs["route"] = route
        if message.key_repr:
            attrs["key"] = message.key_repr
        with tracer.span("net.msg", **attrs):
            for hop in range(message.hops):
                with tracer.span("net.hop", index=hop):
                    if self.link_latency_s > 0.0:
                        time.sleep(self.link_latency_s)

    def log_message(
        self,
        kind: MessageKind,
        source: int,
        destination: int,
        postings: int = 0,
        hops: int = 1,
        key_repr: str = "",
        route: str | None = None,
    ) -> None:
        """Log one protocol message into the traffic accounting.

        The public form of :meth:`_send` for layers that route messages
        themselves (a :class:`RoutingPolicy`, the super-peer topology's
        maintenance protocol) instead of going through the insert/lookup
        primitives.  ``route`` is trace-only attribution (which path the
        policy took, e.g. ``"path_cache"`` or ``"leaf->sp->owner"``) and
        never affects accounting.
        """
        self._send(
            Message(
                kind=kind,
                source=source,
                destination=destination,
                postings=postings,
                hops=hops,
                key_repr=key_repr,
            ),
            route=route,
        )

    def log_maintenance(
        self,
        kind: MessageKind,
        source: int,
        destination: int,
        postings: int = 0,
        hops: int = 1,
        key_repr: str = "",
        route: str | None = None,
    ) -> None:
        """Log one overlay-maintenance message under the MAINTENANCE
        phase regardless of the calling thread's current phase.

        The hook the adaptive overlay's split/merge protocol and scoped
        repair fan-outs go through: those fire from inside query or
        insert handling, whose thread-local phase is RETRIEVAL or
        INDEXING, but the paper's analysis reports maintenance
        separately — so the override scope wraps each message
        individually instead of trusting the caller to set it.
        """
        with self.accounting.phase_scope(Phase.MAINTENANCE):
            self.log_message(
                kind, source, destination, postings, hops, key_repr,
                route=route,
            )

    def _route_hops(self, source_id: int, key_id: int) -> int:
        """Routed hops from ``source_id`` to the responsible peer —
        through the installed router when present, the overlay walk
        otherwise."""
        if self.router is not None:
            return self.router.path_hops(source_id, key_id)
        return self.overlay.route_hops(source_id, key_id)

    # -- membership ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._storage)

    def peer_ids(self) -> list[int]:
        """Overlay ids of all current peers."""
        return self.overlay.peer_ids()

    def peer_names(self) -> list[str]:
        """Registered peer names, in registration order."""
        return list(self._names)

    def id_of(self, peer_name: str) -> int:
        """Overlay id of a registered peer name."""
        try:
            return self._names[peer_name]
        except KeyError:
            raise PeerNotFoundError(
                f"peer name {peer_name!r} not registered"
            ) from None

    def add_peer(self, peer_name: str) -> int:
        """Add a named peer; performs key handoff from the peer that
        previously covered the joiner's region.

        Returns the new peer's overlay id.
        """
        if peer_name in self._names:
            raise NetworkError(f"peer name {peer_name!r} already registered")
        peer_id = peer_id_for(peer_name)
        if peer_id in self._storage:
            raise NetworkError(
                f"peer id collision for {peer_name!r}; rename the peer"
            )
        handoff_source = self.overlay.add_peer(peer_id)
        self._storage[peer_id] = PeerStorage(peer_id)
        self._names[peer_name] = peer_id
        if handoff_source != peer_id:
            self._handoff_on_join(handoff_source, peer_id)
        self._notify_membership_change(
            MembershipEvent("join", peer_name, peer_id)
        )
        return peer_id

    def remove_peer(self, peer_name: str) -> None:
        """Remove a named peer gracefully (*churn*, not crash): its keys
        are handed to the inheriting peer before it departs.  Removing a
        crashed peer skips the handoff — its storage is already gone."""
        peer_id = self.id_of(peer_name)
        inheritor = self.overlay.remove_peer(peer_id)
        storage = self._storage.pop(peer_id, None)
        del self._names[peer_name]
        if storage is not None and inheritor in self._storage:
            moved = list(storage)
            target_storage = self._storage[inheritor]
            postings = 0
            for entry in moved:
                target_storage.put(entry.key, entry.key_id, entry.value)
                postings += self._payload_size(entry.value)
            self._record_maintenance(peer_id, inheritor, postings)
        self._notify_membership_change(
            MembershipEvent("leave", peer_name, peer_id)
        )

    def kill_peer(self, peer_name: str) -> None:
        """Crash a named peer: its storage is destroyed *without* the
        graceful handoff :meth:`remove_peer` performs — the data a real
        node loses when its disk dies with it.  The peer stays in the
        overlay ring and keeps its name (the population hasn't agreed it
        left), so key responsibility is unchanged: without replication
        its range simply goes dark; with replication installed, reads
        fail over to the surviving replicas.  Revive with
        :meth:`respawn_peer`."""
        peer_id = self.id_of(peer_name)
        if peer_id not in self._storage:
            raise NetworkError(f"peer {peer_name!r} is already crashed")
        del self._storage[peer_id]
        if self.replication is not None:
            self.replication.on_peer_crashed(peer_id)
        self._notify_membership_change(
            MembershipEvent("crash", peer_name, peer_id)
        )

    def respawn_peer(self, peer_name: str) -> None:
        """Revive a crashed peer with *empty* storage (a fresh disk).
        It rejoins the replica sets it belongs to but holds nothing
        until anti-entropy repair re-converges it."""
        peer_id = self.id_of(peer_name)
        if peer_id in self._storage:
            raise NetworkError(f"peer {peer_name!r} is alive")
        self._storage[peer_id] = PeerStorage(peer_id)
        if self.replication is not None:
            self.replication.on_peer_respawned(peer_id)
        self._notify_membership_change(
            MembershipEvent("respawn", peer_name, peer_id)
        )

    def is_live(self, peer_id: int) -> bool:
        """Whether the peer currently holds storage (not crashed)."""
        return peer_id in self._storage

    def live_peer_ids(self) -> list[int]:
        """Overlay ids of the live (non-crashed) peers, ascending."""
        return sorted(self._storage)

    def _notify_membership_change(
        self, event: MembershipEvent | None = None
    ) -> None:
        """Tell the installed router the population changed — deferred
        to scope exit inside a :meth:`membership_batch` (the coalesced
        notification carries no single event)."""
        if self.router is None:
            return
        if self._membership_batch_depth > 0:
            self._membership_changed_in_batch = True
            return
        self.router.on_membership_change(event)

    @contextmanager
    def membership_batch(self) -> Iterator[None]:
        """Coalesce router membership notifications over a batch of
        joins/leaves into one ``on_membership_change`` at scope exit.

        A routed network rebuilds clusters, drops path caches, and
        rescans every storage into fresh summaries on each membership
        change; growing by k peers one notification at a time would pay
        that k times (and charge k rounds of maintenance messages) for
        routing state only the final population needs.  Key handoffs
        still run per join/leave — only the router rebuild is deferred.
        Nestable; no-op when no router is installed.
        """
        self._membership_batch_depth += 1
        try:
            yield
        finally:
            self._membership_batch_depth -= 1
            if (
                self._membership_batch_depth == 0
                and self._membership_changed_in_batch
            ):
                self._membership_changed_in_batch = False
                self._notify_membership_change()

    def _handoff_on_join(self, source_peer: int, new_peer: int) -> None:
        """Move entries now owned by ``new_peer`` out of ``source_peer``."""
        source_storage = self._storage.get(source_peer)
        if source_storage is None:
            # The previous owner of the joiner's region is crashed:
            # there is nothing to hand off (the range is dark until
            # anti-entropy repair or re-indexing repopulates it).
            return
        moved = source_storage.pop_range(
            lambda key_id: self.overlay.responsible_peer(key_id) == new_peer
        )
        new_storage = self._storage[new_peer]
        postings = 0
        for entry in moved:
            new_storage.put(entry.key, entry.key_id, entry.value)
            postings += self._payload_size(entry.value)
        self._record_maintenance(source_peer, new_peer, postings)

    def _record_maintenance(
        self, source: int, destination: int, postings: int
    ) -> None:
        # A thread-local phase override: churn handoffs racing with
        # queries in other threads must not re-attribute their messages.
        with self.accounting.phase_scope(Phase.MAINTENANCE):
            self._send(
                Message(
                    kind=MessageKind.HANDOFF,
                    source=source,
                    destination=destination,
                    postings=postings,
                    hops=1,
                )
            )

    # -- DHT primitives ---------------------------------------------------------------

    def responsible_peer_for(self, key: Any) -> int:
        """Overlay id of the peer responsible for logical key ``key``."""
        return self.overlay.responsible_peer(self._key_id(key))

    def effective_owner(self, key_id: int) -> int | None:
        """The peer a read/write for ``key_id`` actually lands on: the
        first *live* replica in placement order.  Without a replication
        manager this is the responsible peer when live and ``None`` when
        it crashed (the range is dark); with one installed, crashes fail
        over to the next successor replica.  ``None`` means every owner
        is dead."""
        if self.replication is not None:
            return self.replication.effective_owner(key_id)
        owner = self.overlay.responsible_peer(key_id)
        return owner if owner in self._storage else None

    def insert(
        self,
        source_peer_name: str,
        key: Any,
        merge: Callable[[Any | None], Any],
        payload_postings: int,
        key_repr: str = "",
    ) -> Any:
        """Route a merge-insert for ``key`` from the source peer.

        ``merge`` receives the currently stored value (or None) and returns
        the value to store.  ``payload_postings`` is the number of postings
        the insert message carries (local posting list size), which is what
        the paper's indexing-cost figures count.

        The operation is the composition of its two phases —
        :meth:`send_insert` (transmission: message logging + simulated
        latency) and :meth:`apply_insert` (the merge at the responsible
        peer).  The parallel indexing pipeline drives the phases
        separately: shard workers pay transmission concurrently while
        the merges are applied in one deterministic order.

        Returns the merged stored value.
        """
        self.send_insert(
            source_peer_name, key, payload_postings, key_repr=key_repr
        )
        return self.apply_insert(key, merge)

    def send_insert(
        self,
        source_peer_name: str,
        key: Any,
        payload_postings: int,
        key_repr: str = "",
    ) -> None:
        """Transmission phase of an insert: log the routed INSERT message
        and pay its simulated link latency.  Touches no storage, so
        concurrent sends for different peers are safe; the insert
        completes when :meth:`apply_insert` runs its merge."""
        source_id = self.id_of(source_peer_name)
        key_id = self._key_id(key)
        target_id = self.overlay.responsible_peer(key_id)
        hops = self._route_hops(source_id, key_id)
        self._send(
            Message(
                kind=MessageKind.INSERT,
                source=source_id,
                destination=target_id,
                postings=payload_postings,
                hops=max(1, hops),
                key_repr=key_repr or repr(key),
            )
        )
        if self.replication is not None:
            # The primary forwards the op to the other replicas — one
            # direct REPLICA_WRITE per backup, logged in the send phase
            # so the parallel pipeline's transmission/merge split stays
            # deterministic.
            self.replication.send_replica_writes(
                self,
                target_id,
                key_id,
                payload_postings,
                key_repr=key_repr or repr(key),
            )

    def apply_insert(
        self,
        key: Any,
        merge: Callable[[Any | None], Any],
        origin: int | None = None,
    ) -> Any:
        """Application phase of an insert: run ``merge`` against the
        stored value at the responsible peer (no message is logged — the
        transmission was paid by :meth:`send_insert`).  Merge order is
        what the index's contents depend on, so callers that stage sends
        concurrently must apply in a deterministic order.

        ``origin`` is the inserting peer's overlay id; with replication
        installed it tags the op with a per-origin sequence number so
        replicas can discard redeliveries (idempotence), and the merge
        is applied independently at *every* live replica.  Without
        replication a write whose responsible peer crashed is simply
        lost (``merge(None)`` is still evaluated so the caller observes
        the value the acknowledgement would have carried)."""
        key_id = self._key_id(key)
        if self.replication is not None:
            merged = self.replication.apply_write(
                self, key, key_id, merge, origin=origin
            )
        else:
            target_id = self.overlay.responsible_peer(key_id)
            storage = self._storage.get(target_id)
            if storage is None:
                # Crashed owner, no replicas: the write is lost.
                merged = merge(None)
            else:
                merged = storage.update(key, key_id, merge)
        if self.router is not None:
            # After the write, so a racing lookup can never re-cache the
            # superseded value past this invalidation.
            self.router.on_insert(key, key_id)
        return merged

    def lookup(
        self,
        source_peer_name: str,
        key: Any,
        response_size: Callable[[Any | None], int],
        key_repr: str = "",
    ) -> Any | None:
        """Route a lookup for ``key``; returns the stored value or None.

        Two messages are logged: the request (no postings) and the
        response carrying ``response_size(value)`` postings back to the
        requester — the quantity Figure 6 plots per query.  With a
        :class:`RoutingPolicy` installed the whole lookup is delegated
        to it (hierarchical paths, mid-path cache answers); the returned
        value is identical either way because responsibility and storage
        are untouched by routing.
        """
        source_id = self.id_of(source_peer_name)
        key_id = self._key_id(key)
        if self.router is not None:
            return self.router.route_lookup(
                self,
                source_id,
                key,
                key_id,
                response_size,
                key_repr=key_repr or repr(key),
            )
        target_id = self.overlay.responsible_peer(key_id)
        hops = self.overlay.route_hops(source_id, key_id)
        self._send(
            Message(
                kind=MessageKind.LOOKUP,
                source=source_id,
                destination=target_id,
                postings=0,
                hops=max(1, hops),
                key_repr=key_repr or repr(key),
            ),
            route="flat",
        )
        storage = self._storage.get(target_id)
        # A crashed owner answers nothing; an empty RESPONSE stands in
        # for the requester's timeout (unreplicated crash semantics —
        # with replication installed the failover router takes over
        # before this path runs).
        value = storage.get(key) if storage is not None else None
        self._send(
            Message(
                kind=MessageKind.RESPONSE,
                source=target_id,
                destination=source_id,
                postings=response_size(value),
                hops=1,
                key_repr=key_repr or repr(key),
            ),
            route="flat",
        )
        return value

    def notify(
        self,
        source_peer_id: int,
        target_peer_name_id: int,
        key_repr: str = "",
    ) -> None:
        """Log an NDK notification message (no posting payload)."""
        self._send(
            Message(
                kind=MessageKind.NDK_NOTIFY,
                source=source_peer_id,
                destination=target_peer_name_id,
                postings=0,
                hops=1,
                key_repr=key_repr,
            )
        )

    def transfer(
        self,
        source_peer_name: str,
        destination_peer_name: str,
        postings: int,
        kind: MessageKind = MessageKind.RESPONSE,
        key_repr: str = "",
    ) -> None:
        """Log a direct peer-to-peer payload transfer.

        Used by protocols that exchange data outside the insert/lookup
        primitives — e.g. the Bloom-filter baseline shipping a filter
        (expressed in posting equivalents) between the peers responsible
        for two query terms.
        """
        source_id = self.id_of(source_peer_name)
        destination_id = self.id_of(destination_peer_name)
        # Direct transfer: the peers already know each other's addresses
        # from the preceding lookup, so no overlay routing is involved.
        self._send(
            Message(
                kind=kind,
                source=source_id,
                destination=destination_id,
                postings=postings,
                hops=0 if source_id == destination_id else 1,
                key_repr=key_repr,
            )
        )

    def publish_stats(
        self, source_peer_name: str, key: Any, postings: int = 0
    ) -> None:
        """Log a statistics-publication message (ranking metadata)."""
        source_id = self.id_of(source_peer_name)
        key_id = self._key_id(key)
        target_id = self.overlay.responsible_peer(key_id)
        hops = self._route_hops(source_id, key_id)
        self._send(
            Message(
                kind=MessageKind.STATS_PUBLISH,
                source=source_id,
                destination=target_id,
                postings=postings,
                hops=max(1, hops),
            )
        )
        if self.replication is not None:
            # Statistics publications replicate like inserts: the stats
            # peer forwards to its backups (metadata-sized, version-
            # vector LWW merged at each replica).
            self.replication.send_replica_writes(
                self, target_id, key_id, postings, origin=source_id
            )

    # -- storage inspection -------------------------------------------------------------

    def storage_of(self, peer_name: str) -> PeerStorage:
        """The storage of a named peer (for inspection and figures).

        Raises:
            PeerNotFoundError: unknown name or crashed peer.
        """
        return self.storage_by_id(self.id_of(peer_name))

    def storage_by_id(self, peer_id: int) -> PeerStorage:
        """The storage of a peer by overlay id.

        Raises:
            PeerNotFoundError: unknown id or crashed peer.
        """
        try:
            return self._storage[peer_id]
        except KeyError:
            raise PeerNotFoundError(
                f"peer id {peer_id} not in the network (or crashed)"
            ) from None

    def storages(self) -> Iterator[PeerStorage]:
        """Iterate over every peer's storage."""
        return iter(self._storage.values())

    def stored_entry_count(self) -> int:
        """Total entries stored network-wide."""
        return sum(len(storage) for storage in self._storage.values())

    def stored_value_total(self, size_of: Callable[[Any], int]) -> int:
        """Sum ``size_of`` over every stored value network-wide (e.g.
        total postings stored, for Figure 3)."""
        return sum(
            storage.total_value_size(size_of)
            for storage in self._storage.values()
        )

    # -- internals -----------------------------------------------------------------------

    def key_id(self, key: Any) -> int:
        """Public form of the key-hashing rule (snapshot loaders place
        entries directly into storages and need the id the network would
        assign)."""
        return self._key_id(key)

    @staticmethod
    def _key_id(key: Any) -> int:
        """Hash a logical key into the overlay id space.

        Logical keys are either strings or frozensets of strings (term
        sets); the canonical form sorts the terms so the id is
        order-independent.
        """
        if isinstance(key, str):
            canonical = key
        elif isinstance(key, frozenset):
            canonical = canonical_term_set(key)
        else:
            canonical = repr(key)
        return hash_to_id(canonical)

    @staticmethod
    def _payload_size(value: Any) -> int:
        """Posting count of a stored value, best effort (handoffs)."""
        size = getattr(value, "posting_count", None)
        if size is not None:
            return int(size() if callable(size) else size)
        try:
            return len(value)
        except TypeError:
            return 1
