"""Message kinds and the message record used for traffic accounting.

The scalability analysis counts *postings* carried by messages; the
simulator additionally records message and hop counts so experiments can
report routing behaviour.  A :class:`Message` is a passive record — the
simulator executes operations synchronously and logs the messages the real
system would have sent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Message", "MessageKind"]


class MessageKind(Enum):
    """The message vocabulary of the indexing/retrieval protocols."""

    #: Insert a (key, local posting list) pair into the global index.
    INSERT = "insert"
    #: Look up a key in the global index.
    LOOKUP = "lookup"
    #: Response carrying a posting list back to the requester.
    RESPONSE = "response"
    #: Notification that a submitted key became globally non-discriminative
    #: (triggers key expansion at the submitting peers).
    NDK_NOTIFY = "ndk_notify"
    #: Publication of per-term statistics (df/cf) used for ranking.
    STATS_PUBLISH = "stats_publish"
    #: Key-range handoff when a peer joins or leaves the overlay
    #: (maintenance; excluded from the paper's posting counts).
    HANDOFF = "handoff"
    #: Leaf-to-super-peer registration when clusters are (re)formed
    #: (maintenance; super-peer hierarchy, see :mod:`repro.overlay`).
    CLUSTER_JOIN = "cluster_join"
    #: Routing-index / cluster-summary exchange between super-peers and
    #: their members (maintenance; super-peer hierarchy).
    ROUTING_UPDATE = "routing_update"
    #: A hot cluster handing half its members to a freshly promoted
    #: super-peer (maintenance; adaptive overlay, see
    #: :mod:`repro.overlay.topology`).
    CLUSTER_SPLIT = "cluster_split"
    #: A cooled-down split pair folding back into one cluster
    #: (maintenance; adaptive overlay).
    CLUSTER_MERGE = "cluster_merge"
    #: Scoped eviction fan-out from a key's home super-peer to the
    #: super-peers holding path-cache copies of it (no posting payload).
    CACHE_INVALIDATE = "cache_invalidate"
    #: Replicated write fan-out from the primary owner to the other
    #: replicas of a key range (see :mod:`repro.replication`).
    REPLICA_WRITE = "replica_write"
    #: Liveness probe burned while a lookup fails over past dead
    #: replicas to the nearest live one (no posting payload).
    REPLICA_PROBE = "replica_probe"
    #: Merkle-tree digest exchanged between replicas during an
    #: anti-entropy round (maintenance; no posting payload).
    REPLICA_DIGEST = "replica_digest"
    #: A divergent key shipped replica-to-replica during anti-entropy
    #: repair (maintenance; carries the stored postings).
    REPLICA_REPAIR = "replica_repair"


_message_counter = itertools.count()


@dataclass(frozen=True)
class Message:
    """A logged protocol message.

    Attributes:
        kind: protocol message kind.
        source: overlay id of the sender.
        destination: overlay id of the (final) receiver.
        postings: number of postings carried in the payload.
        hops: overlay hops the message traversed.
        key_repr: human-readable key the message concerns (diagnostics).
        message_id: monotonically increasing id (log ordering).
    """

    kind: MessageKind
    source: int
    destination: int
    postings: int = 0
    hops: int = 1
    key_repr: str = ""
    message_id: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if self.postings < 0:
            raise ValueError(f"postings must be >= 0, got {self.postings}")
        if self.hops < 0:
            raise ValueError(f"hops must be >= 0, got {self.hops}")
