"""Per-peer key/value storage.

Each peer stores the fraction of the global index allocated to it by the
overlay.  The store is a plain mapping from the *logical* key (whatever
object the layer above uses — the global index stores term-set keys) to a
value, plus the hashed id so handoffs can move exactly the entries a new
responsibility boundary requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..errors import StorageError

__all__ = ["PeerStorage", "StoredEntry"]


@dataclass
class StoredEntry:
    """One stored (key, value) pair with its hashed overlay id."""

    key: Any
    key_id: int
    value: Any


class PeerStorage:
    """The key/value store of a single peer.

    Keys must be hashable; the caller supplies the hashed overlay id at
    insertion time (hashing lives in :mod:`repro.net.node_id` and the
    network facade, keeping storage oblivious to the id scheme).
    """

    def __init__(self, peer_id: int) -> None:
        self.peer_id = peer_id
        self._entries: dict[Any, StoredEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[StoredEntry]:
        return iter(self._entries.values())

    def get(self, key: Any) -> Any | None:
        """Return the stored value for ``key``, or None."""
        entry = self._entries.get(key)
        return entry.value if entry is not None else None

    def put(self, key: Any, key_id: int, value: Any) -> None:
        """Store ``value`` under ``key`` (overwrites)."""
        self._entries[key] = StoredEntry(key=key, key_id=key_id, value=value)

    def update(
        self, key: Any, key_id: int, merge: Callable[[Any | None], Any]
    ) -> Any:
        """Merge-update: ``merge`` receives the current value (or None) and
        returns the new value, which is stored and returned."""
        current = self.get(key)
        new_value = merge(current)
        if new_value is None:
            raise StorageError(
                f"merge function returned None for key {key!r}"
            )
        self.put(key, key_id, new_value)
        return new_value

    def remove(self, key: Any) -> Any:
        """Remove and return the value stored under ``key``.

        Raises:
            StorageError: when the key is absent.
        """
        entry = self._entries.pop(key, None)
        if entry is None:
            raise StorageError(
                f"key {key!r} not stored on peer {self.peer_id}"
            )
        return entry.value

    def pop_range(
        self, belongs_elsewhere: Callable[[int], bool]
    ) -> list[StoredEntry]:
        """Remove and return every entry whose ``key_id`` satisfies the
        predicate (used for handoffs on membership change)."""
        moved = [
            entry
            for entry in self._entries.values()
            if belongs_elsewhere(entry.key_id)
        ]
        for entry in moved:
            del self._entries[entry.key]
        return moved

    def total_value_size(self, size_of: Callable[[Any], int]) -> int:
        """Sum ``size_of(value)`` over all entries (e.g. postings stored
        per peer, the y-axis of Figure 3)."""
        return sum(size_of(entry.value) for entry in self._entries.values())
