"""A P-Grid-style binary-trie overlay.

P-Grid (the overlay under the paper's prototype) organizes peers in a
virtual binary trie: a peer is responsible for the keys whose binary
representation starts with one of the peer's *paths* (bit-string
prefixes), and routing resolves prefix bits per hop through referral
links.

The simulator maintains the trie as a **prefix-free cover** of the id
space: a map from path to owning peer where no path is a prefix of
another and the regions sum to the whole space.  A peer normally owns one
path; after churn it may temporarily own several (a departed neighbour's
region), which P-Grid handles the same way through replication.

- **join** splits the shallowest leaf (the largest region), mirroring
  P-Grid's load balancing: the splitting peer keeps the ``0`` extension
  and the joiner takes ``1``.
- **leave** reassigns each of the departed peer's paths to the owner of a
  leaf in the sibling subtree, then coalesces sibling paths owned by the
  same peer.
- **routing cost** is the number of trie levels resolved between the
  source's deepest matching prefix and the responsible peer's path —
  O(log |paths|) with high probability, the P-Grid cost model.
"""

from __future__ import annotations

from ..errors import NetworkError, PeerNotFoundError
from .node_id import KEY_SPACE_BITS, KEY_SPACE_SIZE

__all__ = ["PGridOverlay"]


def _id_bits(value: int) -> str:
    """Binary representation of an id, fixed width."""
    return format(value, f"0{KEY_SPACE_BITS}b")


def _sibling(path: str) -> str:
    """The sibling path (last bit flipped).  Undefined for the root."""
    return path[:-1] + ("1" if path[-1] == "0" else "0")


class PGridOverlay:
    """Binary-trie overlay: peers own disjoint prefix regions."""

    def __init__(self, peer_ids: list[int] | None = None) -> None:
        #: path -> owning peer; invariant: prefix-free complete cover.
        self._paths: dict[str, int] = {}
        #: peer -> set of owned paths.
        self._peer_paths: dict[int, set[str]] = {}
        for peer_id in peer_ids or []:
            self.add_peer(peer_id)

    # -- membership --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._peer_paths)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._peer_paths

    def peer_ids(self) -> list[int]:
        """All peer ids, ordered by their primary (shortest) path."""
        return sorted(self._peer_paths, key=lambda p: self.path_of(p))

    def paths(self) -> dict[str, int]:
        """A copy of the full path -> peer map (diagnostics, tests)."""
        return dict(self._paths)

    def path_of(self, peer_id: int) -> str:
        """The peer's primary path: its shortest (then lexicographically
        first) owned prefix.

        Raises:
            PeerNotFoundError: for unknown peers.
        """
        owned = self._peer_paths.get(peer_id)
        if not owned:
            raise PeerNotFoundError(f"peer id {peer_id} not in overlay")
        return min(owned, key=lambda p: (len(p), p))

    def add_peer(self, peer_id: int) -> int:
        """Add a peer by splitting the shallowest leaf; returns the peer
        whose region was split (the handoff source).

        The first peer owns the empty path (the whole space) and is its
        own handoff source.
        """
        if not 0 <= peer_id < KEY_SPACE_SIZE:
            raise NetworkError(f"peer id {peer_id} outside the id space")
        if peer_id in self._peer_paths:
            raise NetworkError(f"peer id {peer_id} already in overlay")
        if not self._paths:
            self._assign("", peer_id)
            return peer_id
        victim_path = min(self._paths, key=lambda p: (len(p), p))
        victim_peer = self._paths[victim_path]
        self._unassign(victim_path)
        self._assign(victim_path + "0", victim_peer)
        self._assign(victim_path + "1", peer_id)
        return victim_peer

    def remove_peer(self, peer_id: int) -> int:
        """Remove a peer; each of its regions merges into the trie.

        Returns one inheriting peer (the one receiving the peer's primary
        region), which the network layer uses as the handoff target.

        Raises:
            PeerNotFoundError: for unknown peers.
            NetworkError: when removing the last peer.
        """
        if peer_id not in self._peer_paths:
            raise PeerNotFoundError(f"peer id {peer_id} not in overlay")
        if len(self._peer_paths) == 1:
            raise NetworkError("cannot remove the last peer of the overlay")
        primary = self.path_of(peer_id)
        owned = sorted(self._peer_paths[peer_id])
        primary_inheritor: int | None = None
        for path in owned:
            inheritor = self._find_inheritor(path, peer_id)
            self._unassign(path)
            self._assign(path, inheritor)
            self._coalesce(path)
            if path == primary:
                primary_inheritor = inheritor
        del self._peer_paths[peer_id]
        assert primary_inheritor is not None
        return primary_inheritor

    def _find_inheritor(self, path: str, departing: int) -> int:
        """Pick the peer inheriting ``path``: the owner of the
        lexicographically first leaf in the sibling subtree, falling back
        to any other peer when the whole sibling side belongs to the
        departing peer too."""
        if path:
            sibling_prefix = _sibling(path)
            candidates = sorted(
                p
                for p, owner in self._paths.items()
                if p.startswith(sibling_prefix) and owner != departing
            )
            if candidates:
                return self._paths[candidates[0]]
        for p in sorted(self._paths):
            if self._paths[p] != departing:
                return self._paths[p]
        raise NetworkError("no inheritor available")  # pragma: no cover

    def _coalesce(self, path: str) -> None:
        """Merge sibling paths owned by the same peer, bottom-up."""
        while path:
            sibling = _sibling(path)
            owner = self._paths.get(path)
            if owner is None or self._paths.get(sibling) != owner:
                return
            self._unassign(path)
            self._unassign(sibling)
            parent = path[:-1]
            self._assign(parent, owner)
            path = parent

    def _assign(self, path: str, peer_id: int) -> None:
        self._paths[path] = peer_id
        self._peer_paths.setdefault(peer_id, set()).add(path)

    def _unassign(self, path: str) -> None:
        owner = self._paths.pop(path)
        owned = self._peer_paths[owner]
        owned.discard(path)

    # -- responsibility and routing ---------------------------------------------------

    def responsible_peer(self, key_id: int) -> int:
        """The peer owning the prefix that covers the key's bits."""
        if not 0 <= key_id < KEY_SPACE_SIZE:
            raise NetworkError(f"key id {key_id} outside the id space")
        if not self._paths:
            raise NetworkError("overlay has no peers")
        bits = _id_bits(key_id)
        # The cover is prefix-free and complete: exactly one prefix of the
        # key's bits is present.  Paths are short (≈ log2 N bits), so walk
        # prefixes from the empty path upward.
        for end in range(0, len(bits) + 1):
            owner = self._paths.get(bits[:end])
            if owner is not None:
                return owner
        raise NetworkError(
            f"trie inconsistency: no peer covers key {key_id}"
        )  # pragma: no cover

    def route_hops(self, source_peer: int, key_id: int) -> int:
        """P-Grid routing cost: one hop per referral level used.

        A peer resolves a key by following, at the first bit where the key
        diverges from its own path, a referral to the other side of the
        trie; each referral resolves at least one more bit.  The cost is
        the number of levels of the responsible peer's covering path
        beyond the longest common prefix with the source's path.
        """
        source_path = self.path_of(source_peer)
        target = self.responsible_peer(key_id)
        if target == source_peer:
            return 0
        bits = _id_bits(key_id)
        common = 0
        for source_bit, key_bit in zip(source_path, bits):
            if source_bit != key_bit:
                break
            common += 1
        # The covering path of the key at the target:
        target_path = next(
            p
            for p in self._peer_paths[target]
            if bits.startswith(p)
        )
        return max(1, len(target_path) - common)
