"""Structured P2P overlay substrate.

The paper's prototype runs on the P-Grid overlay; its analysis counts
*transmitted postings* and deliberately excludes overlay-maintenance
payloads.  This package provides an in-process simulation with exactly that
accounting:

- :mod:`repro.net.node_id` — the hashed key/peer identifier space,
- :mod:`repro.net.messages` — message kinds and per-message accounting,
- :mod:`repro.net.accounting` — traffic counters by phase and kind,
- :mod:`repro.net.chord` — a Chord-style ring with finger-table routing,
- :mod:`repro.net.pgrid` — a P-Grid-style binary-trie overlay,
- :mod:`repro.net.storage` — per-peer key/value stores,
- :mod:`repro.net.network` — the :class:`P2PNetwork` facade gluing the
  overlay, storage, and accounting together.

Both overlays implement the same :class:`repro.net.chord.Overlay` protocol,
so the global index is overlay-agnostic (an ablation in DESIGN.md §5).
"""

from .accounting import (
    Phase,
    TrafficAccounting,
    TrafficSnapshot,
    TrafficWindow,
    diff_snapshots,
)
from .chord import ChordOverlay
from .messages import Message, MessageKind
from .network import P2PNetwork
from .node_id import KEY_SPACE_BITS, hash_to_id, peer_id_for
from .pgrid import PGridOverlay
from .storage import PeerStorage

__all__ = [
    "Phase",
    "TrafficAccounting",
    "TrafficSnapshot",
    "TrafficWindow",
    "diff_snapshots",
    "ChordOverlay",
    "Message",
    "MessageKind",
    "P2PNetwork",
    "KEY_SPACE_BITS",
    "hash_to_id",
    "peer_id_for",
    "PGridOverlay",
    "PeerStorage",
]
