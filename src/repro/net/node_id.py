"""The hashed identifier space shared by peers and keys.

Keys and peers are mapped into one circular ``2**KEY_SPACE_BITS`` id space
(consistent hashing).  SHA-1 is used as the hash function — the classic
choice of Chord/P-Grid-era DHTs — truncated to the configured width.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "KEY_SPACE_BITS",
    "KEY_SPACE_SIZE",
    "canonical_term_set",
    "hash_to_id",
    "peer_id_for",
]

#: Width of the identifier space in bits.  64 bits keeps ids readable in
#: debug output while making collisions vanishingly unlikely at simulated
#: network sizes.
KEY_SPACE_BITS = 64

#: Size of the identifier space.
KEY_SPACE_SIZE = 1 << KEY_SPACE_BITS


def canonical_term_set(key: frozenset[str]) -> str:
    """The one canonical serialization of a term-set key (terms sorted,
    0x1f-joined).  Both the overlay hashing (`P2PNetwork.key_id`) and the
    on-disk segment format (`repro.store.segment`) build on this rule;
    keeping it in one place guarantees a persisted key rehashes to the
    same responsible peer on reload."""
    return "\x1f".join(sorted(key))


def hash_to_id(value: str) -> int:
    """Map an arbitrary string to an id in ``[0, 2**KEY_SPACE_BITS)``."""
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % KEY_SPACE_SIZE


def peer_id_for(peer_name: str) -> int:
    """Map a peer name to its overlay id.

    Peer ids live in the same space as key ids (consistent hashing); the
    dedicated function exists so call sites read unambiguously.
    """
    return hash_to_id(f"peer:{peer_name}")
