"""A Chord-style ring overlay with finger-table routing.

Responsibility follows consistent hashing: the peer responsible for a key
id is its *successor* on the ring.  Routing uses classic Chord fingers
(peer p's i-th finger is the successor of ``p + 2^i``), giving O(log N)
hops, which the simulator counts per lookup.

Both this overlay and :class:`repro.net.pgrid.PGridOverlay` satisfy the
:class:`Overlay` protocol, so higher layers are overlay-agnostic.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Protocol

from ..errors import NetworkError, PeerNotFoundError
from .node_id import KEY_SPACE_BITS, KEY_SPACE_SIZE

__all__ = ["Overlay", "ChordOverlay"]


class Overlay(Protocol):
    """Minimal overlay interface required by :class:`P2PNetwork`."""

    def peer_ids(self) -> list[int]:
        """All peer ids currently in the overlay."""
        ...

    def responsible_peer(self, key_id: int) -> int:
        """The peer id responsible for ``key_id``."""
        ...

    def route_hops(self, source_peer: int, key_id: int) -> int:
        """Overlay hops from ``source_peer`` to the responsible peer."""
        ...

    def add_peer(self, peer_id: int) -> int:
        """Add a peer; returns the id of the peer that previously covered
        the new peer's range (the handoff source)."""
        ...

    def remove_peer(self, peer_id: int) -> int:
        """Remove a peer; returns the id of the peer that inherits its
        range (the handoff target)."""
        ...


class ChordOverlay:
    """Chord ring over the shared 2**64 id space."""

    def __init__(self, peer_ids: Iterable[int] = ()) -> None:
        self._ring: list[int] = []
        for peer_id in peer_ids:
            self.add_peer(peer_id)

    # -- membership --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def peer_ids(self) -> list[int]:
        """Peers in ring order (ascending id)."""
        return list(self._ring)

    def __contains__(self, peer_id: int) -> bool:
        index = bisect.bisect_left(self._ring, peer_id)
        return index < len(self._ring) and self._ring[index] == peer_id

    def add_peer(self, peer_id: int) -> int:
        """Insert ``peer_id``; returns the previous owner of its range.

        The previous owner is the new peer's successor — in Chord, a
        joining node takes over part of its successor's key range.  For
        the first peer, the peer itself is returned.
        """
        self._validate_id(peer_id)
        if peer_id in self:
            raise NetworkError(f"peer id {peer_id} already in overlay")
        if not self._ring:
            self._ring.append(peer_id)
            return peer_id
        successor = self._successor_of(peer_id)
        bisect.insort(self._ring, peer_id)
        return successor

    def remove_peer(self, peer_id: int) -> int:
        """Remove ``peer_id``; returns the peer inheriting its range.

        Raises:
            PeerNotFoundError: if the peer is not in the overlay.
            NetworkError: when removing the last peer (no inheritor).
        """
        index = bisect.bisect_left(self._ring, peer_id)
        if index >= len(self._ring) or self._ring[index] != peer_id:
            raise PeerNotFoundError(f"peer id {peer_id} not in overlay")
        if len(self._ring) == 1:
            raise NetworkError("cannot remove the last peer of the overlay")
        del self._ring[index]
        # The departed peer's keys go to its successor (wrapping).
        return self._ring[index % len(self._ring)]

    # -- responsibility and routing -------------------------------------------------

    def responsible_peer(self, key_id: int) -> int:
        """Successor of ``key_id`` on the ring."""
        self._validate_id(key_id)
        if not self._ring:
            raise NetworkError("overlay has no peers")
        return self._successor_of(key_id)

    def route_hops(self, source_peer: int, key_id: int) -> int:
        """Count greedy finger-table hops from ``source_peer`` to the peer
        responsible for ``key_id``.

        Each hop jumps to the finger that most closely precedes the key,
        exactly Chord's ``closest_preceding_node`` walk; the hop count is
        O(log N) with high probability.
        """
        if source_peer not in self:
            raise PeerNotFoundError(
                f"source peer {source_peer} not in overlay"
            )
        target = self.responsible_peer(key_id)
        current = source_peer
        hops = 0
        # Guard: in a ring of N peers the greedy walk must terminate in
        # fewer than N hops; a violation indicates a routing bug.
        for _ in range(len(self._ring) + 1):
            if current == target:
                return hops
            current = self._closest_preceding_finger(current, key_id)
            hops += 1
        raise NetworkError(
            f"routing loop from {source_peer} to key {key_id}"
        )

    # -- internals ------------------------------------------------------------------

    @staticmethod
    def _validate_id(value: int) -> None:
        if not 0 <= value < KEY_SPACE_SIZE:
            raise NetworkError(
                f"id {value} outside the {KEY_SPACE_BITS}-bit space"
            )

    def _successor_of(self, value: int) -> int:
        """First peer id >= value, wrapping around the ring."""
        index = bisect.bisect_left(self._ring, value)
        if index == len(self._ring):
            index = 0
        return self._ring[index]

    def _fingers(self, peer_id: int) -> list[int]:
        """Finger table of ``peer_id``: successor of ``peer + 2^i``."""
        fingers = []
        for i in range(KEY_SPACE_BITS):
            fingers.append(
                self._successor_of((peer_id + (1 << i)) % KEY_SPACE_SIZE)
            )
        return fingers

    def _closest_preceding_finger(self, current: int, key_id: int) -> int:
        """The finger of ``current`` that most closely precedes ``key_id``
        (falling back to the immediate successor)."""
        best = None
        for i in reversed(range(KEY_SPACE_BITS)):
            finger = self._successor_of(
                (current + (1 << i)) % KEY_SPACE_SIZE
            )
            if finger != current and _in_open_interval(
                finger, current, key_id
            ):
                best = finger
                break
        if best is None:
            # No finger strictly precedes the key: the successor is
            # responsible; one final hop reaches it.
            best = self._successor_of((current + 1) % KEY_SPACE_SIZE)
        return best


def _in_open_interval(value: int, low: int, high: int) -> bool:
    """True iff ``value`` lies in the circular open interval (low, high)."""
    if low == high:
        # Full circle (single-peer degenerate case).
        return value != low
    if low < high:
        return low < value < high
    return value > low or value < high
