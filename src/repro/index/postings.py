"""Postings and posting lists.

A posting associates a key (term or term set) with one document.  Beyond
the document id, each posting carries the per-term frequencies of the
key's terms in that document plus the document length — the payload the
prototype's distributed ranking ships so the query peer can compute
BM25-style scores without touching the documents (paper Section 5,
"integrates a solution for distributed content-based ranking").

Posting lists are kept sorted by document id, enabling linear-time merge
operations.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..errors import IndexError_

__all__ = ["Posting", "PostingList"]


@dataclass(frozen=True, slots=True)
class Posting:
    """One (key, document) index entry.

    Attributes:
        doc_id: the document's global id.
        tf: key-level frequency — for single-term keys the term frequency;
            for multi-term keys the minimum of the member terms'
            frequencies (a conjunctive frequency proxy used for NDK
            truncation ordering).
        term_tfs: per-term frequencies aligned with the key's terms in
            sorted order; empty tuple means "same as tf" (single-term).
        doc_len: document length in processed tokens (BM25 normalization).
    """

    doc_id: int
    tf: int
    term_tfs: tuple[int, ...] = ()
    doc_len: int = 0

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise IndexError_(f"doc_id must be >= 0, got {self.doc_id}")
        if self.tf < 1:
            raise IndexError_(f"tf must be >= 1, got {self.tf}")
        if self.doc_len < 0:
            raise IndexError_(f"doc_len must be >= 0, got {self.doc_len}")
        if any(t < 1 for t in self.term_tfs):
            raise IndexError_(
                f"term_tfs must all be >= 1, got {self.term_tfs}"
            )

    def term_frequency(self, index: int) -> int:
        """Frequency of the key's ``index``-th term (sorted order)."""
        if not self.term_tfs:
            return self.tf
        return self.term_tfs[index]


class PostingList:
    """A posting list sorted by document id, one posting per document."""

    __slots__ = ("_postings",)

    def __init__(self, postings: Iterable[Posting] = ()) -> None:
        items = sorted(postings, key=lambda p: p.doc_id)
        for left, right in zip(items, items[1:]):
            if left.doc_id == right.doc_id:
                raise IndexError_(
                    f"duplicate doc_id {left.doc_id} in posting list"
                )
        self._postings: list[Posting] = items

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __contains__(self, doc_id: int) -> bool:
        index = bisect.bisect_left(self.doc_ids(), doc_id)
        return (
            index < len(self._postings)
            and self._postings[index].doc_id == doc_id
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        return self._postings == other._postings

    def __repr__(self) -> str:
        return f"PostingList(len={len(self._postings)})"

    # -- accessors ----------------------------------------------------------------

    def doc_ids(self) -> list[int]:
        """Document ids in ascending order."""
        return [p.doc_id for p in self._postings]

    def get(self, doc_id: int) -> Posting | None:
        """The posting for ``doc_id``, or None."""
        ids = self.doc_ids()
        index = bisect.bisect_left(ids, doc_id)
        if index < len(ids) and ids[index] == doc_id:
            return self._postings[index]
        return None

    def document_frequency(self) -> int:
        """``df`` — number of documents in the list (alias of ``len``)."""
        return len(self._postings)

    # -- construction --------------------------------------------------------------

    def add(self, posting: Posting) -> None:
        """Insert a posting, keeping the list sorted.

        Raises:
            IndexError_: when the document already has a posting.
        """
        ids = self.doc_ids()
        index = bisect.bisect_left(ids, posting.doc_id)
        if index < len(ids) and ids[index] == posting.doc_id:
            raise IndexError_(
                f"doc_id {posting.doc_id} already in posting list"
            )
        self._postings.insert(index, posting)

    # -- set operations (linear merges over sorted lists) ----------------------------

    def union(self, other: "PostingList") -> "PostingList":
        """Document-level union; on conflict keeps the posting with more
        ranking information (more term_tfs, then higher tf)."""
        merged: list[Posting] = []
        left, right = self._postings, other._postings
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i].doc_id < right[j].doc_id:
                merged.append(left[i])
                i += 1
            elif left[i].doc_id > right[j].doc_id:
                merged.append(right[j])
                j += 1
            else:
                merged.append(_richer_posting(left[i], right[j]))
                i += 1
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        result = PostingList.__new__(PostingList)
        result._postings = merged
        return result

    def intersect(self, other: "PostingList") -> "PostingList":
        """Documents present in both lists (postings from ``self``)."""
        result_postings: list[Posting] = []
        left, right = self._postings, other._postings
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i].doc_id < right[j].doc_id:
                i += 1
            elif left[i].doc_id > right[j].doc_id:
                j += 1
            else:
                result_postings.append(left[i])
                i += 1
                j += 1
        result = PostingList.__new__(PostingList)
        result._postings = result_postings
        return result

    def filter_docs(self, keep: Callable[[int], bool]) -> "PostingList":
        """Postings whose document satisfies ``keep`` (local
        post-processing of a subsumed key's answer set)."""
        result = PostingList.__new__(PostingList)
        result._postings = [p for p in self._postings if keep(p.doc_id)]
        return result

    # -- truncation (NDK top-DF_max) ---------------------------------------------------

    def truncate_top(
        self, limit: int, policy: str = "tf"
    ) -> "PostingList":
        """Return the top-``limit`` postings under the given policy.

        Policies:
            ``"tf"`` — highest key-level term frequency first (ties broken
            by ascending doc_id for determinism);
            ``"norm"`` — highest length-normalized frequency ``tf/doc_len``
            first (documents with doc_len 0 rank last).

        The result is re-sorted by document id, as stored lists are.
        """
        if limit < 0:
            raise IndexError_(f"limit must be >= 0, got {limit}")
        if len(self._postings) <= limit:
            return PostingList(self._postings)
        if policy == "tf":
            ranked = sorted(
                self._postings, key=lambda p: (-p.tf, p.doc_id)
            )
        elif policy == "norm":
            ranked = sorted(
                self._postings,
                key=lambda p: (
                    -(p.tf / p.doc_len if p.doc_len else 0.0),
                    p.doc_id,
                ),
            )
        else:
            raise IndexError_(f"unknown truncation policy {policy!r}")
        return PostingList(ranked[:limit])


def _richer_posting(a: Posting, b: Posting) -> Posting:
    """Pick the posting carrying more ranking information."""
    if len(a.term_tfs) != len(b.term_tfs):
        return a if len(a.term_tfs) > len(b.term_tfs) else b
    return a if a.tf >= b.tf else b
