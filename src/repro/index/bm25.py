"""The BM25 relevance scheme.

The paper compares its distributed engine against a centralized single-term
engine "using the best state-of-the-art BM25 relevance computation scheme".
This module implements Okapi BM25 with the standard parameters
(k1 = 1.2, b = 0.75) in a form usable both over a full
:class:`LocalInvertedIndex` (centralized baseline) and over fetched posting
payloads with externally supplied statistics (distributed ranking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import RetrievalError

__all__ = ["TermStats", "BM25Scorer"]


@dataclass(frozen=True)
class TermStats:
    """Global statistics of one term, as shipped to query peers.

    Attributes:
        term: the term itself.
        document_frequency: global ``df``.
        collection_frequency: global ``cf`` (informational; BM25 uses df).
    """

    term: str
    document_frequency: int
    collection_frequency: int


@dataclass(frozen=True)
class BM25Scorer:
    """Okapi BM25 scoring.

    Attributes:
        num_documents: collection size ``N``.
        average_doc_length: ``avgdl``.
        k1: term-frequency saturation (default 1.2).
        b: length-normalization strength (default 0.75).
    """

    num_documents: int
    average_doc_length: float
    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.num_documents < 1:
            raise RetrievalError(
                f"num_documents must be >= 1, got {self.num_documents}"
            )
        if self.average_doc_length <= 0:
            raise RetrievalError(
                f"average_doc_length must be > 0, "
                f"got {self.average_doc_length}"
            )
        if self.k1 < 0 or self.b < 0 or self.b > 1:
            raise RetrievalError(
                f"invalid BM25 parameters k1={self.k1}, b={self.b}"
            )

    def idf(self, document_frequency: int) -> float:
        """Robertson-Sparck-Jones idf with +0.5 smoothing, floored at 0.

        The floor avoids negative contributions for terms occurring in
        more than half of the documents — the common practical variant.
        """
        if document_frequency < 0:
            raise RetrievalError(
                f"document_frequency must be >= 0, got {document_frequency}"
            )
        value = math.log(
            (self.num_documents - document_frequency + 0.5)
            / (document_frequency + 0.5)
        )
        return max(0.0, value)

    def term_score(
        self, tf: int, doc_len: int, document_frequency: int
    ) -> float:
        """BM25 contribution of one term occurrence profile."""
        if tf <= 0:
            return 0.0
        denominator = tf + self.k1 * (
            1 - self.b + self.b * doc_len / self.average_doc_length
        )
        return self.idf(document_frequency) * tf * (self.k1 + 1) / denominator

    def score_document(
        self,
        term_tfs: dict[str, int],
        doc_len: int,
        dfs: dict[str, int],
    ) -> float:
        """Score a document given its per-term frequencies for the query
        terms and the terms' global document frequencies.

        Terms absent from ``term_tfs`` contribute zero, matching
        disjunctive (OR) retrieval semantics.
        """
        score = 0.0
        for term, tf in term_tfs.items():
            df = dfs.get(term, 0)
            score += self.term_score(tf, doc_len, df)
        return score
