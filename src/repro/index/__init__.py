"""Index substrate: posting lists, local inverted index, BM25, global index.

- :mod:`repro.index.postings` — postings with per-term frequency payloads,
  sorted posting lists, union/intersection/truncation.
- :mod:`repro.index.codec` — varint/delta wire encoding of posting lists
  (byte-level traffic accounting).
- :mod:`repro.index.inverted` — a local single-term inverted index.
- :mod:`repro.index.bm25` — the BM25 relevance scheme (the paper's
  centralized comparison baseline).
- :mod:`repro.index.global_index` — the DHT-distributed key-to-documents
  index with df aggregation, NDK truncation, and NDK notifications.
"""

from .bloom import BloomFilter
from .bm25 import BM25Scorer, TermStats
from .codec import decode_posting_list, encode_posting_list
from .global_index import GlobalEntry, GlobalKeyIndex, KeyStatus
from .inverted import LocalInvertedIndex
from .postings import Posting, PostingList

__all__ = [
    "BloomFilter",
    "BM25Scorer",
    "TermStats",
    "decode_posting_list",
    "encode_posting_list",
    "GlobalEntry",
    "GlobalKeyIndex",
    "KeyStatus",
    "LocalInvertedIndex",
    "Posting",
    "PostingList",
]
