"""The distributed global key-to-documents index.

This is the paper's global P2P index (Section 3): peers insert
(key, local posting list) pairs; the peer responsible for a key under the
DHT merges the fragments, maintains the key's *global* document frequency,
and classifies the key as discriminative (DK) or non-discriminative (NDK)
against ``DF_max``:

- DK entries keep their **full** merged posting list;
- NDK entries keep only the **top-DF_max** postings (by the configured
  truncation policy) while the true global ``df`` continues to be tracked;
- the moment an inserted key crosses the threshold, every peer that
  contributed it is **notified** so it expands the key with additional
  terms in the next indexing round (the NDK notification mechanism).

Term-level statistics (global df/cf per single term, document count,
average document length) are aggregated alongside, standing in for the
prototype's distributed statistics directory used by ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..config import HDKParameters
from ..errors import IndexError_
from ..net.accounting import Phase
from ..net.network import P2PNetwork
from .bm25 import TermStats
from .postings import PostingList

__all__ = ["KeyStatus", "GlobalEntry", "GlobalKeyIndex", "StagedInsert"]

#: Logical keys are canonical term sets.
Key = frozenset


def key_repr(key: frozenset[str]) -> str:
    """Human-readable canonical form of a key, e.g. ``{apple+pie}``."""
    return "{" + "+".join(sorted(key)) + "}"


class KeyStatus(Enum):
    """Global classification of a key against ``DF_max``."""

    DISCRIMINATIVE = "dk"
    NON_DISCRIMINATIVE = "ndk"


@dataclass
class GlobalEntry:
    """The stored state of one key at its responsible peer.

    Attributes:
        key: the term set.
        postings: stored posting list — full for DKs, truncated top-DF_max
            for NDKs.
        global_df: the true global document frequency (keeps counting even
            after truncation).
        status: current DK/NDK classification.
        contributors: overlay ids of peers that inserted this key (the
            notification fan-out set).
    """

    key: frozenset[str]
    postings: PostingList
    global_df: int
    status: KeyStatus
    contributors: set[int] = field(default_factory=set)

    @property
    def is_truncated(self) -> bool:
        """True when stored postings are fewer than the global df."""
        return len(self.postings) < self.global_df

    def posting_count(self) -> int:
        """Stored posting count (drives handoff payload accounting)."""
        return len(self.postings)


@dataclass(frozen=True)
class StagedInsert:
    """An insert whose transmission has been paid but whose merge has
    not yet been applied.

    Produced by :meth:`GlobalKeyIndex.stage_insert` (which validates the
    payload and logs the routed INSERT message) and consumed by
    :meth:`GlobalKeyIndex.apply_staged` (which runs the merge at the
    responsible peer).  The split is what lets the parallel indexing
    pipeline pay transmission latency concurrently across shard workers
    while merges — the order-sensitive part of the protocol — are
    applied in one deterministic sequence.

    Attributes:
        source_peer_name: the inserting peer.
        key: the term set.
        payload: the published (possibly locally truncated) postings.
        local_df: the peer's true local document frequency for the key.
    """

    source_peer_name: str
    key: frozenset[str]
    payload: PostingList
    local_df: int


class GlobalKeyIndex:
    """Facade over the network for the global index protocol.

    Args:
        network: the simulated P2P network storing the entries.
        params: the HDK model parameters (``df_max``, truncation policy).
    """

    def __init__(self, network: P2PNetwork, params: HDKParameters) -> None:
        self.network = network
        self.params = params
        # Term statistics directory (stand-in for the distributed stats
        # service; aggregation traffic is logged via publish_stats).
        self._term_stats: dict[str, TermStats] = {}
        self._num_documents = 0
        self._total_doc_length = 0
        # Keys that transitioned to NDK since the last drain, with the
        # contributor set at transition time.  Drives the incremental
        # join protocol's expansion cascade.
        self._transition_log: list[tuple[frozenset[str], frozenset[int]]] = []

    # -- indexing-side API ---------------------------------------------------------

    def insert(
        self,
        source_peer_name: str,
        key: frozenset[str],
        local_postings: PostingList,
        local_df: int | None = None,
    ) -> KeyStatus:
        """Insert a peer's local posting list for ``key``.

        Merges into the global entry at the responsible peer, updates the
        global df, truncates NDK lists, and sends NDK notifications to all
        contributors when the key *transitions* from DK to NDK.

        Args:
            source_peer_name: the inserting peer.
            local_postings: the published postings — a peer whose local
                list exceeds ``DF_max`` publishes only its local top
                ``DF_max`` (the paper's NDK policy), so the payload may be
                smaller than the peer's true local df.
            local_df: the peer's true local document frequency for the
                key; defaults to ``len(local_postings)``.  Global df is
                the sum of the contributors' local dfs, exact because
                peers hold disjoint document sets and each peer inserts a
                given key at most once per indexing run.

        Returns the key's status after the insert (what the inserting peer
        learns from the acknowledgement).
        """
        return self.apply_staged(
            self.stage_insert(source_peer_name, key, local_postings, local_df)
        )

    def stage_insert(
        self,
        source_peer_name: str,
        key: frozenset[str],
        local_postings: PostingList,
        local_df: int | None = None,
    ) -> StagedInsert:
        """Transmission phase of :meth:`insert`: validate the payload and
        log/pay the routed INSERT message, without touching the stored
        entry.  Safe to run concurrently across peers; the returned
        :class:`StagedInsert` must then go through :meth:`apply_staged`
        in the protocol's deterministic order."""
        if not key:
            raise IndexError_("cannot insert the empty key")
        if len(local_postings) == 0:
            raise IndexError_(
                f"refusing to insert empty posting list for {key_repr(key)}"
            )
        if local_df is None:
            local_df = len(local_postings)
        if local_df < len(local_postings):
            raise IndexError_(
                f"local_df ({local_df}) below published postings "
                f"({len(local_postings)}) for {key_repr(key)}"
            )
        self.network.send_insert(
            source_peer_name,
            key,
            payload_postings=len(local_postings),
            key_repr=key_repr(key),
        )
        return StagedInsert(
            source_peer_name=source_peer_name,
            key=key,
            payload=local_postings,
            local_df=local_df,
        )

    def apply_staged(self, staged: StagedInsert) -> KeyStatus:
        """Application phase of :meth:`insert`: merge the staged payload
        into the global entry at the responsible peer, update the global
        df, truncate NDK lists, and send NDK notifications on a DK->NDK
        transition.  Merge order determines NDK truncation contents,
        transition timing, and notification fan-out, so the parallel
        pipeline serializes calls in the sequential build's order."""
        key = staged.key
        local_postings = staged.payload
        local_df = staged.local_df
        source_id = self.network.id_of(staged.source_peer_name)
        params = self.params
        transition: list[GlobalEntry] = []

        def merge(current: GlobalEntry | None) -> GlobalEntry:
            if current is None:
                merged = local_postings
                contributors = {source_id}
                global_df = local_df
            else:
                merged = current.postings.union(local_postings)
                contributors = current.contributors | {source_id}
                global_df = current.global_df + local_df
            if global_df > params.df_max:
                status = KeyStatus.NON_DISCRIMINATIVE
                stored = merged.truncate_top(
                    params.df_max, params.ndk_truncation
                )
            else:
                status = KeyStatus.DISCRIMINATIVE
                stored = merged
            entry = GlobalEntry(
                key=key,
                postings=stored,
                global_df=global_df,
                status=status,
                contributors=contributors,
            )
            if (
                current is not None
                and current.status is KeyStatus.DISCRIMINATIVE
                and status is KeyStatus.NON_DISCRIMINATIVE
            ):
                transition.append(entry)
            elif current is None and status is KeyStatus.NON_DISCRIMINATIVE:
                transition.append(entry)
            return entry

        # With replication installed the merge runs once per live
        # replica (each produces its own GlobalEntry) and ``origin``
        # tags the op for idempotent redelivery; ``transition`` then
        # collects one entry per replica, but the truthy check and the
        # single notification below are unaffected.
        entry = self.network.apply_insert(key, merge, origin=source_id)
        if transition:
            self._notify_contributors(entry)
            self._transition_log.append(
                (entry.key, frozenset(entry.contributors))
            )
        return entry.status

    def drain_transitions(
        self,
    ) -> list[tuple[frozenset[str], frozenset[int]]]:
        """Return and clear the DK->NDK transitions recorded since the
        last drain: (key, contributor overlay ids at transition time).

        The incremental join protocol consumes these to drive key
        expansion at the contributing peers — the synchronous-simulation
        counterpart of the asynchronous NDK notifications (whose messages
        are already logged by :meth:`insert`).
        """
        drained = self._transition_log
        self._transition_log = []
        return drained

    def _notify_contributors(self, entry: GlobalEntry) -> None:
        """Send an NDK notification to every contributor of ``entry``."""
        responsible = self.network.responsible_peer_for(entry.key)
        for contributor in sorted(entry.contributors):
            self.network.notify(
                responsible, contributor, key_repr=key_repr(entry.key)
            )

    # -- retrieval-side API -----------------------------------------------------------

    def lookup(
        self, source_peer_name: str, key: frozenset[str]
    ) -> GlobalEntry | None:
        """Fetch the global entry for ``key`` (retrieval-phase traffic).

        The response payload counts the stored postings, which is exactly
        the per-key transfer of Figure 6.
        """
        def response_size(value: GlobalEntry | None) -> int:
            return len(value.postings) if value is not None else 0

        return self.network.lookup(
            source_peer_name, key, response_size, key_repr=key_repr(key)
        )

    def status_of(
        self, source_peer_name: str, key: frozenset[str]
    ) -> KeyStatus | None:
        """Fetch only the DK/NDK status (a metadata-sized message).

        Used by peers during key generation to check sub-key statuses they
        did not learn through notifications.
        """
        entry = self.network.lookup(
            source_peer_name,
            key,
            lambda value: 0,  # status responses carry no postings
            key_repr=key_repr(key),
        )
        return entry.status if entry is not None else None

    # -- term statistics directory ------------------------------------------------------

    def publish_term_stats(
        self,
        source_peer_name: str,
        term_frequencies: dict[str, tuple[int, int]],
        num_documents: int,
        total_doc_length: int,
    ) -> None:
        """Publish a peer's local term statistics: term -> (df, cf).

        Aggregated into the global directory; one STATS_PUBLISH message per
        term batch is logged (metadata, zero postings).  Composition of
        :meth:`aggregate_term_stats` (directory mutation) and
        :meth:`send_term_stats` (the message) — the parallel pipeline
        drives the phases separately, paying transmission on shard
        workers and aggregating in deterministic peer order.
        """
        self.aggregate_term_stats(
            term_frequencies, num_documents, total_doc_length
        )
        self.send_term_stats(source_peer_name, term_frequencies)

    def send_term_stats(
        self,
        source_peer_name: str,
        term_frequencies: dict[str, tuple[int, int]],
    ) -> None:
        """Transmission phase of a statistics publication: log/pay the
        STATS_PUBLISH message without touching the directory."""
        if term_frequencies:
            self.network.publish_stats(
                source_peer_name, next(iter(term_frequencies)), postings=0
            )

    def aggregate_term_stats(
        self,
        term_frequencies: dict[str, tuple[int, int]],
        num_documents: int,
        total_doc_length: int,
    ) -> None:
        """Aggregation phase of a statistics publication: fold a peer's
        local statistics into the global directory (no message).  The
        sums are commutative, but the directory's iteration order — and
        therefore snapshot bytes — follows aggregation order, so the
        pipeline aggregates in peer order at any worker count."""
        for term, (df, cf) in term_frequencies.items():
            existing = self._term_stats.get(term)
            if existing is None:
                self._term_stats[term] = TermStats(
                    term=term, document_frequency=df, collection_frequency=cf
                )
            else:
                self._term_stats[term] = TermStats(
                    term=term,
                    document_frequency=existing.document_frequency + df,
                    collection_frequency=(
                        existing.collection_frequency + cf
                    ),
                )
        self._num_documents += num_documents
        self._total_doc_length += total_doc_length

    def term_stats(self, term: str) -> TermStats | None:
        """Global statistics of ``term`` (None when never published)."""
        return self._term_stats.get(term)

    def export_statistics(
        self,
    ) -> tuple[dict[str, TermStats], int, int]:
        """Snapshot the statistics directory:
        ``(term stats, num_documents, total_doc_length)`` — the ranking
        state a persisted index must carry alongside its entries."""
        return dict(self._term_stats), self._num_documents, self._total_doc_length

    def restore_statistics(
        self,
        term_stats: dict[str, TermStats],
        num_documents: int,
        total_doc_length: int,
    ) -> None:
        """Install a previously exported statistics directory (snapshot
        load; replaces, does not aggregate, and logs no traffic)."""
        self._term_stats = dict(term_stats)
        self._num_documents = num_documents
        self._total_doc_length = total_doc_length

    def term_document_frequency(self, term: str) -> int:
        stats = self._term_stats.get(term)
        return stats.document_frequency if stats is not None else 0

    def term_collection_frequency(self, term: str) -> int:
        stats = self._term_stats.get(term)
        return stats.collection_frequency if stats is not None else 0

    def very_frequent_terms(self) -> set[str]:
        """Terms whose global collection frequency exceeds ``F_f`` — the
        collection-dependent stop words excluded from the key vocabulary."""
        ff = self.params.ff
        return {
            term
            for term, stats in self._term_stats.items()
            if stats.collection_frequency > ff
        }

    @property
    def num_documents(self) -> int:
        """Global document count (from published statistics)."""
        return self._num_documents

    @property
    def average_document_length(self) -> float:
        if self._num_documents == 0:
            return 0.0
        return self._total_doc_length / self._num_documents

    # -- inspection (figures) --------------------------------------------------------------

    def stored_postings_total(self) -> int:
        """Total postings stored across all peers (Figure 3 numerator)."""
        return self.network.stored_value_total(
            lambda value: len(value.postings)
            if isinstance(value, GlobalEntry)
            else 0
        )

    def stored_postings_per_peer(self) -> dict[str, int]:
        """Postings stored at each named peer (crashed peers omitted —
        their storage no longer exists)."""
        result: dict[str, int] = {}
        for name in self.network.peer_names():
            peer_id = self.network.id_of(name)
            if not self.network.is_live(peer_id):
                continue
            storage = self.network.storage_by_id(peer_id)
            result[name] = storage.total_value_size(
                lambda value: len(value.postings)
                if isinstance(value, GlobalEntry)
                else 0
            )
        return result

    def key_count(self) -> int:
        """Number of stored key entries network-wide.  With replication
        installed every key is stored at R live replicas, so this counts
        each key up to R times — it measures *storage*, not vocabulary
        (the same way :meth:`stored_postings_total` measures the R-fold
        storage overhead replication pays)."""
        return self.network.stored_entry_count()

    def entries(self) -> list[GlobalEntry]:
        """All stored entries (inspection/tests; order unspecified).
        With replication installed each key appears once per live
        replica — callers that need one entry per key (e.g. the snapshot
        writer) must dedupe by key."""
        found: list[GlobalEntry] = []
        for storage in self.network.storages():
            for stored in storage:
                if isinstance(stored.value, GlobalEntry):
                    found.append(stored.value)
        return found

    def set_phase(self, phase: Phase) -> None:
        """Convenience passthrough to the network's accounting phase."""
        self.network.accounting.set_phase(phase)
