"""Bloom filters over document ids.

The paper's related work ([15] Reynolds & Vahdat, [17] ODISSEA, [20]
Zhang & Suel) optimizes distributed single-term retrieval by shipping a
Bloom filter of one term's posting list instead of the list itself, so
the peer holding the other term can pre-intersect locally.  The paper
argues the approach still scales linearly; the
:mod:`repro.retrieval.single_term_bloom` baseline quantifies that claim.

The filter hashes document ids with ``k`` salted SHA-1 functions into an
``m``-bit array.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

from ..errors import IndexError_

__all__ = ["BloomFilter", "optimal_bits_per_element"]


def optimal_bits_per_element(target_fpr: float) -> float:
    """Bits per element for a target false-positive rate:
    ``m/n = -ln(p) / (ln 2)^2``."""
    if not 0.0 < target_fpr < 1.0:
        raise IndexError_(
            f"target_fpr must be in (0, 1), got {target_fpr}"
        )
    return -math.log(target_fpr) / (math.log(2) ** 2)


class BloomFilter:
    """A fixed-size Bloom filter for integer document ids."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits < 8:
            raise IndexError_(f"num_bits must be >= 8, got {num_bits}")
        if num_hashes < 1:
            raise IndexError_(
                f"num_hashes must be >= 1, got {num_hashes}"
            )
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = 0
        self._count = 0

    @classmethod
    def for_capacity(
        cls, capacity: int, target_fpr: float = 0.01
    ) -> "BloomFilter":
        """Size a filter for ``capacity`` elements at ``target_fpr``."""
        if capacity < 1:
            raise IndexError_(f"capacity must be >= 1, got {capacity}")
        bits = max(8, int(capacity * optimal_bits_per_element(target_fpr)))
        hashes = max(1, round(bits / capacity * math.log(2)))
        return cls(num_bits=bits, num_hashes=hashes)

    def _positions(self, doc_id: int) -> Iterable[int]:
        for seed in range(self.num_hashes):
            digest = hashlib.sha1(
                f"{seed}:{doc_id}".encode("ascii")
            ).digest()
            yield int.from_bytes(digest[:8], "big") % self.num_bits

    def add(self, doc_id: int) -> None:
        """Insert a document id."""
        for position in self._positions(doc_id):
            self._bits |= 1 << position
        self._count += 1

    def add_all(self, doc_ids: Iterable[int]) -> None:
        for doc_id in doc_ids:
            self.add(doc_id)

    def __contains__(self, doc_id: int) -> bool:
        return all(
            self._bits >> position & 1
            for position in self._positions(doc_id)
        )

    def __len__(self) -> int:
        """Number of inserted elements (not the bit size)."""
        return self._count

    @property
    def size_bytes(self) -> int:
        """Wire size of the filter in bytes."""
        return (self.num_bits + 7) // 8

    def posting_equivalents(self, bytes_per_posting: int = 8) -> int:
        """The filter's wire size expressed in postings, the paper's
        traffic unit (a posting is roughly a doc id + tf, ~8 bytes)."""
        if bytes_per_posting < 1:
            raise IndexError_(
                f"bytes_per_posting must be >= 1, got {bytes_per_posting}"
            )
        return max(1, math.ceil(self.size_bytes / bytes_per_posting))

    def expected_fpr(self) -> float:
        """The expected false-positive rate at the current load:
        ``(1 - e^(-kn/m))^k``."""
        if self._count == 0:
            return 0.0
        exponent = -self.num_hashes * self._count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes
