"""A local single-term inverted index.

Used in three places: (1) the centralized BM25 baseline indexes the whole
collection, (2) each peer indexes its local fraction for the distributed
single-term baseline, and (3) HDK generation reads local term statistics
from it.
"""

from __future__ import annotations

from typing import Iterator

from ..corpus.collection import DocumentCollection
from ..errors import IndexError_
from .postings import Posting, PostingList

__all__ = ["LocalInvertedIndex"]


class LocalInvertedIndex:
    """term -> posting list over one document collection."""

    def __init__(self, collection: DocumentCollection) -> None:
        self._collection = collection
        self._lists: dict[str, PostingList] = {}
        self._collection_frequency: dict[str, int] = {}
        self._build()

    def _build(self) -> None:
        accumulator: dict[str, list[Posting]] = {}
        cf: dict[str, int] = {}
        for doc in self._collection:
            doc_len = len(doc)
            for term, tf in doc.term_frequencies().items():
                accumulator.setdefault(term, []).append(
                    Posting(doc_id=doc.doc_id, tf=tf, doc_len=doc_len)
                )
                cf[term] = cf.get(term, 0) + tf
        self._lists = {
            term: PostingList(postings)
            for term, postings in accumulator.items()
        }
        self._collection_frequency = cf

    # -- access -------------------------------------------------------------------

    @property
    def collection(self) -> DocumentCollection:
        return self._collection

    def __len__(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._lists)

    def __contains__(self, term: str) -> bool:
        return term in self._lists

    def terms(self) -> Iterator[str]:
        """Iterate over the indexed terms."""
        return iter(self._lists)

    def posting_list(self, term: str) -> PostingList:
        """The posting list of ``term``.

        Raises:
            IndexError_: for unknown terms (use ``in`` to probe).
        """
        try:
            return self._lists[term]
        except KeyError:
            raise IndexError_(f"term {term!r} not in index") from None

    def document_frequency(self, term: str) -> int:
        """``df(term)`` — 0 for unknown terms."""
        posting_list = self._lists.get(term)
        return len(posting_list) if posting_list is not None else 0

    def collection_frequency(self, term: str) -> int:
        """``cf(term)`` — total occurrences, 0 for unknown terms."""
        return self._collection_frequency.get(term, 0)

    def total_postings(self) -> int:
        """Size of the index in postings (the single-term baseline's
        storage cost, Figure 3's "ST" line)."""
        return sum(len(pl) for pl in self._lists.values())

    def average_document_length(self) -> float:
        """BM25's ``avgdl`` over the indexed collection."""
        return self._collection.average_document_length

    def num_documents(self) -> int:
        """Number of indexed documents (BM25's ``N``)."""
        return len(self._collection)
