"""Wire encoding of posting lists: delta + varint.

The paper counts traffic in postings; real deployments count bytes.  This
codec provides the conventional compressed representation — document-id
deltas and term frequencies as LEB128 varints — so experiments can also
report byte-level traffic, and tests can assert round-trip fidelity.
"""

from __future__ import annotations

from ..errors import IndexError_
from .postings import Posting, PostingList

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_posting_list",
    "decode_posting_list",
    "posting_list_wire_size",
]


def encode_varint(value: int, out: bytearray) -> None:
    """Append the LEB128 encoding of a non-negative integer to ``out``."""
    if value < 0:
        raise IndexError_(f"varint requires value >= 0, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one LEB128 varint at ``offset``; returns (value, new offset).

    Raises:
        IndexError_: on truncated input.
    """
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise IndexError_("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise IndexError_("varint too long (corrupt stream?)")


def encode_posting_list(postings: PostingList) -> bytes:
    """Encode a posting list: count, then per posting the doc-id delta,
    tf, doc_len, term-tf count and term tfs."""
    out = bytearray()
    encode_varint(len(postings), out)
    previous_doc_id = 0
    for posting in postings:
        encode_varint(posting.doc_id - previous_doc_id, out)
        previous_doc_id = posting.doc_id
        encode_varint(posting.tf, out)
        encode_varint(posting.doc_len, out)
        encode_varint(len(posting.term_tfs), out)
        for tf in posting.term_tfs:
            encode_varint(tf, out)
    return bytes(out)


def posting_list_wire_size(postings: PostingList) -> int:
    """Wire size of a posting list in bytes under this codec.

    The paper accounts traffic in postings; deployments account bytes.
    This helper converts stored lists into the byte-level view without
    keeping the encoded form around.
    """
    return len(encode_posting_list(postings))


def decode_posting_list(data: bytes) -> PostingList:
    """Decode the output of :func:`encode_posting_list`.

    Raises:
        IndexError_: on truncated or trailing data.
    """
    count, offset = decode_varint(data, 0)
    postings = []
    doc_id = 0
    for _ in range(count):
        delta, offset = decode_varint(data, offset)
        doc_id += delta
        tf, offset = decode_varint(data, offset)
        doc_len, offset = decode_varint(data, offset)
        n_terms, offset = decode_varint(data, offset)
        term_tfs = []
        for _ in range(n_terms):
            term_tf, offset = decode_varint(data, offset)
            term_tfs.append(term_tf)
        postings.append(
            Posting(
                doc_id=doc_id,
                tf=tf,
                term_tfs=tuple(term_tfs),
                doc_len=doc_len,
            )
        )
    if offset != len(data):
        raise IndexError_(
            f"trailing bytes after posting list: {len(data) - offset}"
        )
    return PostingList(postings)
