"""Text-processing substrate: tokenization, stop words, stemming, windows.

The paper pre-processes every document by removing 250 common English stop
words, applying the Porter stemmer, and then removing additional very
frequent terms (Section 5, "Experimental setup").  This package implements
that pipeline from scratch:

- :mod:`repro.text.tokenizer` — a deterministic word tokenizer,
- :mod:`repro.text.stopwords` — the embedded 250-word stop list,
- :mod:`repro.text.porter` — the Porter (1980) stemming algorithm,
- :mod:`repro.text.windows` — sliding proximity windows (Definition 2),
- :mod:`repro.text.pipeline` — the composed :class:`TextPipeline`,
- :mod:`repro.text.vocabulary` — term <-> id interning.
"""

from .pipeline import PipelineConfig, TextPipeline
from .porter import PorterStemmer, stem
from .stopwords import STOPWORDS, is_stopword
from .tokenizer import Tokenizer, tokenize
from .vocabulary import Vocabulary
from .windows import iter_window_sets, iter_windows

__all__ = [
    "PipelineConfig",
    "TextPipeline",
    "PorterStemmer",
    "stem",
    "STOPWORDS",
    "is_stopword",
    "Tokenizer",
    "tokenize",
    "Vocabulary",
    "iter_window_sets",
    "iter_windows",
]
