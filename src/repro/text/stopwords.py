"""The embedded stop-word list.

The paper's experimental setup removes "250 common English stop words"
before stemming.  This module embeds exactly 250 high-frequency English
words (articles, pronouns, prepositions, auxiliaries, and other very
common words), frequency-curated so that the essential function words
("the", "of", "and", ...) are all present, with no external data file.
"""

from __future__ import annotations

__all__ = ["STOPWORDS", "is_stopword"]

#: Exactly 250 common English stop words.
STOPWORDS: frozenset[str] = frozenset(
    """
    a about after again against all almost also always an and
    another any are around as asked at away back be because been
    before being better between both business but by called came can
    case city come could course day did didn do does don down during
    each early end enough even every eyes face fact far felt few
    find first for form found four from general get give given go
    going good got government great group had half hand has have
    having he head her here high him himself his home house how
    however i if in into is it its just keep kind knew know large
    last later left less life light like line little long look
    looked made make man many may me men might mind moment money
    more most mr mrs much must my name need never new next night no
    not nothing now number of off often old on once one only open or
    order other others our out over own part people per perhaps
    place point public put right said same say school see set she
    should since small so some something state states still such
    system take than the their them then there these they think this
    those though thought three through time to told too took two
    under united until up upon us use used very war was water way we
    well went were what when where which while who why will with
    without work world would year years yet you your
    """.split()
)

# The paper's setup promises exactly 250 distinct stop words; assert that
# contract at import time so an accidental edit cannot silently change the
# pipeline behaviour.
if len(STOPWORDS) != 250:  # pragma: no cover - import-time guard
    raise AssertionError(
        f"stop-word list must contain exactly 250 words, "
        f"got {len(STOPWORDS)}"
    )


def is_stopword(token: str) -> bool:
    """Return True iff ``token`` (already lower-cased) is a stop word."""
    return token in STOPWORDS
