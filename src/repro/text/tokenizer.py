"""Word tokenization.

The prototype described in the paper indexes plain-text documents; this
module provides a small deterministic tokenizer adequate for both the
synthetic corpus and real text files: lower-casing, splitting on
non-alphanumeric characters, and dropping pure numbers or over-long tokens
(both behaviours configurable).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Tokenizer", "tokenize"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


@dataclass(frozen=True)
class Tokenizer:
    """A configurable word tokenizer.

    Attributes:
        lowercase: lower-case the input before splitting (default True).
        keep_numbers: keep tokens made only of digits (default False; the
            paper's Wikipedia pre-processing drops them as noise).
        min_length: drop tokens shorter than this many characters.
        max_length: drop tokens longer than this many characters (guards the
            vocabulary against markup artifacts).
    """

    lowercase: bool = True
    keep_numbers: bool = False
    min_length: int = 2
    max_length: int = 40

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield tokens of ``text`` in document order."""
        if self.lowercase:
            text = text.lower()
        for match in _TOKEN_RE.finditer(text):
            token = match.group()
            if len(token) < self.min_length or len(token) > self.max_length:
                continue
            if not self.keep_numbers and token.isdigit():
                continue
            yield token

    def tokenize(self, text: str) -> list[str]:
        """Return the tokens of ``text`` as a list, in document order."""
        return list(self.iter_tokens(text))


#: Module-level default tokenizer used by :func:`tokenize`.
_DEFAULT = Tokenizer()


def tokenize(text: str) -> list[str]:
    """Tokenize ``text`` with the default :class:`Tokenizer` settings."""
    return _DEFAULT.tokenize(text)
