"""The composed text-processing pipeline.

Reproduces the paper's pre-processing (Section 5): tokenize, remove the 250
common English stop words, apply the Porter stemmer.  Removal of additional
*very frequent* terms (the ``F_f`` cut-off) is collection-dependent and
happens later, during HDK generation, because it requires global collection
frequencies; the pipeline is purely local to one document.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .porter import PorterStemmer
from .stopwords import STOPWORDS
from .tokenizer import Tokenizer

__all__ = ["PipelineConfig", "TextPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of a :class:`TextPipeline`.

    Attributes:
        remove_stopwords: drop the embedded 250-word stop list.
        apply_stemming: apply the Porter stemmer to surviving tokens.
        extra_stopwords: additional words dropped *before* stemming (lets an
            experiment emulate collection-specific stop lists).
        tokenizer: the tokenizer to use.
    """

    remove_stopwords: bool = True
    apply_stemming: bool = True
    extra_stopwords: frozenset[str] = frozenset()
    tokenizer: Tokenizer = field(default_factory=Tokenizer)


class TextPipeline:
    """Tokenize -> stop-word removal -> Porter stemming.

    The pipeline memoizes stems (the stemmer is deterministic and the
    vocabulary is Zipf-distributed, so caching saves most of the work on
    realistic corpora).
    """

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        self._stemmer = PorterStemmer()
        self._stem_cache: dict[str, str] = {}

    def process(self, text: str) -> list[str]:
        """Return the processed token sequence of ``text``, in order.

        Token order is preserved because proximity filtering (windowing)
        operates on the processed sequence.
        """
        config = self.config
        tokens = config.tokenizer.iter_tokens(text)
        output: list[str] = []
        cache = self._stem_cache
        for token in tokens:
            if config.remove_stopwords and token in STOPWORDS:
                continue
            if token in config.extra_stopwords:
                continue
            if config.apply_stemming:
                stemmed = cache.get(token)
                if stemmed is None:
                    stemmed = self._stemmer.stem(token)
                    cache[token] = stemmed
                token = stemmed
            output.append(token)
        return output

    def process_pretokenized(self, tokens: list[str]) -> list[str]:
        """Apply stop-word removal and stemming to an existing token list.

        Used by the synthetic corpus, whose generator emits tokens directly.
        """
        config = self.config
        cache = self._stem_cache
        output: list[str] = []
        for token in tokens:
            if config.remove_stopwords and token in STOPWORDS:
                continue
            if token in config.extra_stopwords:
                continue
            if config.apply_stemming:
                stemmed = cache.get(token)
                if stemmed is None:
                    stemmed = self._stemmer.stem(token)
                    cache[token] = stemmed
                token = stemmed
            output.append(token)
        return output
