"""The Porter stemming algorithm (Porter, 1980), implemented from scratch.

The paper's pre-processing applies the Porter stemmer after stop-word
removal.  This is a faithful implementation of the five-step algorithm as
published in "An algorithm for suffix stripping", *Program* 14(3):130-137,
including the m-measure, the *v*/*d*/*o* conditions, and the full rule
tables of steps 1a through 5b.

Usage::

    >>> from repro.text.porter import stem
    >>> stem("relational")
    'relat'
    >>> stem("conditional")
    'condit'
"""

from __future__ import annotations

__all__ = ["PorterStemmer", "stem"]

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter (1980) stemmer.

    The class form exists so callers can share one instance (there is no
    per-call state; ``stem`` is reentrant) and so alternative stemmers can
    be swapped in behind the same interface.
    """

    # ------------------------------------------------------------------
    # Conditions on stems, written in terms of the word's letters.
    # ------------------------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        """Return True iff ``word[i]`` is a consonant in Porter's sense.

        'y' is a consonant when it is the first letter or follows a vowel
        position that is itself a consonant.
        """
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            if i == 0:
                return True
            return not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem_: str) -> int:
        """Return m, the number of VC (vowel-consonant) sequences in
        ``stem_`` when written as [C](VC)^m[V]."""
        m = 0
        previous_was_vowel = False
        for i in range(len(stem_)):
            consonant = cls._is_consonant(stem_, i)
            if consonant and previous_was_vowel:
                m += 1
            previous_was_vowel = not consonant
        return m

    @classmethod
    def _contains_vowel(cls, stem_: str) -> bool:
        """Condition *v*: the stem contains a vowel."""
        return any(not cls._is_consonant(stem_, i) for i in range(len(stem_)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        """Condition *d*: the word ends with a double consonant."""
        if len(word) < 2 or word[-1] != word[-2]:
            return False
        return cls._is_consonant(word, len(word) - 1)

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """Condition *o*: the word ends consonant-vowel-consonant where the
        final consonant is not w, x, or y."""
        if len(word) < 3:
            return False
        if not cls._is_consonant(word, len(word) - 3):
            return False
        if cls._is_consonant(word, len(word) - 2):
            return False
        if not cls._is_consonant(word, len(word) - 1):
            return False
        return word[-1] not in "wxy"

    # ------------------------------------------------------------------
    # Rule application helpers.
    # ------------------------------------------------------------------

    @classmethod
    def _replace_if_m(
        cls, word: str, suffix: str, replacement: str, min_m: int
    ) -> str | None:
        """If ``word`` ends with ``suffix`` and the remaining stem has
        measure > ``min_m``, return the stem + ``replacement``; else None."""
        if not word.endswith(suffix):
            return None
        stem_ = word[: len(word) - len(suffix)]
        if cls._measure(stem_) > min_m:
            return stem_ + replacement
        return word  # suffix matched but condition failed: rule consumed

    # ------------------------------------------------------------------
    # The five steps.
    # ------------------------------------------------------------------

    @classmethod
    def _step1a(cls, word: str) -> str:
        """SSES -> SS, IES -> I, SS -> SS, S -> (empty)."""
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    @classmethod
    def _step1b(cls, word: str) -> str:
        """(m>0) EED -> EE; (*v*) ED/ING -> (empty), with cleanup."""
        if word.endswith("eed"):
            stem_ = word[:-3]
            if cls._measure(stem_) > 0:
                return word[:-1]
            return word
        cleanup = False
        if word.endswith("ed") and cls._contains_vowel(word[:-2]):
            word = word[:-2]
            cleanup = True
        elif word.endswith("ing") and cls._contains_vowel(word[:-3]):
            word = word[:-3]
            cleanup = True
        if cleanup:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if cls._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if cls._measure(word) == 1 and cls._ends_cvc(word):
                return word + "e"
        return word

    @classmethod
    def _step1c(cls, word: str) -> str:
        """(*v*) Y -> I."""
        if word.endswith("y") and cls._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    # Rule tables: (suffix, replacement) applied when stem measure > 0
    # (step 2/3) and > 1 (step 4, with replacement always "").
    _STEP2_RULES: tuple[tuple[str, str], ...] = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    _STEP3_RULES: tuple[tuple[str, str], ...] = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    _STEP4_SUFFIXES: tuple[str, ...] = (
        "al",
        "ance",
        "ence",
        "er",
        "ic",
        "able",
        "ible",
        "ant",
        "ement",
        "ment",
        "ent",
        "ou",
        "ism",
        "ate",
        "iti",
        "ous",
        "ive",
        "ize",
    )

    @classmethod
    def _apply_rule_table(
        cls, word: str, rules: tuple[tuple[str, str], ...], min_m: int
    ) -> str:
        """Apply the first matching (suffix, replacement) rule of ``rules``.

        Porter's algorithm takes the longest-match rule within a step; the
        tables above are consulted in order and only the first suffix that
        matches the word is considered, so the tables are ordered with
        longer/more specific suffixes ahead of their substrings where it
        matters (e.g. ``ational`` before ``ation`` is not needed because
        they belong to the same table entry ordering used by Porter).
        """
        for suffix, replacement in rules:
            if word.endswith(suffix):
                result = cls._replace_if_m(word, suffix, replacement, min_m)
                assert result is not None
                return result
        return word

    @classmethod
    def _step2(cls, word: str) -> str:
        return cls._apply_rule_table(word, cls._STEP2_RULES, 0)

    @classmethod
    def _step3(cls, word: str) -> str:
        return cls._apply_rule_table(word, cls._STEP3_RULES, 0)

    @classmethod
    def _step4(cls, word: str) -> str:
        """(m>1) strip the residual suffix; ION only after S or T."""
        for suffix in cls._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem_ = word[: len(word) - len(suffix)]
                if cls._measure(stem_) > 1:
                    return stem_
                return word
        if word.endswith("ion"):
            stem_ = word[:-3]
            if stem_ and stem_[-1] in "st" and cls._measure(stem_) > 1:
                return stem_
        return word

    @classmethod
    def _step5a(cls, word: str) -> str:
        """(m>1) E -> (empty); (m=1 and not *o*) E -> (empty)."""
        if word.endswith("e"):
            stem_ = word[:-1]
            m = cls._measure(stem_)
            if m > 1:
                return stem_
            if m == 1 and not cls._ends_cvc(stem_):
                return stem_
        return word

    @classmethod
    def _step5b(cls, word: str) -> str:
        """(m>1 and *d* and *L*) single letter: controll -> control."""
        if (
            word.endswith("l")
            and cls._ends_double_consonant(word)
            and cls._measure(word) > 1
        ):
            return word[:-1]
        return word

    # ------------------------------------------------------------------
    # Public interface.
    # ------------------------------------------------------------------

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (expected lower-case).

        Words of one or two letters are returned unchanged, as in Porter's
        reference implementation.
        """
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word


#: Shared stemmer instance backing the module-level :func:`stem`.
_STEMMER = PorterStemmer()


def stem(word: str) -> str:
    """Stem ``word`` with the shared :class:`PorterStemmer` instance."""
    return _STEMMER.stem(word)
