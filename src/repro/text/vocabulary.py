"""Term interning: a bidirectional term <-> integer-id mapping.

Indexing structures throughout the library store term ids instead of
strings; one shared :class:`Vocabulary` per collection keeps memory bounded
and makes term-set (key) hashing cheap.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Vocabulary"]


class Vocabulary:
    """A grow-only mapping between terms and dense integer ids."""

    def __init__(self, terms: Iterable[str] = ()) -> None:
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []
        for term in terms:
            self.add(term)

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def add(self, term: str) -> int:
        """Intern ``term`` and return its id (existing id if present)."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        term_id = len(self._id_to_term)
        self._term_to_id[term] = term_id
        self._id_to_term.append(term)
        return term_id

    def add_all(self, terms: Iterable[str]) -> list[int]:
        """Intern every term of ``terms``, returning their ids in order."""
        return [self.add(term) for term in terms]

    def id_of(self, term: str) -> int:
        """Return the id of ``term``.

        Raises:
            KeyError: if the term has never been interned.
        """
        return self._term_to_id[term]

    def get_id(self, term: str) -> int | None:
        """Return the id of ``term``, or None when absent."""
        return self._term_to_id.get(term)

    def term_of(self, term_id: int) -> str:
        """Return the term with id ``term_id``.

        Raises:
            IndexError: if no such id has been assigned.
        """
        return self._id_to_term[term_id]

    def terms(self) -> list[str]:
        """Return all interned terms in id order (a copy)."""
        return list(self._id_to_term)
