"""Sliding proximity windows (the paper's Definition 2).

Proximity filtering keeps only keys whose terms all occur inside at least
one document window of ``w`` consecutive token positions.  These helpers
enumerate the windows of a token sequence and the distinct term sets they
give rise to.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..utils import sliding_windows

__all__ = ["iter_windows", "iter_window_sets", "cooccurring_term_sets"]


def iter_windows(tokens: Sequence[str], size: int) -> Iterator[Sequence[str]]:
    """Yield every window of ``size`` consecutive tokens.

    Documents shorter than ``size`` yield themselves once, matching the
    model's treatment of short documents as a single textual context.
    """
    return sliding_windows(tokens, size)


def iter_window_sets(
    tokens: Sequence[str], size: int
) -> Iterator[frozenset[str]]:
    """Yield the *distinct-term* set of each window, in document order.

    Consecutive windows usually share most terms; callers that need unique
    sets should deduplicate (see :func:`cooccurring_term_sets`).
    """
    for window in iter_windows(tokens, size):
        yield frozenset(window)


def cooccurring_term_sets(
    tokens: Sequence[str],
    window_size: int,
    set_size: int,
    allowed_terms: frozenset[str] | None = None,
) -> set[frozenset[str]]:
    """Return every distinct term set of exactly ``set_size`` terms whose
    members co-occur in at least one window of ``window_size`` tokens.

    Args:
        tokens: the pre-processed document tokens, in order.
        window_size: the proximity window ``w``.
        set_size: the key size ``s`` to enumerate.
        allowed_terms: if given, only terms in this set participate
            (used to restrict enumeration to non-discriminative terms
            during HDK generation).

    This is the reference (exhaustive) enumeration used by tests and by the
    generator at small ``s``; it deduplicates across overlapping windows.
    """
    if set_size < 1:
        raise ValueError(f"set_size must be >= 1, got {set_size}")
    result: set[frozenset[str]] = set()
    seen_windows: set[frozenset[str]] = set()
    for window in iter_windows(tokens, window_size):
        if allowed_terms is None:
            distinct = frozenset(window)
        else:
            distinct = frozenset(t for t in window if t in allowed_terms)
        if len(distinct) < set_size or distinct in seen_windows:
            continue
        seen_windows.add(distinct)
        for combo in itertools.combinations(sorted(distinct), set_size):
            result.add(frozenset(combo))
    return result
