"""repro — reproduction of "Scalable Peer-to-Peer Web Retrieval with
Highly Discriminative Keys" (Podnar, Rajman, Luu, Klemm, Aberer;
ICDE 2007).

The package implements the paper's HDK indexing/retrieval model and every
substrate it runs on: the text pipeline, a synthetic Wikipedia-like corpus
and query log, the structured P2P overlay simulators (Chord ring and
P-Grid trie) with posting-level traffic accounting, the distributed global
key index, the HDK generator, the retrieval engines (HDK, distributed
single-term, centralized BM25), and the Section-4 scalability analysis.

Quickstart::

    from repro import HDKParameters, P2PSearchEngine
    from repro.corpus import SyntheticCorpusGenerator

    collection = SyntheticCorpusGenerator(seed=1).generate(600)
    params = HDKParameters(df_max=12, window_size=8, s_max=3, ff=4_000)
    engine = P2PSearchEngine.build(collection, num_peers=8, params=params)
    engine.index()
    result = engine.search("t00042 t00137")
    for ranked in result.results[:10]:
        print(ranked.doc_id, f"{ranked.score:.3f}")
"""

from .config import (
    ExperimentParameters,
    HDKParameters,
    PAPER_PARAMETERS,
    SMALL_SCALE_PARAMETERS,
)
from .engine.experiment import GrowthExperiment, GrowthStepResult
from .engine.p2p_engine import EngineMode, P2PSearchEngine
from .errors import (
    AnalysisError,
    ConfigurationError,
    CorpusError,
    KeyGenerationError,
    NetworkError,
    ReproError,
    RetrievalError,
)

__version__ = "1.0.0"

__all__ = [
    "ExperimentParameters",
    "HDKParameters",
    "PAPER_PARAMETERS",
    "SMALL_SCALE_PARAMETERS",
    "GrowthExperiment",
    "GrowthStepResult",
    "EngineMode",
    "P2PSearchEngine",
    "AnalysisError",
    "ConfigurationError",
    "CorpusError",
    "KeyGenerationError",
    "NetworkError",
    "ReproError",
    "RetrievalError",
    "__version__",
]
