"""repro — reproduction of "Scalable Peer-to-Peer Web Retrieval with
Highly Discriminative Keys" (Podnar, Rajman, Luu, Klemm, Aberer;
ICDE 2007).

The package implements the paper's HDK indexing/retrieval model and every
substrate it runs on: the text pipeline, a synthetic Wikipedia-like corpus
and query log, the structured P2P overlay simulators (Chord ring and
P-Grid trie) with posting-level traffic accounting, the distributed global
key index, the HDK generator, and the Section-4 scalability analysis.

Retrieval is organized around a pluggable backend seam: the
:class:`repro.engine.backends.RetrievalBackend` protocol with a
string-keyed registry (``hdk``, ``hdk_disk``, ``single_term``,
``single_term_bloom``, ``topk``, ``centralized``), fronted by
:class:`SearchService` — the facade owning the query pipeline, an LRU
result cache, and traffic accounting, with single, batch (optionally
thread-parallel), and query-log search surfaces, plus ``save``/``load``
snapshots backed by the :mod:`repro.store` segmented disk store.  The
legacy :class:`P2PSearchEngine` remains as a thin shim over it.

Every tier is observable through :mod:`repro.obs`: a contextvars-based
:class:`Tracer` follows a query from the HTTP gateway through the
worker pool, the service, each overlay hop, and the disk store (one
span per hop the traffic accounting charges), and a process-wide
:class:`MetricsHub` unifies counters, gauges, and mergeable latency
histograms.  Tracing is off by default and costs nothing when off.

Quickstart::

    from repro import HDKParameters, SearchService
    from repro.corpus import SyntheticCorpusGenerator

    collection = SyntheticCorpusGenerator(seed=1).generate(600)
    params = HDKParameters(df_max=12, window_size=8, s_max=3, ff=4_000)
    service = SearchService.build(
        collection, num_peers=8, backend="hdk", params=params)
    service.index()
    response = service.search("t00042 t00137", k=10)
    for ranked in response.results:
        print(ranked.doc_id, f"{ranked.score:.3f}")
    report = service.search_batch(["t00042 t00137", "t00003 t00104"])
    print(report.total_postings_transferred, report.cache_hit_rate)
"""

from .config import (
    ExperimentParameters,
    HDKParameters,
    PAPER_PARAMETERS,
    SMALL_SCALE_PARAMETERS,
)
from .engine.backends import (
    BackendContext,
    BackendRegistry,
    RetrievalBackend,
    SearchResponse,
    registry,
)
from .engine.experiment import GrowthExperiment, GrowthStepResult
from .engine.p2p_engine import EngineMode, P2PSearchEngine
from .engine.service import BatchSearchReport, SearchService
from .errors import (
    AnalysisError,
    ConfigurationError,
    CorpusError,
    KeyGenerationError,
    NetworkError,
    ReproError,
    RetrievalError,
    StoreError,
)
from .indexing import IndexingPipeline
from .obs import (
    LatencyHistogram,
    MetricsHub,
    Tracer,
    get_hub,
    get_tracer,
    set_global_tracer,
)
from .overlay import HierarchicalRouter, SuperPeerTopology
from .replication import (
    AntiEntropyRepairer,
    MerkleTree,
    RepairReport,
    ReplicaFailoverRouter,
    ReplicaPlacement,
    ReplicationManager,
    VersionVector,
)
from .store import SegmentStore, SpillingGlobalKeyIndex

__version__ = "1.7.0"

__all__ = [
    "ExperimentParameters",
    "HDKParameters",
    "PAPER_PARAMETERS",
    "SMALL_SCALE_PARAMETERS",
    "BackendContext",
    "BackendRegistry",
    "BatchSearchReport",
    "GrowthExperiment",
    "GrowthStepResult",
    "EngineMode",
    "HierarchicalRouter",
    "IndexingPipeline",
    "LatencyHistogram",
    "MetricsHub",
    "P2PSearchEngine",
    "Tracer",
    "get_hub",
    "get_tracer",
    "set_global_tracer",
    "RetrievalBackend",
    "AntiEntropyRepairer",
    "MerkleTree",
    "RepairReport",
    "ReplicaFailoverRouter",
    "ReplicaPlacement",
    "ReplicationManager",
    "VersionVector",
    "SuperPeerTopology",
    "SearchResponse",
    "SearchService",
    "SegmentStore",
    "SpillingGlobalKeyIndex",
    "StoreError",
    "registry",
    "AnalysisError",
    "ConfigurationError",
    "CorpusError",
    "KeyGenerationError",
    "NetworkError",
    "ReproError",
    "RetrievalError",
    "__version__",
]
