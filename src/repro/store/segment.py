"""Append-only segment files for the disk-backed key-index store.

A segment is a flat file of key→posting-list records:

- a 5-byte header (``RSEG`` + format version);
- records, back to back, each laid out as::

      [body_len varint][body][crc32(body), 4 bytes little-endian]

  where the body is the varint/delta encoding of one record: the key's
  canonical UTF-8 form, the entry metadata (global df, DK/NDK status,
  contributor overlay ids), and the posting-list payload produced by
  :func:`repro.index.codec.encode_posting_list`.

The layout is crash-safe by construction: a process killed mid-append
leaves a truncated or checksum-failing *tail*, and :func:`scan_segment`
detects it and returns only the valid record prefix — a torn write can
never be decoded as garbage postings.  Records for the same key are
superseded by later ones (last write wins across segments in id order);
tombstone records mark deletions until compaction drops them.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator

from ..errors import StoreError
from ..index.codec import (
    decode_posting_list,
    decode_varint,
    encode_posting_list,
    encode_varint,
)
from ..index.postings import PostingList
from ..net.node_id import canonical_term_set

__all__ = [
    "MAGIC",
    "STATUS_DK",
    "STATUS_NDK",
    "STATUS_TOMBSTONE",
    "SegmentRecord",
    "SegmentScan",
    "SegmentWriter",
    "decode_record_body",
    "encode_record",
    "encode_record_body",
    "framed_length",
    "fsync_dir",
    "fsync_file",
    "key_from_canonical",
    "key_to_canonical",
    "read_record_at",
    "read_record_pread",
    "scan_segment",
]


def fsync_file(path: Path) -> None:
    """fsync an already-written file by path."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path) -> None:
    """Flush a directory's entries — makes renames/creates/unlinks in it
    durable (best effort: some platforms reject fsync on directory
    descriptors)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)

#: Segment file header: magic + one format-version byte.
MAGIC = b"RSEG\x01"

#: Status codes stored in record bodies (mirrors
#: :class:`repro.index.global_index.KeyStatus`, plus deletion markers).
STATUS_DK = 0
STATUS_NDK = 1
STATUS_TOMBSTONE = 2

_CRC_BYTES = 4
#: A varint never exceeds 10 bytes for the 63-bit values the codec allows.
_MAX_VARINT_BYTES = 10


def key_to_canonical(key: frozenset[str]) -> bytes:
    """Canonical byte form of a term-set key — the UTF-8 encoding of the
    same canonical string the network hashes into the id space (one
    shared rule in :func:`repro.net.node_id.canonical_term_set`)."""
    return canonical_term_set(key).encode("utf-8")


def key_from_canonical(data: bytes) -> frozenset[str]:
    """Inverse of :func:`key_to_canonical`."""
    return frozenset(data.decode("utf-8").split("\x1f"))


@dataclass(frozen=True)
class SegmentRecord:
    """One decoded segment record.

    Attributes:
        key: the term-set key.
        global_df: the entry's true global document frequency.
        status_code: ``STATUS_DK`` / ``STATUS_NDK`` / ``STATUS_TOMBSTONE``.
        contributors: overlay ids of the peers that inserted the key.
        payload: the encoded posting list (empty for tombstones).
    """

    key: frozenset[str]
    global_df: int
    status_code: int
    contributors: tuple[int, ...]
    payload: bytes

    def __post_init__(self) -> None:
        # Canonical contributor order: the codec delta-encodes them
        # ascending, so round-tripped records compare equal.
        object.__setattr__(
            self, "contributors", tuple(sorted(self.contributors))
        )

    @property
    def is_tombstone(self) -> bool:
        return self.status_code == STATUS_TOMBSTONE

    def posting_count(self) -> int:
        """Number of postings in the payload, read from its count prefix
        without decoding the list."""
        if not self.payload:
            return 0
        count, _ = decode_varint(self.payload, 0)
        return count

    def postings(self) -> PostingList:
        """Decode the payload into a :class:`PostingList`."""
        if not self.payload:
            return PostingList()
        return decode_posting_list(self.payload)

    @classmethod
    def from_postings(
        cls,
        key: frozenset[str],
        postings: PostingList,
        global_df: int,
        status_code: int,
        contributors: tuple[int, ...] = (),
    ) -> "SegmentRecord":
        return cls(
            key=key,
            global_df=global_df,
            status_code=status_code,
            contributors=contributors,
            payload=encode_posting_list(postings),
        )

    @classmethod
    def tombstone(cls, key: frozenset[str]) -> "SegmentRecord":
        return cls(
            key=key,
            global_df=0,
            status_code=STATUS_TOMBSTONE,
            contributors=(),
            payload=b"",
        )


def _encode_body(record: SegmentRecord) -> bytes:
    body = bytearray()
    key_bytes = key_to_canonical(record.key)
    encode_varint(len(key_bytes), body)
    body.extend(key_bytes)
    encode_varint(record.global_df, body)
    if record.status_code not in (STATUS_DK, STATUS_NDK, STATUS_TOMBSTONE):
        raise StoreError(f"unknown status code {record.status_code}")
    body.append(record.status_code)
    contributors = record.contributors  # sorted by __post_init__
    encode_varint(len(contributors), body)
    previous = 0
    for contributor in contributors:
        encode_varint(contributor - previous, body)
        previous = contributor
    encode_varint(len(record.payload), body)
    body.extend(record.payload)
    return bytes(body)


def decode_record_body(body: bytes) -> SegmentRecord:
    """Decode one record body (the checksummed span of a record).

    Raises:
        StoreError: on malformed bodies.
    """
    try:
        key_len, offset = decode_varint(body, 0)
        if offset + key_len > len(body):
            raise StoreError("record key overruns body")
        key = key_from_canonical(body[offset : offset + key_len])
        offset += key_len
        global_df, offset = decode_varint(body, offset)
        if offset >= len(body):
            raise StoreError("record body missing status byte")
        status_code = body[offset]
        offset += 1
        n_contributors, offset = decode_varint(body, offset)
        contributors = []
        previous = 0
        for _ in range(n_contributors):
            delta, offset = decode_varint(body, offset)
            previous += delta
            contributors.append(previous)
        payload_len, offset = decode_varint(body, offset)
        if offset + payload_len != len(body):
            raise StoreError("record payload length mismatch")
        payload = body[offset : offset + payload_len]
    except StoreError:
        raise
    except Exception as exc:  # truncated varints raise IndexError_
        raise StoreError(f"malformed record body: {exc}") from exc
    if status_code not in (STATUS_DK, STATUS_NDK, STATUS_TOMBSTONE):
        raise StoreError(f"unknown status code {status_code}")
    return SegmentRecord(
        key=key,
        global_df=global_df,
        status_code=status_code,
        contributors=tuple(contributors),
        payload=payload,
    )


def encode_record_body(record: SegmentRecord) -> bytes:
    """Encode just the checksummed span of a record (no frame).  The
    WAL frames the same bodies under its own log, so one encoder serves
    both files and replayed records decode with the segment decoder."""
    return _encode_body(record)


def framed_length(body_len: int) -> int:
    """On-disk size of a record whose body is ``body_len`` bytes long
    (length prefix + body + crc trailer), without encoding anything."""
    prefix = bytearray()
    encode_varint(body_len, prefix)
    return len(prefix) + body_len + _CRC_BYTES


def encode_record(record: SegmentRecord) -> bytes:
    """Full on-disk form: length prefix, body, crc32 trailer."""
    body = _encode_body(record)
    out = bytearray()
    encode_varint(len(body), out)
    out.extend(body)
    out.extend(zlib.crc32(body).to_bytes(_CRC_BYTES, "little"))
    return bytes(out)


class SegmentWriter:
    """Appends records to one segment file.

    Creates the file with its header when absent; appending to an
    existing segment resumes at its current end (the store only does this
    for the active segment it itself wrote).

    Args:
        path: the segment file.
        sync: fsync on :meth:`close` — the durability knob.  The format
            is crash-safe either way (a torn tail is detected and
            skipped on reopen); syncing additionally guarantees that
            once a segment is *closed* — rollover, store close, snapshot
            completion — its records survive power loss, not just a
            process crash.
    """

    def __init__(self, path: Path, sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = sync
        existing = self.path.exists()
        self._file: BinaryIO = open(self.path, "ab")
        if not existing or self._file.tell() == 0:
            self._file.write(MAGIC)
        self._offset = self._file.tell()

    @property
    def offset(self) -> int:
        """Byte offset the next record will be written at."""
        return self._offset

    def append(self, record: SegmentRecord) -> tuple[int, int]:
        """Append ``record``; returns ``(offset, encoded_length)``."""
        encoded = encode_record(record)
        offset = self._offset
        self._file.write(encoded)
        self._offset += len(encoded)
        return offset, len(encoded)

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self.sync:
                os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class SegmentScan:
    """Outcome of scanning one segment file.

    Attributes:
        records: ``(offset, encoded_length, record)`` triples of every
            valid record, in file order.
        valid_bytes: length of the valid prefix (header + whole records).
        truncated: True when a torn/corrupt tail was detected and skipped.
    """

    records: list[tuple[int, int, SegmentRecord]]
    valid_bytes: int
    truncated: bool


def scan_segment(path: Path) -> SegmentScan:
    """Scan a segment, stopping at the first truncated or corrupt record.

    A file holding only a strict prefix of the header (a writer killed
    at segment creation, before its buffer flushed) is a torn tail like
    any other: the scan reports it truncated with zero records instead
    of failing, so a crash at rollover never bricks the store.

    Raises:
        StoreError: when the file is not a segment (bad header).
    """
    data = Path(path).read_bytes()
    if len(data) < len(MAGIC):
        if MAGIC[: len(data)] == data:
            return SegmentScan(records=[], valid_bytes=0, truncated=True)
        raise StoreError(f"{path}: not a segment file (bad header)")
    if data[: len(MAGIC)] != MAGIC:
        raise StoreError(f"{path}: not a segment file (bad header)")
    records: list[tuple[int, int, SegmentRecord]] = []
    offset = len(MAGIC)
    truncated = False
    while offset < len(data):
        try:
            body_len, body_start = decode_varint(data, offset)
        except Exception:
            truncated = True
            break
        end = body_start + body_len + _CRC_BYTES
        if end > len(data):
            truncated = True
            break
        body = data[body_start : body_start + body_len]
        crc = int.from_bytes(
            data[body_start + body_len : end], "little"
        )
        if zlib.crc32(body) != crc:
            truncated = True
            break
        try:
            record = decode_record_body(body)
        except StoreError:
            truncated = True
            break
        records.append((offset, end - offset, record))
        offset = end
    # The loop leaves ``offset`` at the end of the last valid record
    # (the header when none decoded), which is the valid prefix length.
    return SegmentScan(
        records=records, valid_bytes=offset, truncated=truncated
    )


def read_record_from(
    handle: BinaryIO, offset: int, label: str = "segment"
) -> SegmentRecord:
    """Random-access read of one record through an open segment handle
    (callers holding many reads open the file once and reuse it).

    Raises:
        StoreError: when the record is truncated or fails its checksum.
    """
    handle.seek(offset)
    prefix = handle.read(_MAX_VARINT_BYTES)
    try:
        body_len, consumed = decode_varint(prefix, 0)
    except Exception as exc:
        raise StoreError(
            f"{label}@{offset}: unreadable record length"
        ) from exc
    handle.seek(offset + consumed)
    blob = handle.read(body_len + _CRC_BYTES)
    if len(blob) < body_len + _CRC_BYTES:
        raise StoreError(f"{label}@{offset}: truncated record")
    body = blob[:body_len]
    crc = int.from_bytes(blob[body_len:], "little")
    if zlib.crc32(body) != crc:
        raise StoreError(f"{label}@{offset}: record checksum mismatch")
    return decode_record_body(body)


def read_record_pread(
    fileno: int, offset: int, label: str = "segment"
) -> SegmentRecord:
    """Positional random-access read of one record via :func:`os.pread`.

    Unlike :func:`read_record_from` this never touches the handle's seek
    position, so concurrent readers can share one file descriptor
    without serializing their reads behind a lock.

    Raises:
        StoreError: when the record is truncated or fails its checksum.
    """
    prefix = os.pread(fileno, _MAX_VARINT_BYTES, offset)
    try:
        body_len, consumed = decode_varint(prefix, 0)
    except Exception as exc:
        raise StoreError(
            f"{label}@{offset}: unreadable record length"
        ) from exc
    blob = os.pread(fileno, body_len + _CRC_BYTES, offset + consumed)
    if len(blob) < body_len + _CRC_BYTES:
        raise StoreError(f"{label}@{offset}: truncated record")
    body = blob[:body_len]
    crc = int.from_bytes(blob[body_len:], "little")
    if zlib.crc32(body) != crc:
        raise StoreError(f"{label}@{offset}: record checksum mismatch")
    return decode_record_body(body)


def read_record_at(path: Path, offset: int) -> SegmentRecord:
    """One-shot form of :func:`read_record_from` (opens ``path``)."""
    with open(path, "rb") as handle:
        return read_record_from(handle, offset, label=str(path))


def iter_segment_records(path: Path) -> Iterator[SegmentRecord]:
    """Yield the valid records of a segment (tail-tolerant)."""
    for _, _, record in scan_segment(path).records:
        yield record
