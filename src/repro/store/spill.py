"""Memory-budgeted global key index that spills cold postings to disk.

The paper bounds the *per-key* storage of the global HDK index, but the
in-memory reproduction still holds every posting list in RAM, capping
collection size far below web scale.  :class:`SpillingGlobalKeyIndex`
keeps the protocol byte-for-byte identical — entries still live in the
simulated peers' storages, inserts still merge/truncate/notify, lookups
still cost the same messages — while bounding the posting lists actually
resident in RAM:

- a *hot set* of recently inserted/read keys keeps plain posting lists,
  LRU-tracked under a RAM budget denominated in encoded bytes
  (``memory_budget_bytes``; the posting-count ``memory_budget`` knob
  remains as a deprecated alias);
- cold keys keep a :class:`SpilledPostings` stub — same length, same
  entry object, zero resident postings — whose data lives in a
  :class:`~repro.store.store.SegmentStore`; touching a stub transparently
  reloads it (through the store's block cache) and re-heats the key.

Because stubs satisfy the full :class:`PostingList` reading interface,
every consumer — retrieval engines, traffic accounting, churn handoff,
figure inspection — works unchanged, and results are identical to the
in-memory index.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Callable, ContextManager

from ..config import HDKParameters
from ..errors import StoreError
from ..index.codec import posting_list_wire_size
from ..index.global_index import GlobalEntry, GlobalKeyIndex, KeyStatus
from ..index.postings import Posting, PostingList
from ..net.accounting import Phase
from ..net.network import P2PNetwork
from ..obs.trace import get_tracer
from .segment import STATUS_DK, STATUS_NDK
from .store import DEFAULT_MEMTABLE_BYTES, SegmentStore

__all__ = [
    "SpilledPostings",
    "SpillingGlobalKeyIndex",
    "code_to_status",
    "status_to_code",
]

#: Legacy default RAM budget in postings held hot (the deprecated
#: ``memory_budget`` unit; kept for callers that still pass counts).
DEFAULT_MEMORY_BUDGET = 50_000

#: Default RAM budget of the spilling index, in encoded posting bytes.
DEFAULT_MEMORY_BUDGET_BYTES = 1 * 1024 * 1024


def status_to_code(status: KeyStatus) -> int:
    """Map a :class:`KeyStatus` to its segment-record status code."""
    return (
        STATUS_DK if status is KeyStatus.DISCRIMINATIVE else STATUS_NDK
    )


def code_to_status(code: int) -> KeyStatus:
    """Inverse of :func:`status_to_code` (tombstones never reach here)."""
    if code == STATUS_DK:
        return KeyStatus.DISCRIMINATIVE
    if code == STATUS_NDK:
        return KeyStatus.NON_DISCRIMINATIVE
    raise StoreError(f"status code {code} is not a key status")


class SpilledPostings(PostingList):
    """A posting list whose payload lives in a :class:`SegmentStore`.

    Reports its length from directory metadata without touching disk;
    any operation that needs the actual postings loads them through the
    store's block cache and (via ``on_load``) notifies the owning index
    that the key became hot again.
    """

    __slots__ = (
        "_store",
        "_key",
        "_count",
        "_on_load",
        "_load_lock",
        "charge_hint",
    )

    def __init__(
        self,
        store: SegmentStore,
        key: frozenset[str],
        count: int,
        on_load: Callable[[frozenset[str], "SpilledPostings"], None]
        | None = None,
        *,
        charge_hint: int | None = None,
    ) -> None:
        # Deliberately no super().__init__: _postings None marks "cold".
        self._postings: list[Posting] | None = None  # type: ignore[assignment]
        self._store = store
        self._key = key
        self._count = count
        self._on_load = on_load
        self._load_lock = threading.Lock()
        #: Budget charge of the spilled payload, remembered from when
        #: the owning index last held it hot — read at reload time so
        #: re-heating a stub never re-encodes the list just to price it.
        self.charge_hint = charge_hint

    @property
    def is_loaded(self) -> bool:
        return self._postings is not None

    def _materialize(self) -> None:
        if self._postings is not None:
            return
        # Check-then-act guarded per stub: two threads touching the same
        # cold stub must load once and fire on_load once, or the hot-set
        # posting budget would be double-charged.
        with self._load_lock:
            if self._postings is not None:
                return
            tracer = get_tracer()
            if tracer.active:
                with tracer.span(
                    "store.spill_materialize",
                    key=" ".join(sorted(self._key)),
                    count=self._count,
                ):
                    loaded = self._store.get_postings(self._key)
            else:
                loaded = self._store.get_postings(self._key)
            if loaded is None:
                raise StoreError(
                    f"spilled postings for {sorted(self._key)} missing from "
                    f"store {self._store.directory}"
                )
            self._postings = list(loaded)
            if self._on_load is not None:
                self._on_load(self._key, self)

    # -- metadata-only fast paths ------------------------------------------------

    def __len__(self) -> int:
        if self._postings is None:
            return self._count
        return len(self._postings)

    def document_frequency(self) -> int:
        return len(self)

    def __repr__(self) -> str:
        state = "loaded" if self.is_loaded else "spilled"
        return f"SpilledPostings(len={len(self)}, {state})"

    # -- materializing delegates -------------------------------------------------

    def __iter__(self):
        self._materialize()
        return super().__iter__()

    def __contains__(self, doc_id: int) -> bool:
        self._materialize()
        return super().__contains__(doc_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        self._materialize()
        if isinstance(other, SpilledPostings):
            other._materialize()
        return super().__eq__(other)

    def doc_ids(self) -> list[int]:
        self._materialize()
        return super().doc_ids()

    def get(self, doc_id: int) -> Posting | None:
        self._materialize()
        return super().get(doc_id)

    def add(self, posting: Posting) -> None:
        self._materialize()
        super().add(posting)

    def union(self, other: PostingList) -> PostingList:
        self._materialize()
        return super().union(other)

    def intersect(self, other: PostingList) -> PostingList:
        self._materialize()
        return super().intersect(other)

    def filter_docs(self, keep: Callable[[int], bool]) -> PostingList:
        self._materialize()
        return super().filter_docs(keep)

    def truncate_top(self, limit: int, policy: str = "tf") -> PostingList:
        self._materialize()
        return super().truncate_top(limit, policy)


class SpillingGlobalKeyIndex(GlobalKeyIndex):
    """Drop-in :class:`GlobalKeyIndex` bounded by a RAM posting budget.

    Args:
        network: the simulated P2P network storing the entries.
        params: HDK model parameters.
        store: the backing segment store; built from ``store_dir`` when
            omitted (a private temporary directory when both are None).
            When given, the store-shaping knobs below (``sync``, ``wal``,
            ``memtable_bytes``, ``background_compaction``,
            ``maintenance_scope``) are ignored.
        memory_budget: deprecated posting-count alias for the RAM
            budget; ``0`` spills everything immediately (all reads go
            through the store's block cache).  Mutually exclusive with
            ``memory_budget_bytes``.
        store_dir: directory for an implicitly created store.
        sync: fsync segment files on rollover/close and WAL appends
            (forwarded to an implicitly created store).
        memory_budget_bytes: RAM budget in encoded posting bytes — what
            the hot lists actually cost on disk and on the wire;
            defaults to :data:`DEFAULT_MEMORY_BUDGET_BYTES` when neither
            budget knob is given.
        wal: write-ahead-log incremental writes in the backing store
            (crash-durable builds); on by default.
        memtable_bytes: the backing store's memtable flush threshold.
        background_compaction: compact the backing store on a
            maintenance thread instead of in the write path; on by
            default (serving reads never stall behind a compaction).
        maintenance_scope: context-manager factory wrapped around every
            background maintenance run; defaults to the network's
            ``phase_scope(Phase.MAINTENANCE)`` so maintenance can never
            be attributed to the paper's indexing/retrieval traffic.
    """

    def __init__(
        self,
        network: P2PNetwork,
        params: HDKParameters,
        store: SegmentStore | None = None,
        memory_budget: int | None = None,
        store_dir: str | Path | None = None,
        sync: bool = False,
        *,
        memory_budget_bytes: int | None = None,
        wal: bool = True,
        memtable_bytes: int = DEFAULT_MEMTABLE_BYTES,
        background_compaction: bool = True,
        maintenance_scope: Callable[[], ContextManager] | None = None,
    ) -> None:
        super().__init__(network, params)
        if memory_budget is not None and memory_budget_bytes is not None:
            raise StoreError(
                "pass either memory_budget_bytes or the deprecated "
                "memory_budget, not both"
            )
        if memory_budget is not None:
            warnings.warn(
                "memory_budget (postings) is deprecated; budget hot "
                "residency in encoded bytes with memory_budget_bytes",
                DeprecationWarning,
                stacklevel=2,
            )
            if memory_budget < 0:
                raise StoreError(
                    f"memory_budget must be >= 0, got {memory_budget}"
                )
            self.budget_unit = "postings"
            self.memory_budget = memory_budget
        else:
            if memory_budget_bytes is None:
                memory_budget_bytes = DEFAULT_MEMORY_BUDGET_BYTES
            if memory_budget_bytes < 0:
                raise StoreError(
                    "memory_budget_bytes must be >= 0, got "
                    f"{memory_budget_bytes}"
                )
            self.budget_unit = "bytes"
            self.memory_budget = memory_budget_bytes
        if maintenance_scope is None:
            maintenance_scope = lambda: network.accounting.phase_scope(
                Phase.MAINTENANCE
            )
        if store is None:
            # The block cache is budgeted in the same unit as the hot
            # set, so one knob governs both tiers of residency.
            cache_kwargs = (
                {"cache_postings": self.memory_budget}
                if self.budget_unit == "postings"
                else {"cache_bytes": self.memory_budget}
            )
            with warnings.catch_warnings():
                # The store's own alias warning would double-report the
                # one already issued above for memory_budget.
                warnings.simplefilter("ignore", DeprecationWarning)
                store = SegmentStore(
                    store_dir,
                    sync=sync,
                    wal=wal,
                    memtable_bytes=memtable_bytes,
                    background_compaction=background_compaction,
                    maintenance_scope=maintenance_scope,
                    **cache_kwargs,
                )
        self.store = store
        # Hot-set bookkeeping is shared by every thread whose reads
        # re-heat stubs.  Acyclic lock order: a stub's load lock is
        # only ever taken first, and the store lock is never held while
        # acquiring _hot_lock (materialize releases it before on_load
        # fires).  insert() deliberately runs its merge before
        # acquiring this lock so it follows the same order.
        self._hot_lock = threading.RLock()
        # key -> (budget charge, posting count); the charge is postings
        # or encoded bytes depending on budget_unit, the posting count
        # is always tracked (the paper's stats unit).
        self._hot: OrderedDict[frozenset[str], tuple[int, int]] = (
            OrderedDict()
        )
        self._hot_charge = 0
        self._hot_postings = 0
        self._spills = 0
        self._reloads = 0
        # "Inside insert" is per-thread state: a reader in another
        # thread must still enforce the budget for its own reloads.
        self._op_local = threading.local()

    # -- hot-set accounting ------------------------------------------------------

    @property
    def hot_postings(self) -> int:
        """Postings currently resident in RAM across hot entries."""
        return self._hot_postings

    @property
    def hot_keys(self) -> int:
        return len(self._hot)

    def _entry_at_responsible(
        self, key: frozenset[str]
    ) -> GlobalEntry | None:
        # The *effective* owner: with replication installed this is the
        # first live replica, and without it ``None`` when the
        # responsible peer crashed (nothing resident to manage).  Only
        # the effective owner's copy participates in the RAM budget;
        # backup replicas keep plain resident lists — the budget bounds
        # the serving copy, and the R-fold storage overhead is exactly
        # what replication buys.
        target = self.network.effective_owner(self.network.key_id(key))
        if target is None:
            return None
        value = self.network.storage_by_id(target).get(key)
        return value if isinstance(value, GlobalEntry) else None

    def _charge_of(self, postings: PostingList) -> int:
        if self.budget_unit == "postings":
            return len(postings)
        return posting_list_wire_size(postings)

    def _note_hot(
        self,
        key: frozenset[str],
        postings: PostingList,
        charge: int | None = None,
    ) -> None:
        previous = self._hot.pop(key, None)
        if previous is not None:
            self._hot_charge -= previous[0]
            self._hot_postings -= previous[1]
        if charge is None:
            charge = self._charge_of(postings)
        self._hot[key] = (charge, len(postings))
        self._hot_charge += charge
        self._hot_postings += len(postings)

    def _note_loaded(
        self, key: frozenset[str], _stub: SpilledPostings
    ) -> None:
        """A spilled stub materialized (engine iteration, merge, ...)."""
        with self._hot_lock:
            self._reloads += 1
            # The stub's payload is exactly what was spilled, so the
            # charge recorded at spill time still prices it — no
            # re-encode on the hot read path (stubs placed by a lazy
            # snapshot load carry no hint and are priced once here).
            self._note_hot(key, _stub, charge=_stub.charge_hint)
            if not getattr(self._op_local, "in_operation", False):
                self._enforce_budget()

    def _spill(self, key: frozenset[str], charge: int | None = None) -> None:
        entry = self._entry_at_responsible(key)
        if entry is None:
            # The key vanished from storage (e.g. churn edge) — nothing
            # resident to release.
            return
        postings = entry.postings
        if isinstance(postings, SpilledPostings):
            # A reloaded stub: the store already holds this exact list
            # (inserts replace the whole entry with a plain list), so
            # dropping the resident copy is enough.
            entry.postings = SpilledPostings(
                self.store,
                key,
                len(postings),
                self._note_loaded,
                charge_hint=charge,
            )
        else:
            self.store.put(
                key,
                postings,
                entry.global_df,
                status_to_code(entry.status),
                tuple(sorted(entry.contributors)),
            )
            entry.postings = SpilledPostings(
                self.store,
                key,
                len(postings),
                self._note_loaded,
                charge_hint=charge,
            )
        self._spills += 1

    def _enforce_budget(self) -> None:
        # Callers hold _hot_lock.
        while self._hot_charge > self.memory_budget and self._hot:
            key, (charge, count) = self._hot.popitem(last=False)
            self._hot_charge -= charge
            self._hot_postings -= count
            self._spill(key, charge)

    # -- overridden protocol surfaces --------------------------------------------

    def apply_staged(self, staged) -> KeyStatus:
        # Hooking apply_staged (not insert) covers both entry points:
        # the classic one-shot insert() and the parallel pipeline's
        # staged path — residency bookkeeping belongs to the merge, and
        # spills flush through the SegmentStore on the applying thread,
        # serialized with every other merge.
        #
        # super().apply_staged() runs OUTSIDE _hot_lock: merging into a
        # cold entry materializes its stub, which takes the stub's load
        # lock and then (via on_load) _hot_lock — the same order readers
        # use.  Holding _hot_lock across the merge would invert that
        # order and deadlock against a reader mid-materialize.  Writes
        # themselves are externally serialized (indexing precedes
        # serving); the lock below only covers hot-set bookkeeping.
        self._op_local.in_operation = True
        try:
            status = super().apply_staged(staged)
        finally:
            self._op_local.in_operation = False
        key = staged.key
        with self._hot_lock:
            entry = self._entry_at_responsible(key)
            if entry is not None:
                self._note_hot(key, entry.postings)
            self._enforce_budget()
        return status

    # lookup() needs no override: the response size reads the stub's
    # metadata length, and consumers that iterate the returned postings
    # re-heat the key through _note_loaded.

    # -- persistence hooks -------------------------------------------------------

    def spill_all(self) -> None:
        """Spill every hot entry (snapshot flush / tests)."""
        with self._hot_lock:
            while self._hot:
                key, (charge, count) = self._hot.popitem(last=False)
                self._hot_charge -= charge
                self._hot_postings -= count
                self._spill(key, charge)
        self.store.flush()

    def checkpoint(self) -> None:
        """Spill everything and checkpoint the backing store: segments
        become self-contained (WAL dropped, sidecars sealed)."""
        self.spill_all()
        self.store.checkpoint()

    def spill_stats(self) -> dict[str, object]:
        """RAM-residency counters plus the backing store's statistics."""
        with self._hot_lock:
            return {
                "memory_budget": self.memory_budget,
                "budget_unit": self.budget_unit,
                "hot_keys": self.hot_keys,
                "hot_postings": self.hot_postings,
                "hot_charge": self._hot_charge,
                "spills": self._spills,
                "reloads": self._reloads,
                "store": self.store.stats(),
            }
