"""In-memory write buffer between the WAL and the segments.

The memtable absorbs every WAL-logged write until its *encoded* size
passes the flush threshold, at which point the store writes the whole
buffer into a fresh sealed segment (sorted by key, one sidecar index)
and drops the WAL.  Directory entries for memtable residents use the
sentinel segment id :data:`MEMTABLE_ID` and the record's admission
sequence number as its "offset", which doubles as a unique block-cache
id — sequence numbers are never reused, exactly like segment offsets.

Tombstones are kept as ordinary records (the offset directory drops the
key, but the flush must still write the tombstone so older on-disk
copies stay superseded after the WAL is gone).

The memtable itself is not locked: the owning store serializes all
access under its directory lock.
"""

from __future__ import annotations

from typing import Iterator

from .segment import SegmentRecord

__all__ = ["MEMTABLE_ID", "Memtable"]

#: Sentinel "segment id" of directory entries whose record still lives
#: in the memtable.  Real segment ids start at 1.
MEMTABLE_ID = -1


class Memtable:
    """Key→record buffer with byte-accurate occupancy accounting.

    ``data_bytes`` tracks the *on-disk encoded* size of the buffered
    records (frame length: varint prefix + body + crc), so the flush
    threshold is denominated in the same unit as segment bytes and the
    flushed segment's size is known before it is written.
    """

    def __init__(self) -> None:
        # key -> (seq, record, encoded frame length); insertion order is
        # irrelevant (flush sorts by key), last write wins.
        self._records: dict[
            frozenset[str], tuple[int, SegmentRecord, int]
        ] = {}
        self._data_bytes = 0
        self._next_seq = 0

    @property
    def data_bytes(self) -> int:
        """Encoded bytes the buffered records would occupy on disk."""
        return self._data_bytes

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: frozenset[str]) -> bool:
        return key in self._records

    def put(self, record: SegmentRecord, encoded_length: int) -> int:
        """Buffer ``record`` (last write wins); returns its sequence
        number — the unique memtable 'offset' of this admission."""
        previous = self._records.get(record.key)
        if previous is not None:
            self._data_bytes -= previous[2]
        seq = self._next_seq
        self._next_seq += 1
        self._records[record.key] = (seq, record, encoded_length)
        self._data_bytes += encoded_length
        return seq

    def get(self, key: frozenset[str]) -> SegmentRecord | None:
        entry = self._records.get(key)
        return entry[1] if entry is not None else None

    def seqs(self) -> Iterator[int]:
        """Sequence numbers of the buffered records (cache block ids)."""
        for seq, _, _ in self._records.values():
            yield seq

    def records_sorted(self) -> list[SegmentRecord]:
        """Buffered records sorted by key — deterministic flush order,
        so identical build histories produce identical segments."""
        return [
            self._records[key][1]
            for key in sorted(self._records, key=sorted)
        ]

    def clear(self) -> None:
        """Drop every buffered record (after a completed flush).  The
        sequence counter is *not* reset: block ids must stay unique
        across flushes, like segment offsets across compactions."""
        self._records.clear()
        self._data_bytes = 0
