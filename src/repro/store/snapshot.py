"""Snapshot layout: persist an indexed global key index to a directory.

A snapshot is the build-once / serve-many artifact of the store
subsystem::

    <dir>/
      manifest.json     backend, overlay, peer names, HDK parameters
      termstats.bin     ranking statistics directory (varint-encoded)
      segments/         every live (key, posting list) entry, one
                        SegmentStore written by a compacting pass

Saving walks the index's entries; entries whose postings are spilled are
copied segment-to-segment as raw encoded payloads (no decode).  Loading
offers two strategies: *eager* decodes every record back into plain
in-RAM entries (the ``hdk`` backend), while *lazy* only rebuilds the
offset directory and places length-only stubs, so a collection far
larger than RAM is queryable the moment the scan finishes (the
``hdk_disk`` backend).

The peers of the loading service must be registered with the network
before entries are placed, so DHT responsibility matches the hash-based
placement used here.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..errors import StoreError
from ..index.bm25 import TermStats
from ..index.codec import decode_varint, encode_varint
from ..index.global_index import GlobalEntry, GlobalKeyIndex
from ..index.postings import PostingList
from ..net.network import P2PNetwork
from .segment import SegmentRecord, fsync_dir, fsync_file
from .spill import (
    SpilledPostings,
    SpillingGlobalKeyIndex,
    code_to_status,
    status_to_code,
)
from .store import SegmentStore

__all__ = [
    "MANIFEST_NAME",
    "SEGMENTS_DIRNAME",
    "TERMSTATS_NAME",
    "SnapshotManifest",
    "load_statistics",
    "populate_eager",
    "populate_lazy",
    "read_manifest",
    "save_index_snapshot",
]

MANIFEST_NAME = "manifest.json"
SEGMENTS_DIRNAME = "segments"
TERMSTATS_NAME = "termstats.bin"

#: Version written by this build.  v2 snapshots differ from v1 only by
#: additions: segment ``.idx`` sidecars (O(segments) reopen) and the
#: ``store_generation`` / ``wal`` manifest fields.  v1 snapshots stay
#: fully readable — their segments simply take the scan path once (and
#: self-heal sidecars where the directory is writable).
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = frozenset({1, 2})
_TERMSTATS_MAGIC = b"RTST\x01"


@dataclass
class SnapshotManifest:
    """Everything needed to rebuild a queryable service around the
    persisted entries."""

    backend: str
    overlay: str
    peer_names: list[str] = field(default_factory=list)
    params: dict = field(default_factory=dict)
    key_count: int = 0
    stored_postings: int = 0
    format_version: int = _FORMAT_VERSION
    repro_version: str = ""
    #: Replication degree the snapshot was built with (1 = unreplicated;
    #: older manifests omit the field and read back as 1).
    replication: int = 1
    #: Exported ReplicationManager state (origin sequence numbers and
    #: per-replica version vectors) so a reloaded service resumes
    #: anti-entropy from the persisted vectors; empty when replication=1.
    replication_state: dict = field(default_factory=dict)
    #: Store generation that wrote ``segments/``: 1 = scan-indexed
    #: (pre-sidecar), 2 = sidecar-indexed (v1 manifests omit the field
    #: and read back as 1).
    store_generation: int = 1
    #: Directory (relative to the snapshot root) where a WAL-enabled
    #: reopening of the snapshot writes its logs; empty for read-only
    #: artifacts of generation-1 builds.
    wal: str = ""


def save_index_snapshot(
    path: str | Path,
    *,
    backend_name: str,
    overlay_name: str,
    peer_names: list[str],
    params: dict,
    global_index: GlobalKeyIndex,
    sync: bool = False,
    replication: int = 1,
    replication_state: dict | None = None,
) -> SnapshotManifest:
    """Write a snapshot of ``global_index`` under ``path``.

    With ``sync=True`` every segment file is fsynced as it is closed
    and the manifest (the snapshot's commit point — :func:`read_manifest`
    refuses a directory without one) is fsynced after it is written, so
    a completed save survives power loss, not just a process crash.

    Raises:
        StoreError: when ``path`` already holds a snapshot.
    """
    target = Path(path)
    if (target / MANIFEST_NAME).exists():
        raise StoreError(
            f"snapshot already exists at {target}; choose a fresh directory"
        )
    target.mkdir(parents=True, exist_ok=True)
    source_store = (
        global_index.store
        if isinstance(global_index, SpillingGlobalKeyIndex)
        else None
    )
    # wal=False: bulk writes go straight to segments; close() below
    # seals them with their sidecar indexes, so loading this snapshot
    # takes the O(segments) reopen path.
    out = SegmentStore(
        target / SEGMENTS_DIRNAME, cache_bytes=0, sync=sync, wal=False
    )
    entries = sorted(
        _unique_entries(global_index), key=lambda entry: sorted(entry.key)
    )
    stored_postings = 0
    for entry in entries:
        contributors = tuple(sorted(entry.contributors))
        status_code = status_to_code(entry.status)
        postings = entry.postings
        if (
            source_store is not None
            and isinstance(postings, SpilledPostings)
            and not postings.is_loaded
        ):
            # Cold entry: copy the encoded payload segment-to-segment.
            record = source_store.get_record(entry.key)
            if record is None:
                raise StoreError(
                    f"spilled entry {sorted(entry.key)} missing from "
                    f"backing store during snapshot"
                )
            out.put_record(
                SegmentRecord(
                    key=entry.key,
                    global_df=entry.global_df,
                    status_code=status_code,
                    contributors=contributors,
                    payload=record.payload,
                )
            )
        else:
            out.put_record(
                SegmentRecord.from_postings(
                    entry.key,
                    postings,
                    entry.global_df,
                    status_code,
                    contributors,
                )
            )
        stored_postings += len(postings)
    out.close()
    _write_statistics(target / TERMSTATS_NAME, global_index)
    if sync:
        # Everything the manifest will point at must be durable before
        # the manifest itself is: the statistics file, and the
        # segments/ directory entries naming the (already-fsynced)
        # segment files.
        fsync_file(target / TERMSTATS_NAME)
        fsync_dir(target / SEGMENTS_DIRNAME)
    # Imported here: repro/__init__ pulls in the engine (and through it
    # this module) before it defines __version__.
    from .. import __version__ as repro_version

    manifest = SnapshotManifest(
        backend=backend_name,
        overlay=overlay_name,
        peer_names=list(peer_names),
        params=dict(params),
        key_count=len(entries),
        stored_postings=stored_postings,
        repro_version=repro_version,
        replication=replication,
        replication_state=dict(replication_state or {}),
        store_generation=2,
        wal=SEGMENTS_DIRNAME,
    )
    (target / MANIFEST_NAME).write_text(
        json.dumps(asdict(manifest), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    if sync:
        fsync_file(target / MANIFEST_NAME)
        fsync_dir(target)
    return manifest




def read_manifest(path: str | Path) -> SnapshotManifest:
    """Read and validate the manifest of a snapshot directory."""
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.exists():
        raise StoreError(f"no snapshot manifest at {manifest_path}")
    try:
        data = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StoreError(f"unreadable manifest {manifest_path}: {exc}") from exc
    version = data.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise StoreError(
            f"unsupported snapshot format_version {version!r} "
            f"(this build reads {sorted(_SUPPORTED_VERSIONS)})"
        )
    known = {f for f in SnapshotManifest.__dataclass_fields__}
    try:
        return SnapshotManifest(
            **{key: value for key, value in data.items() if key in known}
        )
    except TypeError as exc:  # structurally valid JSON, fields missing
        raise StoreError(
            f"incomplete manifest {manifest_path}: {exc}"
        ) from exc


def segments_dir(path: str | Path) -> Path:
    """The segment-store directory inside a snapshot."""
    return Path(path) / SEGMENTS_DIRNAME


# -- statistics directory ---------------------------------------------------------


def _write_statistics(path: Path, global_index: GlobalKeyIndex) -> None:
    term_stats, num_documents, total_doc_length = (
        global_index.export_statistics()
    )
    out = bytearray(_TERMSTATS_MAGIC)
    encode_varint(num_documents, out)
    encode_varint(total_doc_length, out)
    encode_varint(len(term_stats), out)
    for term in sorted(term_stats):
        stats = term_stats[term]
        encoded = term.encode("utf-8")
        encode_varint(len(encoded), out)
        out.extend(encoded)
        encode_varint(stats.document_frequency, out)
        encode_varint(stats.collection_frequency, out)
    path.write_bytes(bytes(out))


def load_statistics(
    path: str | Path, global_index: GlobalKeyIndex
) -> None:
    """Restore the ranking statistics directory from a snapshot."""
    stats_path = Path(path) / TERMSTATS_NAME
    data = stats_path.read_bytes()
    if data[: len(_TERMSTATS_MAGIC)] != _TERMSTATS_MAGIC:
        raise StoreError(f"{stats_path}: not a statistics file")
    offset = len(_TERMSTATS_MAGIC)
    num_documents, offset = decode_varint(data, offset)
    total_doc_length, offset = decode_varint(data, offset)
    n_terms, offset = decode_varint(data, offset)
    term_stats: dict[str, TermStats] = {}
    for _ in range(n_terms):
        term_len, offset = decode_varint(data, offset)
        term = data[offset : offset + term_len].decode("utf-8")
        offset += term_len
        df, offset = decode_varint(data, offset)
        cf, offset = decode_varint(data, offset)
        term_stats[term] = TermStats(
            term=term, document_frequency=df, collection_frequency=cf
        )
    global_index.restore_statistics(
        term_stats, num_documents, total_doc_length
    )


# -- entry placement --------------------------------------------------------------


def _unique_entries(global_index: GlobalKeyIndex) -> list[GlobalEntry]:
    """One entry per key: with replication installed every key is stored
    at R replicas and a snapshot persists exactly one convergent copy —
    the *effective* owner's, so the bytes are deterministic and, if a
    replica was lagging at save time, the serving copy is what is kept."""
    network = global_index.network
    if network.replication is None:
        return global_index.entries()
    unique: dict = {}
    for storage in network.storages():
        for stored in storage:
            if not isinstance(stored.value, GlobalEntry):
                continue
            if stored.key in unique:
                continue
            owner = network.effective_owner(stored.key_id)
            value = (
                network.storage_by_id(owner).get(stored.key)
                if owner is not None
                else stored.value
            )
            unique[stored.key] = value
    return list(unique.values())


def _place_entry(network: P2PNetwork, key, make_entry) -> None:
    """Put a freshly built entry directly into the storage of *each*
    live owner — snapshot restoration is local I/O, not protocol
    traffic.  ``make_entry`` is called once per owner: replicas must
    never share a mutable entry, or a later merge at one would silently
    mutate the others.  Without replication there is one owner, the
    responsible peer."""
    key_id = network.key_id(key)
    if network.replication is not None:
        owners = network.replication.owners(key_id)
    else:
        owners = (network.overlay.responsible_peer(key_id),)
    for owner in owners:
        if not network.is_live(owner):
            continue
        network.storage_by_id(owner).put(key, key_id, make_entry())


def populate_eager(
    path: str | Path, global_index: GlobalKeyIndex
) -> int:
    """Decode every snapshot record into in-RAM entries (``hdk``).

    Returns the number of keys placed.
    """
    reader = SegmentStore(segments_dir(path), cache_bytes=0)
    placed = 0
    for key, meta in reader.items():
        postings = reader.get_postings(key)
        assert postings is not None

        def make_entry(
            key=key, meta=meta, postings=postings
        ) -> GlobalEntry:
            return GlobalEntry(
                key=key,
                postings=PostingList(list(postings)),
                global_df=meta.global_df,
                status=code_to_status(meta.status_code),
                contributors=set(meta.contributors),
            )

        _place_entry(global_index.network, key, make_entry)
        placed += 1
    reader.close()
    load_statistics(path, global_index)
    return placed


def populate_lazy(
    path: str | Path, global_index: SpillingGlobalKeyIndex
) -> int:
    """Place length-only stubs for every snapshot record (``hdk_disk``).

    The index's backing store must already be opened over the snapshot's
    ``segments/`` directory (its offset directory is the source of
    truth); no posting list is decoded here.

    Returns the number of keys placed.
    """
    store = global_index.store
    expected = segments_dir(path).resolve()
    if store.directory.resolve() != expected:
        raise StoreError(
            f"lazy load requires the index store to be opened over "
            f"{expected}, not {store.directory}"
        )
    placed = 0
    for key, meta in store.items():

        def make_entry(key=key, meta=meta) -> GlobalEntry:
            # One stub per owner, all backed by the shared snapshot
            # store: a backup materializing its copy never aliases the
            # effective owner's resident list.
            return GlobalEntry(
                key=key,
                postings=SpilledPostings(
                    store,
                    key,
                    meta.posting_count,
                    global_index._note_loaded,
                ),
                global_df=meta.global_df,
                status=code_to_status(meta.status_code),
                contributors=set(meta.contributors),
            )

        _place_entry(global_index.network, key, make_entry)
        placed += 1
    load_statistics(path, global_index)
    return placed
