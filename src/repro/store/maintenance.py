"""Background maintenance thread for the segment store.

One daemon thread, started lazily on the first wake, runs a single
callback (the store's concurrent compaction) whenever it is woken.
Wake-ups coalesce: a wake while the task is running schedules exactly
one more run, so a burst of writes triggers at most one trailing
compaction instead of a queue of them.

Thread lifecycle is generation-guarded: :meth:`stop` bumps the epoch,
invalidating the current loop thread, and a later :meth:`wake` starts a
fresh one under a control lock that first waits out the old thread's
join — a wake racing a stop can neither resurrect pending work on the
stopping thread nor leave two loops consuming the same condition.

The optional ``scope`` callable wraps every run in a context manager —
the spilling index passes the network's
``phase_scope(Phase.MAINTENANCE)`` so any traffic a maintenance pass
might cause is attributed like anti-entropy repair and overlay
upkeep, never to the paper's indexing/retrieval figures.

Exceptions from the task are swallowed and counted (``errors``): a
failed compaction leaves the store on its pre-compaction segments,
which are always still valid, and the next wake retries.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Callable, ContextManager

__all__ = ["MaintenanceWorker"]


class MaintenanceWorker:
    """Event-woken single-task daemon thread.

    Args:
        task: the callback each wake runs (must be re-entrant across
            runs; runs are serialized on the worker thread).
        name: thread name (visible in dumps / profilers).
        scope: zero-arg callable returning a context manager to wrap
            every run (e.g. a traffic-accounting phase scope).
    """

    def __init__(
        self,
        task: Callable[[], None],
        *,
        name: str = "repro-store-maintenance",
        scope: Callable[[], ContextManager] | None = None,
    ) -> None:
        self._task = task
        self._name = name
        self._scope = scope
        self._cond = threading.Condition()
        self._pending = False
        #: Runs in flight.  A counter, not a flag: during the one
        #: legitimate overlap window (a stop whose join timed out on a
        #: wedged task, followed by a wake) the stale thread's finish
        #: must not mark a fresh thread's run as done.
        self._active = 0
        #: Thread generation.  The loop exits when its epoch goes stale;
        #: stop() bumps it instead of flagging a shared "stopped" bit,
        #: so a concurrent wake cannot re-arm a stopping thread.
        self._epoch = 0
        self._thread: threading.Thread | None = None
        #: Serializes wake()/stop() thread management (never held by the
        #: loop): a wake observing a dead-or-stopping thread joins it
        #: here before a replacement starts.
        self._ctl = threading.Lock()
        self.runs = 0
        self.errors = 0
        self.last_error: str | None = None

    # -- control -----------------------------------------------------------------

    def wake(self) -> None:
        """Schedule one run (coalescing), starting the thread lazily."""
        with self._ctl:
            with self._cond:
                self._pending = True
                if self._thread is None or not self._thread.is_alive():
                    self._epoch += 1
                    self._thread = threading.Thread(
                        target=self._loop,
                        args=(self._epoch,),
                        name=self._name,
                        daemon=True,
                    )
                    self._thread.start()
                self._cond.notify_all()

    def quiesce(self, timeout: float | None = 10.0) -> bool:
        """Block until no run is pending or in flight (tests use this to
        make background compaction deterministic).  Returns False on
        timeout."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._pending and self._active == 0,
                timeout=timeout,
            )

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop the thread after any in-flight run finishes.  The worker
        restarts transparently on the next :meth:`wake`."""
        with self._ctl:
            with self._cond:
                self._epoch += 1
                self._pending = False
                self._cond.notify_all()
                thread = self._thread
                self._thread = None
            if thread is not None and thread.is_alive():
                thread.join(timeout=timeout)

    @property
    def idle(self) -> bool:
        with self._cond:
            return not self._pending and self._active == 0

    # -- loop --------------------------------------------------------------------

    def _loop(self, epoch: int) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._pending or self._epoch != epoch
                )
                if self._epoch != epoch:
                    # This generation was stopped (or superseded after a
                    # timed-out join): exit without consuming pending
                    # work — it belongs to the successor, if any.
                    self._cond.notify_all()
                    return
                self._pending = False
                self._active += 1
            try:
                scope = (
                    self._scope() if self._scope is not None
                    else nullcontext()
                )
                with scope:
                    self._task()
                with self._cond:
                    self.runs += 1
            except Exception as exc:
                with self._cond:
                    self.errors += 1
                    self.last_error = f"{type(exc).__name__}: {exc}"
            finally:
                with self._cond:
                    self._active -= 1
                    self._cond.notify_all()
