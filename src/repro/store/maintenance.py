"""Background maintenance thread for the segment store.

One daemon thread, started lazily on the first wake, runs a single
callback (the store's concurrent compaction) whenever it is woken.
Wake-ups coalesce: a wake while the task is running schedules exactly
one more run, so a burst of writes triggers at most one trailing
compaction instead of a queue of them.

The optional ``scope`` callable wraps every run in a context manager —
the spilling index passes the network's
``phase_scope(Phase.MAINTENANCE)`` so any traffic a maintenance pass
might cause is attributed like anti-entropy repair and overlay
upkeep, never to the paper's indexing/retrieval figures.

Exceptions from the task are swallowed and counted (``errors``): a
failed compaction leaves the store on its pre-compaction segments,
which are always still valid, and the next wake retries.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Callable, ContextManager

__all__ = ["MaintenanceWorker"]


class MaintenanceWorker:
    """Event-woken single-task daemon thread.

    Args:
        task: the callback each wake runs (must be re-entrant across
            runs; runs are serialized on the worker thread).
        name: thread name (visible in dumps / profilers).
        scope: zero-arg callable returning a context manager to wrap
            every run (e.g. a traffic-accounting phase scope).
    """

    def __init__(
        self,
        task: Callable[[], None],
        *,
        name: str = "repro-store-maintenance",
        scope: Callable[[], ContextManager] | None = None,
    ) -> None:
        self._task = task
        self._name = name
        self._scope = scope
        self._cond = threading.Condition()
        self._pending = False
        self._running = False
        self._stopped = False
        self._thread: threading.Thread | None = None
        self.runs = 0
        self.errors = 0
        self.last_error: str | None = None

    # -- control -----------------------------------------------------------------

    def wake(self) -> None:
        """Schedule one run (coalescing), starting the thread lazily."""
        with self._cond:
            self._stopped = False
            self._pending = True
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop, name=self._name, daemon=True
                )
                self._thread.start()
            self._cond.notify_all()

    def quiesce(self, timeout: float | None = 10.0) -> bool:
        """Block until no run is pending or in flight (tests use this to
        make background compaction deterministic).  Returns False on
        timeout."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._pending and not self._running,
                timeout=timeout,
            )

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop the thread after any in-flight run finishes.  The worker
        restarts transparently on the next :meth:`wake`."""
        with self._cond:
            self._stopped = True
            self._pending = False
            self._cond.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)

    @property
    def idle(self) -> bool:
        with self._cond:
            return not self._pending and not self._running

    # -- loop --------------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._pending or self._stopped
                )
                if self._stopped:
                    self._cond.notify_all()
                    return
                self._pending = False
                self._running = True
            try:
                scope = (
                    self._scope() if self._scope is not None
                    else nullcontext()
                )
                with scope:
                    self._task()
                with self._cond:
                    self.runs += 1
            except Exception as exc:
                with self._cond:
                    self.errors += 1
                    self.last_error = f"{type(exc).__name__}: {exc}"
            finally:
                with self._cond:
                    self._running = False
                    self._cond.notify_all()
