"""Bounded LRU cache over decoded posting-list blocks.

The segment store pays a disk read + varint decode for every cold key;
this cache keeps the most recently used decoded lists in RAM under a
budget, so hot keys are served without touching the segments.

The budget is denominated in **encoded bytes** (``capacity_bytes``) —
what the lists actually cost on disk and on the wire — or, for
backwards compatibility, in posting counts (``capacity_postings``, the
paper's cost unit, now a deprecated alias at the store/index level).
Whichever unit bounds the cache, both occupancy views
(:attr:`held_postings`, :attr:`held_bytes`) are tracked.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, NamedTuple

from ..errors import StoreError
from ..index.codec import posting_list_wire_size
from ..index.postings import PostingList

__all__ = ["BlockCache", "BlockCacheStats"]


@dataclass
class BlockCacheStats:
    """Hit/miss/eviction counters plus current occupancy."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Block(NamedTuple):
    postings: PostingList
    pcost: int  # postings held (floored at 1 so entry count stays bounded)
    bcost: int  # encoded bytes (caller-provided frame length, or estimated)


class BlockCache:
    """LRU over decoded blocks, bounded in one budget unit.

    Thread-safe: LRU order, occupancy, and counters are guarded by an
    internal lock, and eviction makes room *before* a new block becomes
    visible, so occupancy never exceeds the budget at any observable
    instant under concurrent readers.

    Args:
        capacity_postings: bound by total postings held (the legacy
            unit); ``0`` disables caching (every get is a miss, puts are
            dropped).  Empty lists are charged one posting so the entry
            count stays bounded too.
        capacity_bytes: bound by total encoded bytes held; ``0``
            disables caching.  Exactly one of the two budgets must be
            given.
    """

    def __init__(
        self,
        capacity_postings: int | None = None,
        *,
        capacity_bytes: int | None = None,
    ) -> None:
        if (capacity_postings is None) == (capacity_bytes is None):
            raise StoreError(
                "pass exactly one of capacity_postings or capacity_bytes"
            )
        if capacity_postings is not None:
            if capacity_postings < 0:
                raise StoreError(
                    "capacity_postings must be >= 0, got "
                    f"{capacity_postings}"
                )
            self.unit = "postings"
            self.capacity = capacity_postings
        else:
            assert capacity_bytes is not None
            if capacity_bytes < 0:
                raise StoreError(
                    f"capacity_bytes must be >= 0, got {capacity_bytes}"
                )
            self.unit = "bytes"
            self.capacity = capacity_bytes
        self._blocks: OrderedDict[Hashable, _Block] = OrderedDict()
        self._held_postings = 0
        self._held_bytes = 0
        self._lock = threading.Lock()
        self.stats = BlockCacheStats()

    def _block(self, postings: PostingList, nbytes: int | None) -> _Block:
        return _Block(
            postings=postings,
            pcost=max(1, len(postings)),
            bcost=(
                nbytes
                if nbytes is not None
                else posting_list_wire_size(postings)
            ),
        )

    def _charge(self, block: _Block) -> int:
        return block.pcost if self.unit == "postings" else block.bcost

    @property
    def held_postings(self) -> int:
        """Postings currently held across cached blocks."""
        return self._held_postings

    @property
    def held_bytes(self) -> int:
        """Encoded bytes currently held across cached blocks."""
        return self._held_bytes

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: Hashable) -> PostingList | None:
        """Return the cached block, refreshing its recency, or None."""
        with self._lock:
            block = self._blocks.get(block_id)
            if block is None:
                self.stats.misses += 1
                return None
            self._blocks.move_to_end(block_id)
            self.stats.hits += 1
            return block.postings

    def put(
        self,
        block_id: Hashable,
        postings: PostingList,
        nbytes: int | None = None,
    ) -> None:
        """Insert (or refresh) a block, evicting LRU blocks over budget.

        ``nbytes`` is the block's exact encoded frame length when the
        caller knows it (the store's directory does); otherwise the
        byte cost is estimated by re-encoding the list.
        """
        if self.capacity == 0:
            return
        block = self._block(postings, nbytes)
        cost = self._charge(block)
        with self._lock:
            existing = self._blocks.pop(block_id, None)
            if existing is not None:
                self._held_postings -= existing.pcost
                self._held_bytes -= existing.bcost
            if cost > self.capacity:
                # A single block larger than the whole budget can never
                # be kept — reject it up front rather than flushing
                # every resident block on each read of an oversized key
                # (and without counting phantom evictions: nothing left).
                return
            held = (
                self._held_postings
                if self.unit == "postings"
                else self._held_bytes
            )
            # Make room first: the budget must hold even transiently.
            while held + cost > self.capacity and self._blocks:
                _, evicted = self._blocks.popitem(last=False)
                self._held_postings -= evicted.pcost
                self._held_bytes -= evicted.bcost
                held -= self._charge(evicted)
                self.stats.evictions += 1
            self._blocks[block_id] = block
            self._held_postings += block.pcost
            self._held_bytes += block.bcost

    def invalidate(self, block_id: Hashable) -> None:
        """Drop one block if present (stale after an overwrite)."""
        with self._lock:
            block = self._blocks.pop(block_id, None)
            if block is not None:
                self._held_postings -= block.pcost
                self._held_bytes -= block.bcost

    def clear(self) -> None:
        """Drop every block (e.g. after compaction moves offsets)."""
        with self._lock:
            self._blocks.clear()
            self._held_postings = 0
            self._held_bytes = 0
