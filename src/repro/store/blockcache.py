"""Bounded LRU cache over decoded posting-list blocks.

The segment store pays a disk read + varint decode for every cold key;
this cache keeps the most recently used decoded lists in RAM under a
posting-count budget (the same cost unit the paper and the spilling
index use), so hot keys are served without touching the segments.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from ..errors import StoreError
from ..index.postings import PostingList

__all__ = ["BlockCache", "BlockCacheStats"]


@dataclass
class BlockCacheStats:
    """Hit/miss/eviction counters plus current occupancy."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BlockCache:
    """LRU over decoded blocks, bounded by total postings held.

    Thread-safe: LRU order, occupancy, and counters are guarded by an
    internal lock, and eviction makes room *before* a new block becomes
    visible, so ``held_postings`` never exceeds ``capacity_postings`` at
    any observable instant under concurrent readers.

    Args:
        capacity_postings: maximum postings held across cached blocks;
            ``0`` disables caching (every get is a miss, puts are
            dropped).  Empty lists are charged one posting so the entry
            count stays bounded too.
    """

    def __init__(self, capacity_postings: int) -> None:
        if capacity_postings < 0:
            raise StoreError(
                f"capacity_postings must be >= 0, got {capacity_postings}"
            )
        self.capacity_postings = capacity_postings
        self._blocks: OrderedDict[Hashable, PostingList] = OrderedDict()
        self._held_postings = 0
        self._lock = threading.Lock()
        self.stats = BlockCacheStats()

    @staticmethod
    def _cost(postings: PostingList) -> int:
        return max(1, len(postings))

    @property
    def held_postings(self) -> int:
        """Postings currently held across cached blocks."""
        return self._held_postings

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: Hashable) -> PostingList | None:
        """Return the cached block, refreshing its recency, or None."""
        with self._lock:
            block = self._blocks.get(block_id)
            if block is None:
                self.stats.misses += 1
                return None
            self._blocks.move_to_end(block_id)
            self.stats.hits += 1
            return block

    def put(self, block_id: Hashable, postings: PostingList) -> None:
        """Insert (or refresh) a block, evicting LRU blocks over budget."""
        if self.capacity_postings == 0:
            return
        cost = self._cost(postings)
        with self._lock:
            existing = self._blocks.pop(block_id, None)
            if existing is not None:
                self._held_postings -= self._cost(existing)
            if cost > self.capacity_postings:
                # A single block larger than the whole budget can never
                # be kept — reject it up front rather than flushing
                # every resident block on each read of an oversized key
                # (and without counting phantom evictions: nothing left).
                return
            # Make room first: the budget must hold even transiently.
            while (
                self._held_postings + cost > self.capacity_postings
                and self._blocks
            ):
                _, evicted = self._blocks.popitem(last=False)
                self._held_postings -= self._cost(evicted)
                self.stats.evictions += 1
            self._blocks[block_id] = postings
            self._held_postings += cost

    def invalidate(self, block_id: Hashable) -> None:
        """Drop one block if present (stale after an overwrite)."""
        with self._lock:
            block = self._blocks.pop(block_id, None)
            if block is not None:
                self._held_postings -= self._cost(block)

    def clear(self) -> None:
        """Drop every block (e.g. after compaction moves offsets)."""
        with self._lock:
            self._blocks.clear()
            self._held_postings = 0
