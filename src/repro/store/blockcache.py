"""Bounded LRU cache over decoded posting-list blocks.

The segment store pays a disk read + varint decode for every cold key;
this cache keeps the most recently used decoded lists in RAM under a
posting-count budget (the same cost unit the paper and the spilling
index use), so hot keys are served without touching the segments.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from ..errors import StoreError
from ..index.postings import PostingList

__all__ = ["BlockCache", "BlockCacheStats"]


@dataclass
class BlockCacheStats:
    """Hit/miss/eviction counters plus current occupancy."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BlockCache:
    """LRU over decoded blocks, bounded by total postings held.

    Args:
        capacity_postings: maximum postings held across cached blocks;
            ``0`` disables caching (every get is a miss, puts are
            dropped).  Empty lists are charged one posting so the entry
            count stays bounded too.
    """

    def __init__(self, capacity_postings: int) -> None:
        if capacity_postings < 0:
            raise StoreError(
                f"capacity_postings must be >= 0, got {capacity_postings}"
            )
        self.capacity_postings = capacity_postings
        self._blocks: OrderedDict[Hashable, PostingList] = OrderedDict()
        self._held_postings = 0
        self.stats = BlockCacheStats()

    @staticmethod
    def _cost(postings: PostingList) -> int:
        return max(1, len(postings))

    @property
    def held_postings(self) -> int:
        """Postings currently held across cached blocks."""
        return self._held_postings

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: Hashable) -> PostingList | None:
        """Return the cached block, refreshing its recency, or None."""
        block = self._blocks.get(block_id)
        if block is None:
            self.stats.misses += 1
            return None
        self._blocks.move_to_end(block_id)
        self.stats.hits += 1
        return block

    def put(self, block_id: Hashable, postings: PostingList) -> None:
        """Insert (or refresh) a block, evicting LRU blocks over budget."""
        if self.capacity_postings == 0:
            return
        existing = self._blocks.pop(block_id, None)
        if existing is not None:
            self._held_postings -= self._cost(existing)
        self._blocks[block_id] = postings
        self._held_postings += self._cost(postings)
        while (
            self._held_postings > self.capacity_postings
            and len(self._blocks) > 1
        ):
            _, evicted = self._blocks.popitem(last=False)
            self._held_postings -= self._cost(evicted)
            self.stats.evictions += 1
        # A single block larger than the whole budget cannot be kept.
        if self._held_postings > self.capacity_postings:
            self._blocks.popitem(last=False)
            self._held_postings = 0
            self.stats.evictions += 1

    def invalidate(self, block_id: Hashable) -> None:
        """Drop one block if present (stale after an overwrite)."""
        block = self._blocks.pop(block_id, None)
        if block is not None:
            self._held_postings -= self._cost(block)

    def clear(self) -> None:
        """Drop every block (e.g. after compaction moves offsets)."""
        self._blocks.clear()
        self._held_postings = 0
