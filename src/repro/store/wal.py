"""Write-ahead log for the segment store's incremental write path.

A WAL file is a flat log of segment-record *bodies*::

    [RWAL + version byte]
    [body_len varint][body][crc32(body), 4 bytes little-endian] ...

The framing is byte-compatible with segment records (same varint length
prefix, same crc trailer), so one codec serves both files and a replayed
body decodes with :func:`repro.store.segment.decode_record_body`.
Tombstones are ordinary ``STATUS_TOMBSTONE`` bodies, which keeps the log
a single homogeneous record stream.

Crash safety mirrors the segments: a writer killed mid-append leaves a
torn or checksum-failing tail, and :func:`scan_wal` returns only the
valid prefix.  Replay is idempotent — records re-apply last-write-wins
into the memtable, so a crash *after* a memtable flush completed but
*before* the WAL was deleted merely re-stages already-durable records.

Every append is flushed to the OS (a process kill never loses an
acknowledged write); ``sync=True`` additionally fsyncs per append so
acknowledged writes survive power loss too.
"""

from __future__ import annotations

import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from ..errors import StoreError
from ..index.codec import decode_varint, encode_varint
from .segment import (
    SegmentRecord,
    decode_record_body,
    encode_record_body,
)

__all__ = [
    "WAL_MAGIC",
    "WalScan",
    "WalWriter",
    "scan_wal",
    "wal_ids",
    "wal_path",
]

#: WAL file header: magic + one format-version byte.
WAL_MAGIC = b"RWAL\x01"

_CRC_BYTES = 4
_WAL_PATTERN = re.compile(r"^wal-(\d{6})\.wal$")


def wal_path(directory: Path, wal_id: int) -> Path:
    return Path(directory) / f"wal-{wal_id:06d}.wal"


def wal_ids(directory: Path) -> list[int]:
    """Ids of the WAL files present under ``directory``, ascending."""
    ids = []
    for path in Path(directory).iterdir():
        match = _WAL_PATTERN.match(path.name)
        if match:
            ids.append(int(match.group(1)))
    return sorted(ids)


class WalWriter:
    """Appends record bodies to one WAL file.

    Args:
        path: the WAL file (created fresh; appending to a pre-existing
            log is not supported — the store rotates to a new id after
            every replay or flush instead, so a possibly-torn tail is
            never appended to).
        sync: fsync per append — the same durability knob the segment
            writer exposes per close.
    """

    def __init__(self, path: Path, sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = sync
        if self.path.exists():
            raise StoreError(f"WAL file already exists: {self.path}")
        self._file: BinaryIO = open(self.path, "ab")
        self._file.write(WAL_MAGIC)
        self._file.flush()
        self._offset = len(WAL_MAGIC)

    @property
    def offset(self) -> int:
        return self._offset

    def append(self, record: SegmentRecord) -> int:
        """Append ``record``; returns the frame length written."""
        return self.append_body(encode_record_body(record))

    def append_body(self, body: bytes) -> int:
        """Append an already-encoded record body as one framed entry."""
        frame = bytearray()
        encode_varint(len(body), frame)
        frame.extend(body)
        frame.extend(zlib.crc32(body).to_bytes(_CRC_BYTES, "little"))
        self._file.write(frame)
        # Reach the OS on every append: an acknowledged incremental
        # insert must survive a process kill, not sit in a user-space
        # buffer until rotation.
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())
        self._offset += len(frame)
        return len(frame)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self.sync:
                os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class WalScan:
    """Outcome of replay-scanning one WAL file.

    Attributes:
        records: decoded records of the valid prefix, in append order.
        valid_bytes: length of the valid prefix (header + whole frames).
        truncated: True when a torn/corrupt tail was detected and skipped.
    """

    records: list[SegmentRecord]
    valid_bytes: int
    truncated: bool


def scan_wal(path: Path) -> WalScan:
    """Scan a WAL file, stopping at the first torn or corrupt frame.

    A file holding only a strict prefix of the header (killed at
    creation) is a torn tail with zero records, like segments.

    Raises:
        StoreError: when the file is not a WAL (bad header).
    """
    data = Path(path).read_bytes()
    if len(data) < len(WAL_MAGIC):
        if WAL_MAGIC[: len(data)] == data:
            return WalScan(records=[], valid_bytes=0, truncated=True)
        raise StoreError(f"{path}: not a WAL file (bad header)")
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise StoreError(f"{path}: not a WAL file (bad header)")
    records: list[SegmentRecord] = []
    offset = len(WAL_MAGIC)
    truncated = False
    while offset < len(data):
        try:
            body_len, body_start = decode_varint(data, offset)
        except Exception:
            truncated = True
            break
        end = body_start + body_len + _CRC_BYTES
        if end > len(data):
            truncated = True
            break
        body = data[body_start : body_start + body_len]
        crc = int.from_bytes(data[body_start + body_len : end], "little")
        if zlib.crc32(body) != crc:
            truncated = True
            break
        try:
            records.append(decode_record_body(body))
        except StoreError:
            truncated = True
            break
        offset = end
    return WalScan(records=records, valid_bytes=offset, truncated=truncated)
