"""Persisted sparse offset index per sealed segment (the ``.idx``
sidecar).

Generation 1 of the store rebuilt its offset directory by
checksum-scanning every record body of every segment on open — O(stored
bytes) cold starts.  A sidecar persists exactly what the directory
rebuild needs (offsets, lengths, keys, entry metadata, posting counts —
*not* the posting payloads), so reopening is O(segments) file reads and
record bodies are only touched, and crc-verified, lazily on first read.

The layout is **columnar**, not record-interleaved: each numeric field
is one contiguous fixed-width (u64 little-endian) column, decoded in a
single C-speed ``array.frombytes`` call, with the variable-size parts
(canonical key bytes, flattened contributor ids) in trailing blobs.
A record-interleaved varint layout would spend roughly as many
Python-level decode calls per record as the body scan it replaces —
columnar decoding is what actually buys the cold-start speedup.  For
the same reason keys stay in their canonical *byte* form end to end
(:func:`repro.store.segment.key_to_canonical` — the one serialization
rule shared with overlay hashing): the loader hands the store hashable
``bytes`` slices, and no term-set is materialized on the reopen path.

Layout::

    [RIDX + version byte]
    body:
      varint data_len          valid byte length of the segment file
      varint replaces_up_to    0 for normal segments; for compaction
                               outputs, the highest source segment id
                               the output supersedes (recovery orders
                               segments by (replaces_up_to || own id,
                               own id) so a crashed compaction can never
                               shadow a newer concurrent flush)
      varint n_records
      varint contrib_total     total contributor ids across records
      varint key_blob_len
      offsets         n_records x u64-le
      lengths         n_records x u64-le
      global_dfs      n_records x u64-le
      posting_counts  n_records x u64-le
      key_lens        n_records x u64-le
      contrib_counts  n_records x u64-le
      statuses        n_records x u8
      contributors    contrib_total x u64-le (ascending per record)
      key_blob        key_blob_len bytes (canonical keys, concatenated)
    crc32(body), 4 bytes little-endian

A sidecar is written atomically (temp file + ``os.replace``) and
validated against both its crc and the segment's current file size on
load — any mismatch (torn write, legacy gen-1 segment, a segment that
grew or was truncated after sealing) silently falls back to the full
scan.  For *ordinary* segments the sidecar is purely advisory and never
fsynced: losing one costs a scan, never correctness.  Compaction
outputs are the exception — their ``replaces_up_to`` lineage is what
recovery uses to order them before concurrently-flushed segments, so
the store commits the sidecar *before* renaming the segment into place
and, under its ``sync`` contract, passes ``sync=True`` here to make the
lineage survive power loss along with the segment.
"""

from __future__ import annotations

import os
import sys
import tempfile
import zlib
from array import array
from pathlib import Path
from typing import NamedTuple

from ..errors import StoreError
from ..index.codec import decode_varint, encode_varint
from .segment import (
    STATUS_DK,
    STATUS_NDK,
    STATUS_TOMBSTONE,
    SegmentRecord,
    key_to_canonical,
)

__all__ = [
    "INDEX_MAGIC",
    "IndexedRecord",
    "SegmentColumns",
    "SegmentIndex",
    "load_segment_index",
    "sidecar_path",
    "write_segment_index",
]

#: Sidecar file header: magic + one format-version byte.
INDEX_MAGIC = b"RIDX\x01"

_CRC_BYTES = 4

_U64_MAX = 2**64 - 1


class IndexedRecord(NamedTuple):
    """Directory-rebuild view of one segment record (no payload).

    ``key`` is the *canonical byte form* of the term-set key — the same
    bytes the directory hashes and the sidecar persists; a NamedTuple
    of pre-encoded fields keeps both sealing and reopening cheap."""

    offset: int
    length: int
    key: bytes
    global_df: int
    status_code: int
    contributors: tuple[int, ...]
    posting_count: int

    @classmethod
    def from_record(
        cls, offset: int, length: int, record: SegmentRecord
    ) -> "IndexedRecord":
        return cls(
            offset=offset,
            length=length,
            key=key_to_canonical(record.key),
            global_df=record.global_df,
            status_code=record.status_code,
            contributors=record.contributors,
            posting_count=record.posting_count(),
        )

    @property
    def is_tombstone(self) -> bool:
        return self.status_code == STATUS_TOMBSTONE


class SegmentColumns(NamedTuple):
    """Decoded sidecar columns, parallel lists in record (file) order.
    The loader's native shape: the store's recovery bulk-applies these
    without constructing a per-record object."""

    keys: list[bytes]
    offsets: list[int]
    lengths: list[int]
    global_dfs: list[int]
    status_codes: bytes
    contributors: list[tuple[int, ...]]
    posting_counts: list[int]

    def __len__(self) -> int:  # len(NamedTuple) would be field count
        return len(self.keys)


class SegmentIndex:
    """One segment's sidecar content: the valid data length, the
    compaction lineage, and every record in file order (tombstones
    included — replay order is what makes last-write-wins hold).

    Holds either a record list (the write path's shape) or decoded
    columns (the load path's shape); each view materializes from the
    other on demand.
    """

    __slots__ = ("data_len", "replaces_up_to", "_records", "_columns")

    def __init__(
        self,
        data_len: int,
        replaces_up_to: int,
        records: list[IndexedRecord] | None = None,
        columns: SegmentColumns | None = None,
    ) -> None:
        if (records is None) == (columns is None):
            raise StoreError(
                "pass exactly one of records or columns"
            )
        self.data_len = data_len
        self.replaces_up_to = replaces_up_to
        self._records = records
        self._columns = columns

    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        assert self._columns is not None
        return len(self._columns)

    @property
    def records(self) -> list[IndexedRecord]:
        if self._records is None:
            assert self._columns is not None
            self._records = [
                IndexedRecord(offset, length, key, gdf, status, contrib, pc)
                for key, offset, length, gdf, status, contrib, pc in zip(
                    *self._columns
                )
            ]
        return self._records

    @property
    def columns(self) -> SegmentColumns | None:
        """The columnar view when this index came off disk; ``None``
        for write-path indexes (nothing bulk-applies those)."""
        return self._columns


def sidecar_path(segment_path: Path) -> Path:
    """``segment-NNNNNN.seg`` → ``segment-NNNNNN.idx``."""
    return Path(segment_path).with_suffix(".idx")


def _u64_column(values: list[int], what: str) -> bytes:
    for value in values:
        if not 0 <= value <= _U64_MAX:
            raise StoreError(f"{what} {value} out of u64 range")
    column = array("Q", values)
    if sys.byteorder == "big":
        column.byteswap()
    return column.tobytes()


def write_segment_index(
    path: Path, index: SegmentIndex, *, sync: bool = False
) -> None:
    """Atomically write (or replace) a sidecar.

    Written via a temp file + ``os.replace`` so a concurrent reader (or
    a crash) can never observe a half-written sidecar under the final
    name.  Not fsynced by default — the scan fallback makes a lost
    *advisory* sidecar a performance event, not a durability one.
    ``sync=True`` fsyncs the content before the rename: compaction
    outputs use it so their ``replaces_up_to`` recovery ordering is as
    durable as the segment it orders.
    """
    records = index.records
    statuses = bytearray()
    key_lens: list[int] = []
    contrib_counts: list[int] = []
    contributors: list[int] = []
    for record in records:
        if record.status_code not in (
            STATUS_DK,
            STATUS_NDK,
            STATUS_TOMBSTONE,
        ):
            raise StoreError(f"unknown status code {record.status_code}")
        statuses.append(record.status_code)
        key_lens.append(len(record.key))
        ordered = sorted(record.contributors)
        contrib_counts.append(len(ordered))
        contributors.extend(ordered)
    key_blob = b"".join(record.key for record in records)

    body = bytearray()
    encode_varint(index.data_len, body)
    encode_varint(index.replaces_up_to, body)
    encode_varint(len(records), body)
    encode_varint(len(contributors), body)
    encode_varint(len(key_blob), body)
    body += _u64_column([r.offset for r in records], "offset")
    body += _u64_column([r.length for r in records], "length")
    body += _u64_column([r.global_df for r in records], "global_df")
    body += _u64_column(
        [r.posting_count for r in records], "posting_count"
    )
    body += _u64_column(key_lens, "key length")
    body += _u64_column(contrib_counts, "contributor count")
    body += statuses
    body += _u64_column(contributors, "contributor id")
    body += key_blob

    blob = (
        INDEX_MAGIC
        + bytes(body)
        + zlib.crc32(body).to_bytes(_CRC_BYTES, "little")
    )
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            if sync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_u64_column(body: bytes, offset: int, count: int) -> list[int]:
    column = array("Q")
    column.frombytes(body[offset : offset + 8 * count])
    if sys.byteorder == "big":
        column.byteswap()
    return column.tolist()


def load_segment_index(
    path: Path, segment_size: int
) -> SegmentIndex | None:
    """Parse and validate a sidecar; ``None`` means "fall back to the
    scan" (absent, torn, corrupt, or stale against ``segment_size`` —
    the segment's actual file size must equal the indexed ``data_len``,
    or the sidecar describes a different incarnation of the file)."""
    try:
        data = Path(path).read_bytes()
    except OSError:
        return None
    if (
        len(data) < len(INDEX_MAGIC) + _CRC_BYTES
        or data[: len(INDEX_MAGIC)] != INDEX_MAGIC
    ):
        return None
    body = data[len(INDEX_MAGIC) : -_CRC_BYTES]
    crc = int.from_bytes(data[-_CRC_BYTES:], "little")
    if zlib.crc32(body) != crc:
        return None
    try:
        data_len, offset = decode_varint(body, 0)
        replaces_up_to, offset = decode_varint(body, offset)
        n_records, offset = decode_varint(body, offset)
        contrib_total, offset = decode_varint(body, offset)
        key_blob_len, offset = decode_varint(body, offset)
        expected = (
            offset
            + 6 * 8 * n_records  # six u64 columns
            + n_records  # status bytes
            + 8 * contrib_total
            + key_blob_len
        )
        if expected != len(body):
            return None
        offsets = _read_u64_column(body, offset, n_records)
        offset += 8 * n_records
        lengths = _read_u64_column(body, offset, n_records)
        offset += 8 * n_records
        global_dfs = _read_u64_column(body, offset, n_records)
        offset += 8 * n_records
        posting_counts = _read_u64_column(body, offset, n_records)
        offset += 8 * n_records
        key_lens = _read_u64_column(body, offset, n_records)
        offset += 8 * n_records
        contrib_counts = _read_u64_column(body, offset, n_records)
        offset += 8 * n_records
        statuses = body[offset : offset + n_records]
        offset += n_records
        flat_contribs = tuple(
            _read_u64_column(body, offset, contrib_total)
        )
        offset += 8 * contrib_total
        key_blob = body[offset : offset + key_blob_len]

        keys: list[bytes] = []
        key_append = keys.append
        at = 0
        for key_len in key_lens:
            key_append(key_blob[at : at + key_len])
            at += key_len
        if at != key_blob_len:
            return None
        contributors: list[tuple[int, ...]] = []
        contrib_append = contributors.append
        at = 0
        for count in contrib_counts:
            contrib_append(flat_contribs[at : at + count])
            at += count
        if at != contrib_total:
            return None
    except Exception:
        # Structurally invalid despite a passing crc (version skew):
        # the scan fallback is always correct.
        return None
    if segment_size != data_len:
        return None
    return SegmentIndex(
        data_len=data_len,
        replaces_up_to=replaces_up_to,
        columns=SegmentColumns(
            keys=keys,
            offsets=offsets,
            lengths=lengths,
            global_dfs=global_dfs,
            status_codes=statuses,
            contributors=contributors,
            posting_counts=posting_counts,
        ),
    )
