"""The disk-backed segmented key→posting store — generation 2, a
mini-LSM.

:class:`SegmentStore` layers four structures:

- a **write-ahead log** (:mod:`repro.store.wal`, opt-in via ``wal=True``)
  that makes every acknowledged write crash-durable the moment it
  returns;
- an in-memory **memtable** (:mod:`repro.store.memtable`) absorbing
  WAL-logged writes until its encoded size passes ``memtable_bytes``,
  at which point it is flushed into a fresh sealed segment and the WAL
  is dropped;
- append-only **segment files** (:mod:`repro.store.segment`), each
  sealed one carrying a crc-protected sidecar offset index
  (:mod:`repro.store.segindex`) so reopening a directory is O(segments)
  metadata reads instead of a checksum-scan of every record — record
  bodies are still crc-verified lazily on first read, and segments
  without a valid sidecar (gen-1 snapshots, torn tails) fall back to
  the scan transparently;
- a **compactor** that rewrites the live record set and drops
  superseded/tombstoned records — synchronously in the write path by
  default, or concurrently on a :class:`MaintenanceWorker` thread
  (``background_compaction=True``) that never blocks readers: outputs
  are staged as ``.seg.tmp``, committed by atomic rename plus a brief
  directory swap under the lock, and superseded segments are unlinked
  immediately but their file descriptors retired only once no pinned
  reader still holds them.

Only an *offset directory* — per-key metadata plus the latest record's
location (a segment, or the memtable) — is held in memory, fronted by a
bounded LRU :class:`~repro.store.blockcache.BlockCache` of decoded
lists, budgeted in encoded bytes (posting counts remain as a deprecated
alias).

Crash recovery composes the layers: orphaned temp files from a killed
compaction are deleted, segments are replayed in ``(replaces_up_to,
id)`` order (so a half-committed compaction can never shadow a newer
concurrent flush), torn tails are skipped, and surviving WAL files are
replayed idempotently into the memtable — reopening recovers exactly
the last durable prefix.  The ordering argument leans on the commit
protocol, not luck: a compaction output's lineage sidecar is renamed
into place *before* the segment itself (and fsynced under ``sync``), so
a visible output always carries its ``replaces_up_to``; a sidecar whose
segment never committed is deleted on reopen.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
import warnings
from pathlib import Path
from typing import (
    BinaryIO,
    Callable,
    ContextManager,
    Iterator,
    NamedTuple,
)

from ..errors import StoreError
from ..index.postings import PostingList
from ..obs.trace import get_tracer
from .blockcache import BlockCache, BlockCacheStats
from .maintenance import MaintenanceWorker
from .memtable import MEMTABLE_ID, Memtable
from .segindex import (
    IndexedRecord,
    SegmentColumns,
    SegmentIndex,
    load_segment_index,
    sidecar_path,
    write_segment_index,
)
from .segment import (
    MAGIC,
    STATUS_TOMBSTONE,
    SegmentRecord,
    SegmentWriter,
    encode_record_body,
    framed_length,
    fsync_dir,
    key_from_canonical,
    key_to_canonical,
    read_record_pread,
    scan_segment,
)
from .wal import WalWriter, scan_wal, wal_ids, wal_path

__all__ = ["SegmentStore", "StoredMeta", "DEFAULT_CACHE_BYTES",
           "DEFAULT_MEMTABLE_BYTES"]

_SEGMENT_PATTERN = re.compile(r"^segment-(\d{6})\.seg$")

#: Default segment rollover size; small enough that compaction can drop
#: whole files of dead records at repro scale.
DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024

#: Default decoded-block cache budget, in encoded bytes.
DEFAULT_CACHE_BYTES = 1 * 1024 * 1024

#: Default memtable flush threshold, in encoded bytes.
DEFAULT_MEMTABLE_BYTES = 1 * 1024 * 1024


def _replace_file(source: Path, target: Path) -> None:
    """Atomic rename — the commit point of staged compaction outputs.
    A module-level seam so fault-injection tests can kill a compaction
    mid-swap."""
    os.replace(source, target)


class StoredMeta(NamedTuple):
    """Directory metadata of one live key (everything but the postings).

    A NamedTuple: reopen builds one per stored key, and tuple
    construction keeps the sidecar cold-start path cheap."""

    global_df: int
    status_code: int
    contributors: tuple[int, ...]
    posting_count: int


class _DirEntry(NamedTuple):
    segment_id: int  # MEMTABLE_ID when the record is memtable-resident
    offset: int      # memtable residents: the admission sequence number
    length: int      # encoded frame length (either way)
    meta: StoredMeta


class SegmentStore:
    """Mini-LSM store with an in-memory offset directory.

    Args:
        directory: where segments/WAL live; ``None`` creates a private
            temporary directory that lives as long as the store object.
        cache_postings: deprecated posting-count alias for the block
            cache budget (``0`` disables it).  Mutually exclusive with
            ``cache_bytes``.
        cache_bytes: budget of the decoded-block LRU cache in encoded
            bytes (``0`` disables it); defaults to
            :data:`DEFAULT_CACHE_BYTES` when neither knob is given.
        segment_max_bytes: active segment rollover size.
        compact_dead_ratio: trigger compaction when at least this
            fraction of on-disk record bytes is superseded/tombstoned
            (checked after every write; ``1.0`` disables auto-compaction).
        sync: opt-in durability — fsync every segment file when it is
            closed and every WAL append, so acknowledged writes survive
            power loss, not just process kills.  Advisory sidecar
            indexes are not fsynced (losing one only costs a scan), but
            a compaction output's lineage sidecar is — its
            ``replaces_up_to`` is recovery-ordering correctness, not a
            shortcut — and compaction makes its rewritten segments
            durable before unlinking the sources they replace.
        wal: log every write to a WAL and buffer it in the memtable
            (crash-durable incremental writes); off by default — bulk
            writers (snapshot saves) append straight to segments.
        memtable_bytes: encoded-byte flush threshold of the memtable.
        background_compaction: run compaction on a maintenance thread
            instead of synchronously in the write path.
        maintenance_scope: zero-arg callable returning a context manager
            wrapped around every background run (e.g. a traffic
            accounting ``phase_scope(MAINTENANCE)``).
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        cache_postings: int | None = None,
        cache_bytes: int | None = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        compact_dead_ratio: float = 0.5,
        sync: bool = False,
        wal: bool = False,
        memtable_bytes: int = DEFAULT_MEMTABLE_BYTES,
        background_compaction: bool = False,
        maintenance_scope: Callable[[], ContextManager] | None = None,
    ) -> None:
        if segment_max_bytes < 1:
            raise StoreError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        if not 0.0 < compact_dead_ratio <= 1.0:
            raise StoreError(
                "compact_dead_ratio must be in (0, 1], got "
                f"{compact_dead_ratio}"
            )
        if memtable_bytes < 0:
            raise StoreError(
                f"memtable_bytes must be >= 0, got {memtable_bytes}"
            )
        if cache_postings is not None and cache_bytes is not None:
            raise StoreError(
                "pass either cache_bytes or the deprecated "
                "cache_postings, not both"
            )
        if cache_postings is not None:
            warnings.warn(
                "cache_postings is deprecated; budget the block cache "
                "in encoded bytes with cache_bytes",
                DeprecationWarning,
                stacklevel=2,
            )
            cache = BlockCache(cache_postings)
        else:
            cache = BlockCache(
                capacity_bytes=(
                    cache_bytes
                    if cache_bytes is not None
                    else DEFAULT_CACHE_BYTES
                )
            )
        # One reentrant lock serializes the directory, memtable, writer,
        # reader table, and accounting.  Disk I/O leaves the lock: reads
        # pread through pinned descriptors, background compaction scans
        # and stages outside it and only re-enters for the commit swap.
        self._lock = threading.RLock()
        self._tmp: tempfile.TemporaryDirectory | None = None
        if directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-store-")
            directory = self._tmp.name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.compact_dead_ratio = compact_dead_ratio
        self.sync = sync
        self.cache = cache
        self.wal_enabled = bool(wal)
        self.memtable_bytes_limit = memtable_bytes
        self.memtable = Memtable()
        # The offset directory is keyed by the *canonical byte form* of
        # each term-set key (repro.store.segment.key_to_canonical, the
        # same rule overlay hashing uses).  API-level frozenset keys are
        # encoded at the method boundary; on the sidecar reopen path the
        # keys arrive as ready-made byte slices and no term-set is ever
        # materialized — that is most of the generation-2 cold-start win.
        self._dir: dict[bytes, _DirEntry] = {}
        self._live_bytes = 0
        #: Valid record bytes per on-disk segment (dead ratio is derived:
        #: total - live).
        self._seg_bytes: dict[int, int] = {}
        self._total_record_bytes = 0
        self._compactions = 0
        self._flushes = 0
        self._truncated_tails = 0
        self._wal_truncated_tails = 0
        self._wal_replayed = 0
        self._sidecar_reopens = 0
        self._scan_reopens = 0
        self._writer: SegmentWriter | None = None
        #: Every record appended to the current active segment, in file
        #: order — the sidecar written when it seals.
        self._active_records: list[IndexedRecord] = []
        self._active_id: int | None = None
        self._next_id = 1
        self._wal: WalWriter | None = None
        self._next_wal_id = 1
        #: Open read handles (one per segment read from), pin counts of
        #: in-flight preads, and segments unlinked-but-held by a pin.
        self._readers: dict[int, BinaryIO] = {}
        self._reader_pins: dict[int, int] = {}
        self._retired: set[int] = set()
        #: Serializes compactions (foreground vs. background); never
        #: acquired while holding ``_lock``.
        self._compact_mutex = threading.Lock()
        self._maintenance: MaintenanceWorker | None = None
        if background_compaction:
            self._maintenance = MaintenanceWorker(
                self._background_compact,
                scope=maintenance_scope,
            )
        self._recover()

    # -- startup / recovery ------------------------------------------------------

    def _segment_path(self, segment_id: int) -> Path:
        return self.directory / f"segment-{segment_id:06d}.seg"

    def _segment_ids(self) -> list[int]:
        ids = []
        for path in self.directory.iterdir():
            match = _SEGMENT_PATTERN.match(path.name)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def _recover(self) -> None:
        """Rebuild the offset directory from disk: sidecars where valid,
        scans where not, then replay any surviving WAL."""
        # A killed compaction leaves staged outputs (*.tmp) that were
        # never renamed into place, and possibly a sidecar whose segment
        # never committed; neither was ever visible to the directory.
        # missing_ok: several processes may open one shared snapshot
        # directory at once (the serving worker pool), and a sibling's
        # sidecar self-heal (mkstemp + rename) or its own cleanup can
        # win the race between our glob and our unlink.
        for leftover in self.directory.glob("*.tmp"):
            leftover.unlink(missing_ok=True)
        for idx in self.directory.glob("segment-*.idx"):
            if not idx.with_suffix(".seg").exists():
                idx.unlink(missing_ok=True)
        ids = self._segment_ids()
        loaded: list[tuple[int, SegmentIndex | None]] = []
        for segment_id in ids:
            path = self._segment_path(segment_id)
            index = load_segment_index(
                sidecar_path(path), path.stat().st_size
            )
            loaded.append((segment_id, index))
        # Replay order: compaction outputs carry the highest source id
        # they replace and must apply right after those sources — a
        # crash between output rename and source unlink must not let
        # compacted (older) records shadow a flush that raced the
        # compaction with newer data.
        loaded.sort(
            key=lambda item: (
                item[1].replaces_up_to
                if item[1] is not None and item[1].replaces_up_to
                else item[0],
                item[0],
            )
        )
        for segment_id, index in loaded:
            if index is not None:
                assert index.columns is not None
                self._bulk_apply_columns(segment_id, index.columns)
                self._account_segment(
                    segment_id, index.data_len - len(MAGIC)
                )
                self._sidecar_reopens += 1
                continue
            scan = scan_segment(self._segment_path(segment_id))
            if scan.truncated:
                self._truncated_tails += 1
            for offset, length, record in scan.records:
                self._apply_record(segment_id, offset, length, record)
            self._account_segment(
                segment_id, max(0, scan.valid_bytes - len(MAGIC))
            )
            self._scan_reopens += 1
            self._heal_sidecar(segment_id, scan)
        # Always start fresh ids: never append after a possibly-torn
        # tail, and never collide with a crashed compaction's outputs.
        self._next_id = (ids[-1] + 1) if ids else 1
        # WAL replay — newest-last across files, last write wins, and
        # re-applying records that already made it into a segment is
        # idempotent (the directory is keyed by key, the memtable copy
        # simply supersedes the identical segment copy).
        existing_wals = wal_ids(self.directory)
        tracer = get_tracer()
        if existing_wals and tracer.active:
            with tracer.span(
                "store.wal_replay", wal_files=len(existing_wals)
            ) as span:
                self._replay_wals(existing_wals)
                span.set_attr("records", self._wal_replayed)
        else:
            self._replay_wals(existing_wals)
        self._next_wal_id = (existing_wals[-1] + 1) if existing_wals else 1
        if existing_wals and not self.wal_enabled:
            # A WAL-less open of a WAL-ful directory (legacy readers,
            # snapshot tooling) must not strand durable records in a
            # log it will never rotate: checkpoint them into segments
            # immediately.
            self._flush_memtable_locked()

    def _replay_wals(self, existing_wals: list[int]) -> None:
        for wal_id in existing_wals:
            scan = scan_wal(wal_path(self.directory, wal_id))
            if scan.truncated:
                self._wal_truncated_tails += 1
            for record in scan.records:
                self._memtable_insert(record)
                self._wal_replayed += 1

    def _account_segment(self, segment_id: int, record_bytes: int) -> None:
        self._seg_bytes[segment_id] = record_bytes
        self._total_record_bytes += record_bytes

    def _apply_record(
        self,
        segment_id: int,
        offset: int,
        length: int,
        record: SegmentRecord,
    ) -> None:
        self._apply_indexed(
            segment_id, IndexedRecord.from_record(offset, length, record)
        )

    def _bulk_apply_columns(
        self, segment_id: int, cols: SegmentColumns
    ) -> None:
        """Recovery fast path: :meth:`_apply_indexed` inlined over one
        whole sidecar-indexed segment, fed straight from the decoded
        sidecar columns (no per-record object is ever built).  Correct
        only while the memtable is empty (recovery replays the WAL
        *after* all segments), which lets the loop skip the
        memtable-resident accounting branch and hoist every attribute
        lookup — directory rebuild cost is the cold-start headline, so
        this loop is deliberately flat."""
        directory = self._dir
        pop = directory.pop
        entry_of = _DirEntry
        meta_of = StoredMeta
        tombstone = STATUS_TOMBSTONE
        live = self._live_bytes
        for key, offset, length, global_df, status_code, contributors, (
            posting_count
        ) in zip(
            cols.keys,
            cols.offsets,
            cols.lengths,
            cols.global_dfs,
            cols.status_codes,
            cols.contributors,
            cols.posting_counts,
        ):
            previous = pop(key, None)
            if previous is not None:
                live -= previous.length
            if status_code == tombstone:
                continue
            directory[key] = entry_of(
                segment_id,
                offset,
                length,
                meta_of(
                    global_df, status_code, contributors, posting_count
                ),
            )
            live += length
        self._live_bytes = live

    def _apply_indexed(self, segment_id: int, rec: IndexedRecord) -> None:
        previous = self._dir.pop(rec.key, None)
        if previous is not None and previous.segment_id != MEMTABLE_ID:
            self._live_bytes -= previous.length
        if rec.is_tombstone:
            return
        self._dir[rec.key] = _DirEntry(
            segment_id=segment_id,
            offset=rec.offset,
            length=rec.length,
            meta=StoredMeta(
                global_df=rec.global_df,
                status_code=rec.status_code,
                contributors=rec.contributors,
                posting_count=rec.posting_count,
            ),
        )
        self._live_bytes += rec.length

    def _heal_sidecar(self, segment_id: int, scan) -> None:
        """After a scan fallback, persist the sidecar the segment was
        missing (gen-1 segments index themselves on first reopen).
        Best-effort: torn segments stay sidecar-less (their file size
        exceeds the valid prefix, so a sidecar would be stale by
        construction), and read-only directories are tolerated."""
        path = self._segment_path(segment_id)
        if scan.truncated or path.stat().st_size != scan.valid_bytes:
            return
        records = [
            IndexedRecord.from_record(offset, length, record)
            for offset, length, record in scan.records
        ]
        try:
            write_segment_index(
                sidecar_path(path),
                SegmentIndex(
                    data_len=scan.valid_bytes,
                    replaces_up_to=0,
                    records=records,
                ),
            )
        except OSError:
            pass

    # -- write path --------------------------------------------------------------

    def _allocate_id(self) -> int:
        segment_id = self._next_id
        self._next_id += 1
        return segment_id

    def _active_writer(self) -> SegmentWriter:
        if (
            self._writer is not None
            and self._writer.offset >= self.segment_max_bytes
        ):
            self._seal_active_locked()
            self._active_id = None
        if self._writer is None:
            if self._active_id is None:
                self._active_id = self._allocate_id()
                self._active_records = []
            self._writer = SegmentWriter(
                self._segment_path(self._active_id), sync=self.sync
            )
        return self._writer

    def _seal_active_locked(self) -> None:
        """Close the active segment and persist its sidecar.  The id is
        kept (a later write may reopen and append; the next seal then
        rewrites the sidecar over the fuller record list)."""
        if self._writer is None:
            return
        data_len = self._writer.offset
        self._writer.close()
        self._writer = None
        assert self._active_id is not None
        try:
            write_segment_index(
                sidecar_path(self._segment_path(self._active_id)),
                SegmentIndex(
                    data_len=data_len,
                    replaces_up_to=0,
                    records=list(self._active_records),
                ),
            )
        except OSError:
            pass

    def _append(self, record: SegmentRecord) -> None:
        writer = self._active_writer()
        offset, length = writer.append(record)
        assert self._active_id is not None
        self._seg_bytes[self._active_id] = (
            self._seg_bytes.get(self._active_id, 0) + length
        )
        self._total_record_bytes += length
        indexed = IndexedRecord.from_record(offset, length, record)
        self._active_records.append(indexed)
        self._apply_indexed(self._active_id, indexed)

    def _active_wal(self) -> WalWriter:
        if self._wal is None:
            self._wal = WalWriter(
                wal_path(self.directory, self._next_wal_id),
                sync=self.sync,
            )
            self._next_wal_id += 1
        return self._wal

    def _memtable_insert(
        self, record: SegmentRecord, length: int | None = None
    ) -> int:
        if length is None:
            length = framed_length(len(encode_record_body(record)))
        seq = self.memtable.put(record, length)
        canonical = key_to_canonical(record.key)
        previous = self._dir.pop(canonical, None)
        if previous is not None and previous.segment_id != MEMTABLE_ID:
            self._live_bytes -= previous.length
        if not record.is_tombstone:
            self._dir[canonical] = _DirEntry(
                segment_id=MEMTABLE_ID,
                offset=seq,
                length=length,
                meta=StoredMeta(
                    global_df=record.global_df,
                    status_code=record.status_code,
                    contributors=record.contributors,
                    posting_count=record.posting_count(),
                ),
            )
        return seq

    def _insert(self, record: SegmentRecord) -> None:
        """WAL-aware single-record write (callers hold the lock)."""
        if self.wal_enabled:
            body = encode_record_body(record)
            self._active_wal().append_body(body)
            self._memtable_insert(record, framed_length(len(body)))
            if self.memtable.data_bytes > self.memtable_bytes_limit:
                self._flush_memtable_locked()
        else:
            self._append(record)

    def put(
        self,
        key: frozenset[str],
        postings: PostingList,
        global_df: int,
        status_code: int,
        contributors: tuple[int, ...] = (),
    ) -> None:
        """Write (or supersede) the record for ``key``."""
        canonical = key_to_canonical(key)
        with self._lock:
            previous = self._dir.get(canonical)
            if previous is not None:
                # The superseded record's block is now unreachable but
                # would keep consuming the cache's byte budget.
                self.cache.invalidate(
                    (previous.segment_id, previous.offset)
                )
            self.put_record(
                SegmentRecord.from_postings(
                    key, postings, global_df, status_code, contributors
                )
            )
            # Write-through: the freshly encoded list is the hottest
            # block.
            entry = self._dir[canonical]
            self.cache.put(
                (entry.segment_id, entry.offset),
                postings,
                nbytes=entry.length,
            )

    def put_record(self, record: SegmentRecord) -> None:
        """Write an already-encoded record (raw snapshot copies)."""
        if record.is_tombstone:
            raise StoreError("use delete() to write tombstones")
        with self._lock:
            self._insert(record)
            self.maybe_compact()

    def delete(self, key: frozenset[str]) -> None:
        """Tombstone ``key``; a no-op when the key is not stored."""
        with self._lock:
            entry = self._dir.get(key_to_canonical(key))
            if entry is None:
                return
            self.cache.invalidate((entry.segment_id, entry.offset))
            self._insert(SegmentRecord.tombstone(key))
            self.maybe_compact()

    # -- memtable flush ----------------------------------------------------------

    def _flush_memtable_locked(self) -> None:
        """Write the memtable into sealed segments, then drop the WAL.

        Ordering is the durability argument: the flushed segment is
        sealed (fsynced when ``sync``) *before* any WAL file is deleted,
        so every crash window either keeps the WAL (replay recovers) or
        has the segment durable already."""
        tracer = get_tracer()
        if not tracer.active:
            self._flush_memtable_locked_impl()
            return
        with tracer.span(
            "store.memtable_flush",
            records=len(self.memtable),
            bytes=self.memtable.data_bytes,
        ):
            self._flush_memtable_locked_impl()

    def _flush_memtable_locked_impl(self) -> None:
        stale_blocks = [
            (MEMTABLE_ID, seq) for seq in self.memtable.seqs()
        ]
        if len(self.memtable) > 0:
            for record in self.memtable.records_sorted():
                self._append(record)
            self._seal_active_locked()
            self._active_id = None
            self._flushes += 1
            if self.sync:
                # The sealed segment's directory entry must be durable
                # before the WAL that covers it disappears — fsyncing
                # the file alone does not persist its dirent.
                fsync_dir(self.directory)
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        for wal_id in wal_ids(self.directory):
            wal_path(self.directory, wal_id).unlink()
        self.memtable.clear()
        for block_id in stale_blocks:
            self.cache.invalidate(block_id)

    def checkpoint(self) -> None:
        """Make the on-disk segments self-contained *now*: flush the
        memtable, drop the WAL, and seal the active segment (with its
        sidecar) so a reopen needs neither replay nor scan."""
        with self._lock:
            self._flush_memtable_locked()
            self._seal_active_locked()

    # -- read path ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._dir)

    def __contains__(self, key: frozenset[str]) -> bool:
        with self._lock:
            return key_to_canonical(key) in self._dir

    def keys(self) -> Iterator[frozenset[str]]:
        with self._lock:
            canonicals = list(self._dir)
        return iter([key_from_canonical(kb) for kb in canonicals])

    def items(self) -> list[tuple[frozenset[str], StoredMeta]]:
        """Snapshot of ``(key, metadata)`` pairs — one canonical decode
        per key, cheaper than ``keys()`` plus a ``meta()`` re-encode
        when walking the whole directory (snapshot population)."""
        with self._lock:
            pairs = [
                (canonical, entry.meta)
                for canonical, entry in self._dir.items()
            ]
        return [
            (key_from_canonical(canonical), meta)
            for canonical, meta in pairs
        ]

    def meta(self, key: frozenset[str]) -> StoredMeta | None:
        """Directory metadata of ``key`` (no disk access), or None."""
        with self._lock:
            entry = self._dir.get(key_to_canonical(key))
            return entry.meta if entry is not None else None

    def _reader(self, segment_id: int) -> BinaryIO:
        handle = self._readers.get(segment_id)
        if handle is None:
            handle = open(self._segment_path(segment_id), "rb")
            self._readers[segment_id] = handle
        return handle

    def _pin_reader(self, segment_id: int) -> int:
        """Open (or reuse) the segment's read handle and pin it; returns
        the file descriptor for lock-free pread.  Callers hold the lock
        and must unpin when the pread completes."""
        handle = self._reader(segment_id)
        self._reader_pins[segment_id] = (
            self._reader_pins.get(segment_id, 0) + 1
        )
        return handle.fileno()

    def _unpin_reader(self, segment_id: int) -> None:
        pins = self._reader_pins.get(segment_id, 0) - 1
        if pins > 0:
            self._reader_pins[segment_id] = pins
            return
        self._reader_pins.pop(segment_id, None)
        if segment_id in self._retired:
            # Last reader out closes the descriptor of a compacted-away
            # segment; the file itself was already unlinked.
            self._retired.discard(segment_id)
            handle = self._readers.pop(segment_id, None)
            if handle is not None:
                handle.close()

    def _retire_reader(self, segment_id: int) -> None:
        """A segment was removed from the directory: close its handle if
        no pread is in flight, else defer to the last unpin."""
        if self._reader_pins.get(segment_id, 0) > 0:
            self._retired.add(segment_id)
            return
        handle = self._readers.pop(segment_id, None)
        if handle is not None:
            handle.close()

    def _close_readers(self) -> None:
        for segment_id in list(self._readers):
            self._retire_reader(segment_id)

    def get_postings(self, key: frozenset[str]) -> PostingList | None:
        """Decode the stored posting list of ``key`` (through the block
        cache), or None when the key is absent."""
        canonical = key_to_canonical(key)
        with self._lock:
            entry = self._dir.get(canonical)
        if entry is None:
            return None
        # Probe the block cache outside the store lock (it has its own):
        # cached reads must not queue behind a concurrent cold read's
        # disk I/O.  Block ids (segment ids and memtable sequence
        # numbers) are never reused, so a stale id can only miss.
        block_id = (entry.segment_id, entry.offset)
        cached = self.cache.get(block_id)
        if cached is not None:
            return cached
        record: SegmentRecord | None = None
        pinned: int | None = None
        fileno = -1
        with self._lock:
            # Re-validate: a flush or compaction may have moved the
            # record while the cache was probed.
            entry = self._dir.get(canonical)
            if entry is None:
                return None
            moved_to = (entry.segment_id, entry.offset)
            if moved_to != block_id:
                block_id = moved_to
                cached = self.cache.get(block_id)
                if cached is not None:
                    return cached
            if entry.segment_id == MEMTABLE_ID:
                record = self.memtable.get(key)
                assert record is not None
            else:
                if (
                    entry.segment_id == self._active_id
                    and self._writer is not None
                ):
                    # The active segment's bytes may still sit in the
                    # writer's buffer.
                    self._writer.flush()
                fileno = self._pin_reader(entry.segment_id)
                pinned = entry.segment_id
        try:
            if record is None:
                # pread outside the lock: positional reads don't share
                # seek state, and the pin keeps the descriptor alive
                # across a concurrent compaction's retirement.
                tracer = get_tracer()
                if tracer.active:
                    with tracer.span(
                        "store.segment_read",
                        segment=entry.segment_id,
                        offset=entry.offset,
                        length=entry.length,
                    ):
                        record = read_record_pread(
                            fileno,
                            entry.offset,
                            label=str(self._segment_path(entry.segment_id)),
                        )
                else:
                    record = read_record_pread(
                        fileno,
                        entry.offset,
                        label=str(self._segment_path(entry.segment_id)),
                    )
        finally:
            if pinned is not None:
                with self._lock:
                    self._unpin_reader(pinned)
        # Varint decode outside the lock too.  A racing duplicate fill
        # of the same block id is idempotent (same bytes).
        postings = record.postings()
        with self._lock:
            # Fill only if the record has not moved since the read — a
            # flush or compaction retires the old block id forever, and
            # caching under it would strand a dead resident.
            entry = self._dir.get(canonical)
            if (
                entry is not None
                and (entry.segment_id, entry.offset) == block_id
            ):
                self.cache.put(block_id, postings, nbytes=entry.length)
        return postings

    def get_record(self, key: frozenset[str]) -> SegmentRecord | None:
        """Read the raw latest record of ``key`` (undecoded payload)."""
        with self._lock:
            entry = self._dir.get(key_to_canonical(key))
            if entry is None:
                return None
            if entry.segment_id == MEMTABLE_ID:
                return self.memtable.get(key)
            if (
                entry.segment_id == self._active_id
                and self._writer is not None
            ):
                self._writer.flush()
            handle = self._reader(entry.segment_id)
            return read_record_pread(
                handle.fileno(),
                entry.offset,
                label=str(self._segment_path(entry.segment_id)),
            )

    # -- compaction --------------------------------------------------------------

    @property
    def dead_bytes(self) -> int:
        """On-disk record bytes no longer reachable from the directory
        (superseded copies, tombstones)."""
        return max(0, self._total_record_bytes - self._live_bytes)

    @property
    def dead_ratio(self) -> float:
        total = self._total_record_bytes
        return self.dead_bytes / total if total else 0.0

    def _over_dead_threshold(self) -> bool:
        return (
            self.compact_dead_ratio < 1.0
            and self.dead_bytes > 0
            and self.dead_ratio >= self.compact_dead_ratio
        )

    def maybe_compact(self) -> bool:
        """Compact (or schedule a background compaction) when the
        dead-byte ratio passes the threshold."""
        with self._lock:
            if not self._over_dead_threshold():
                return False
            if self._maintenance is not None:
                self._maintenance.wake()
                return True
            self._compact_locked()
            return True

    def compact(self) -> None:
        """Synchronously rewrite the live record set into fresh
        segments, dropping superseded records and tombstones, and delete
        the old files.  Blocks writers for the duration; prefer
        ``background_compaction=True`` on serving stores."""
        with self._compact_mutex:
            with self._lock:
                self._compact_locked()

    def _compact_locked(self) -> None:
        tracer = get_tracer()
        if not tracer.active:
            self._compact_locked_impl()
            return
        with tracer.span(
            "store.compaction", mode="foreground", phase="maintenance"
        ) as span:
            self._compact_locked_impl()
            span.set_attr("compactions", self._compactions)

    def _compact_locked_impl(self) -> None:
        # The memtable compacts trivially (it is already one record per
        # key); flushing it first lets the rewrite cover everything and
        # leaves the store with empty WAL + a single live segment set.
        self._flush_memtable_locked()
        self._seal_active_locked()
        self._active_id = None
        self._close_readers()
        old_ids = self._segment_ids()
        live_at = {
            (entry.segment_id, entry.offset): key
            for key, entry in self._dir.items()
            if entry.segment_id != MEMTABLE_ID
        }
        survivors: dict[bytes, SegmentRecord] = {}
        for segment_id in old_ids:
            scan = scan_segment(self._segment_path(segment_id))
            for offset, _, record in scan.records:
                key = live_at.get((segment_id, offset))
                if key is not None:
                    survivors[key] = record
        self._dir = {
            key: entry
            for key, entry in self._dir.items()
            if entry.segment_id == MEMTABLE_ID
        }
        self._live_bytes = 0
        for segment_id in old_ids:
            self._total_record_bytes -= self._seg_bytes.pop(segment_id, 0)
        # Deterministic rewrite order (sorted term lists) — the same
        # order a frozenset-keyed directory produced, so compacted
        # segment bytes stay reproducible across generations.
        for record in sorted(
            survivors.values(), key=lambda record: sorted(record.key)
        ):
            self._append(record)
        if self.sync:
            # The sync contract ("acknowledged writes survive power
            # loss") must hold across the unlink below: seal the
            # rewritten segment — close() fsyncs it — and flush its
            # directory entry before the only other copy of the live
            # set is deleted.  Later writes reopen the sealed segment
            # and append (same as after close()).
            self._seal_active_locked()
            fsync_dir(self.directory)
        elif self._writer is not None:
            self._writer.flush()
        for segment_id in old_ids:
            self._segment_path(segment_id).unlink()
            sidecar_path(self._segment_path(segment_id)).unlink(
                missing_ok=True
            )
        self.cache.clear()
        self._compactions += 1

    def _background_compact(self) -> None:
        """Concurrent compaction: snapshot sources under the lock, scan
        and stage outputs outside it, commit with an atomic directory
        swap.  Readers are never blocked — they keep serving from the
        sources until the swap, and pinned descriptors outlive the
        unlink."""
        tracer = get_tracer()
        if not tracer.active:
            self._background_compact_impl()
            return
        with tracer.span(
            "store.compaction", mode="background", phase="maintenance"
        ) as span:
            self._background_compact_impl()
            span.set_attr("compactions", self._compactions)

    def _background_compact_impl(self) -> None:
        with self._compact_mutex:
            with self._lock:
                if not self._over_dead_threshold():
                    return
                self._seal_active_locked()
                self._active_id = None
                source_ids = sorted(self._seg_bytes)
                live_at = {
                    (entry.segment_id, entry.offset): key
                    for key, entry in self._dir.items()
                    if entry.segment_id != MEMTABLE_ID
                }
            if not source_ids:
                return
            replaces_up_to = max(source_ids)
            # Scan sources outside the lock: they are sealed and
            # immutable; concurrent writes land in the new active
            # segment or the memtable.
            survivors: dict[
                bytes, tuple[SegmentRecord, int, int, int]
            ] = {}
            for segment_id in source_ids:
                scan = scan_segment(self._segment_path(segment_id))
                for offset, length, record in scan.records:
                    key = live_at.get((segment_id, offset))
                    if key is not None:
                        survivors[key] = (record, segment_id, offset, length)
            # Stage outputs as .seg.tmp; rename is the commit point.
            outputs: list[tuple[int, list[IndexedRecord], int]] = []
            writer: SegmentWriter | None = None
            out_id = -1
            out_records: list[IndexedRecord] = []

            def finish_output() -> None:
                nonlocal writer
                if writer is None:
                    return
                data_len = writer.offset
                writer.close()
                writer = None
                outputs.append((out_id, list(out_records), data_len))

            for record, _src, _off, _len in sorted(
                survivors.values(),
                key=lambda entry: sorted(entry[0].key),
            ):
                if (
                    writer is not None
                    and writer.offset >= self.segment_max_bytes
                ):
                    finish_output()
                if writer is None:
                    with self._lock:
                        out_id = self._allocate_id()
                    out_records = []
                    writer = SegmentWriter(
                        self._segment_path(out_id).with_suffix(
                            ".seg.tmp"
                        ),
                        sync=self.sync,
                    )
                offset, length = writer.append(record)
                out_records.append(
                    IndexedRecord.from_record(offset, length, record)
                )
            finish_output()
            # Commit each output: the lineage sidecar first, under its
            # final name, *then* the segment rename.  A scan-recovered
            # output would be ordered by its own (highest) id — after
            # any concurrent memtable flush — letting stale compacted
            # records shadow newer writes, so an output must never be
            # visible without its ``replaces_up_to``.  This ordering
            # guarantees that for process kills; under ``sync`` the
            # sidecar and the directory are also fsynced between the
            # two renames, extending the guarantee to power loss.  A
            # crash between the renames leaves an orphan sidecar that
            # recovery deletes (its segment never committed).
            for segment_id, records, data_len in outputs:
                final = self._segment_path(segment_id)
                write_segment_index(
                    sidecar_path(final),
                    SegmentIndex(
                        data_len=data_len,
                        replaces_up_to=replaces_up_to,
                        records=records,
                    ),
                    sync=self.sync,
                )
                if self.sync:
                    fsync_dir(self.directory)
                _replace_file(final.with_suffix(".seg.tmp"), final)
            if outputs and self.sync:
                # Output renames durable before any source is unlinked:
                # power loss past this point must never cost the only
                # remaining copy of the rewritten live set.
                fsync_dir(self.directory)
            # Swap the directory and retire the sources.
            with self._lock:
                for segment_id, records, data_len in outputs:
                    self._account_segment(
                        segment_id, data_len - len(MAGIC)
                    )
                    for rec in records:
                        entry = self._dir.get(rec.key)
                        _, src_id, src_offset, _src_len = survivors[
                            rec.key
                        ]
                        if entry is not None and (
                            entry.segment_id,
                            entry.offset,
                        ) == (src_id, src_offset):
                            self.cache.invalidate((src_id, src_offset))
                            self._dir[rec.key] = _DirEntry(
                                segment_id=segment_id,
                                offset=rec.offset,
                                length=rec.length,
                                meta=entry.meta,
                            )
                        # else: superseded or deleted mid-compaction —
                        # the output copy is dead weight until the next
                        # pass (total/live accounting already says so).
                for segment_id in source_ids:
                    self._total_record_bytes -= self._seg_bytes.pop(
                        segment_id, 0
                    )
                    self._retire_reader(segment_id)
                    self._segment_path(segment_id).unlink()
                    sidecar_path(self._segment_path(segment_id)).unlink(
                        missing_ok=True
                    )
                self._compactions += 1

    def quiesce_maintenance(self, timeout: float | None = 10.0) -> bool:
        """Wait for any scheduled background compaction to finish (tests
        and benchmarks use this for deterministic disk state)."""
        if self._maintenance is None:
            return True
        return self._maintenance.quiesce(timeout=timeout)

    # -- lifecycle / inspection --------------------------------------------------

    def flush(self) -> None:
        """Flush the active segment to the OS (WAL appends are already
        flushed per write)."""
        with self._lock:
            if self._writer is not None:
                self._writer.flush()

    def close(self) -> None:
        """Checkpoint and close every file handle (the store stays
        usable; reads reopen lazily)."""
        with self._lock:
            self._flush_memtable_locked()
            active_id = self._active_id
            self._seal_active_locked()
            # Keep the active id: a later write may append to the sealed
            # segment (its sidecar is rewritten at the next seal).
            self._active_id = active_id
            if self._wal is not None:
                self._wal.close()
                self._wal = None
            self._close_readers()
        if self._maintenance is not None:
            self._maintenance.stop()

    def stored_postings_total(self) -> int:
        """Total postings across live records (directory metadata only)."""
        with self._lock:
            return sum(e.meta.posting_count for e in self._dir.values())

    @property
    def cache_stats(self) -> BlockCacheStats:
        return self.cache.stats

    def stats(self) -> dict[str, object]:
        with self._lock:
            maintenance_runs = (
                self._maintenance.runs if self._maintenance else 0
            )
            maintenance_errors = (
                self._maintenance.errors if self._maintenance else 0
            )
            return {
                "directory": str(self.directory),
                "sync": self.sync,
                "keys": len(self._dir),
                "segments": len(self._segment_ids()),
                "live_bytes": self._live_bytes,
                "dead_bytes": self.dead_bytes,
                "dead_ratio": round(self.dead_ratio, 4),
                "compactions": self._compactions,
                "truncated_tails_skipped": self._truncated_tails,
                "cache_blocks": len(self.cache),
                "cache_postings": self.cache.held_postings,
                "cache_bytes": self.cache.held_bytes,
                "cache_hits": self.cache.stats.hits,
                "cache_misses": self.cache.stats.misses,
                "wal": self.wal_enabled,
                "wal_files": len(wal_ids(self.directory)),
                "wal_replayed_records": self._wal_replayed,
                "wal_truncated_tails_skipped": self._wal_truncated_tails,
                "memtable_keys": len(self.memtable),
                "memtable_bytes": self.memtable.data_bytes,
                "flushes": self._flushes,
                "sidecar_reopens": self._sidecar_reopens,
                "scan_reopens": self._scan_reopens,
                "background_compaction": self._maintenance is not None,
                "maintenance_runs": maintenance_runs,
                "maintenance_errors": maintenance_errors,
            }

    def __repr__(self) -> str:
        return (
            f"SegmentStore(dir={str(self.directory)!r}, "
            f"keys={len(self._dir)}, segments={len(self._segment_ids())})"
        )
