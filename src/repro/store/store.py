"""The disk-backed segmented key→posting store.

:class:`SegmentStore` keeps posting lists in append-only segment files
(:mod:`repro.store.segment`) while holding only an *offset directory* —
per-key metadata plus the (segment, offset) of the latest record — in
memory, fronted by a bounded LRU :class:`~repro.store.blockcache.BlockCache`
of decoded lists.  Overwrites append a superseding record; deletions
append a tombstone; a compacting writer rewrites the live record set into
fresh segments once the dead-byte ratio passes a threshold, dropping
superseded and tombstoned records.

Opening a directory that already contains segments rebuilds the
directory by scanning them in id order (torn tails from a crashed writer
are detected and skipped), which is what makes the build-once /
serve-many snapshot workflow possible.
"""

from __future__ import annotations

import re
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from typing import BinaryIO

from ..errors import StoreError
from ..index.postings import PostingList
from .blockcache import BlockCache, BlockCacheStats
from .segment import (
    STATUS_TOMBSTONE,
    SegmentRecord,
    SegmentWriter,
    read_record_from,
    scan_segment,
)

__all__ = ["SegmentStore", "StoredMeta"]

_SEGMENT_PATTERN = re.compile(r"^segment-(\d{6})\.seg$")

#: Default segment rollover size; small enough that compaction can drop
#: whole files of dead records at repro scale.
DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class StoredMeta:
    """Directory metadata of one live key (everything but the postings)."""

    global_df: int
    status_code: int
    contributors: tuple[int, ...]
    posting_count: int


@dataclass
class _DirEntry:
    segment_id: int
    offset: int
    length: int
    meta: StoredMeta


class SegmentStore:
    """Append-only segmented store with an in-memory offset directory.

    Args:
        directory: where segment files live; ``None`` creates a private
            temporary directory that lives as long as the store object.
        cache_postings: budget of the decoded-block LRU cache, in
            postings (``0`` disables it).
        segment_max_bytes: active segment rollover size.
        compact_dead_ratio: trigger compaction when at least this
            fraction of on-disk record bytes is superseded/tombstoned
            (checked after every write; ``1.0`` disables auto-compaction).
        sync: opt-in durability — fsync every segment file when it is
            closed (rollover, compaction, :meth:`close`), so completed
            segments survive power loss.  Off by default: the format is
            already crash-safe against process kills, and fsync costs
            milliseconds per rollover.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        cache_postings: int = 50_000,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        compact_dead_ratio: float = 0.5,
        sync: bool = False,
    ) -> None:
        if segment_max_bytes < 1:
            raise StoreError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        if not 0.0 < compact_dead_ratio <= 1.0:
            raise StoreError(
                "compact_dead_ratio must be in (0, 1], got "
                f"{compact_dead_ratio}"
            )
        # One reentrant lock serializes directory, writer, read handles,
        # and compaction: readers share OS file handles (seek + read is
        # not atomic per handle) and a budget-pressure spill can append
        # or compact while other threads read.  Disk I/O is the cold
        # path — hot keys are served by the spilling index and the block
        # cache, both outside this lock.
        self._lock = threading.RLock()
        self._tmp: tempfile.TemporaryDirectory | None = None
        if directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-store-")
            directory = self._tmp.name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.compact_dead_ratio = compact_dead_ratio
        self.sync = sync
        self.cache = BlockCache(cache_postings)
        self._dir: dict[frozenset[str], _DirEntry] = {}
        self._live_bytes = 0
        self._dead_bytes = 0
        self._compactions = 0
        self._truncated_tails = 0
        self._writer: SegmentWriter | None = None
        #: Open read handles, one per segment actually read from.
        self._readers: dict[int, BinaryIO] = {}
        self._active_id = 0
        self._recover()

    # -- startup / recovery ------------------------------------------------------

    def _segment_path(self, segment_id: int) -> Path:
        return self.directory / f"segment-{segment_id:06d}.seg"

    def _segment_ids(self) -> list[int]:
        ids = []
        for path in self.directory.iterdir():
            match = _SEGMENT_PATTERN.match(path.name)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def _recover(self) -> None:
        """Rebuild the offset directory from the segments on disk."""
        ids = self._segment_ids()
        for segment_id in ids:
            scan = scan_segment(self._segment_path(segment_id))
            if scan.truncated:
                self._truncated_tails += 1
            for offset, length, record in scan.records:
                self._apply_record(segment_id, offset, length, record)
        # Always start a fresh active segment: never append after a
        # possibly-torn tail.
        self._active_id = (ids[-1] + 1) if ids else 1

    def _apply_record(
        self,
        segment_id: int,
        offset: int,
        length: int,
        record: SegmentRecord,
    ) -> None:
        previous = self._dir.pop(record.key, None)
        if previous is not None:
            self._dead_bytes += previous.length
            self._live_bytes -= previous.length
        if record.is_tombstone:
            self._dead_bytes += length
            return
        self._dir[record.key] = _DirEntry(
            segment_id=segment_id,
            offset=offset,
            length=length,
            meta=StoredMeta(
                global_df=record.global_df,
                status_code=record.status_code,
                contributors=record.contributors,
                posting_count=record.posting_count(),
            ),
        )
        self._live_bytes += length

    # -- write path --------------------------------------------------------------

    def _active_writer(self) -> SegmentWriter:
        if self._writer is None:
            self._writer = SegmentWriter(
                self._segment_path(self._active_id), sync=self.sync
            )
        elif self._writer.offset >= self.segment_max_bytes:
            # Rollover: close() fsyncs the retiring segment when the
            # store's sync knob is on.
            self._writer.close()
            self._active_id += 1
            self._writer = SegmentWriter(
                self._segment_path(self._active_id), sync=self.sync
            )
        return self._writer

    def _append(self, record: SegmentRecord) -> None:
        writer = self._active_writer()
        offset, length = writer.append(record)
        self._apply_record(self._active_id, offset, length, record)

    def put(
        self,
        key: frozenset[str],
        postings: PostingList,
        global_df: int,
        status_code: int,
        contributors: tuple[int, ...] = (),
    ) -> None:
        """Write (or supersede) the record for ``key``."""
        with self._lock:
            previous = self._dir.get(key)
            if previous is not None:
                # The superseded record's block is now unreachable but
                # would keep consuming the cache's posting budget.
                self.cache.invalidate(
                    (previous.segment_id, previous.offset)
                )
            self.put_record(
                SegmentRecord.from_postings(
                    key, postings, global_df, status_code, contributors
                )
            )
            # Write-through: the freshly encoded list is the hottest
            # block.
            entry = self._dir[key]
            self.cache.put((entry.segment_id, entry.offset), postings)

    def put_record(self, record: SegmentRecord) -> None:
        """Write an already-encoded record (raw snapshot copies)."""
        if record.is_tombstone:
            raise StoreError("use delete() to write tombstones")
        with self._lock:
            self._append(record)
            self.maybe_compact()

    def delete(self, key: frozenset[str]) -> None:
        """Tombstone ``key``; a no-op when the key is not stored."""
        with self._lock:
            entry = self._dir.get(key)
            if entry is None:
                return
            self.cache.invalidate((entry.segment_id, entry.offset))
            self._append(SegmentRecord.tombstone(key))
            self.maybe_compact()

    # -- read path ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._dir)

    def __contains__(self, key: frozenset[str]) -> bool:
        with self._lock:
            return key in self._dir

    def keys(self) -> Iterator[frozenset[str]]:
        with self._lock:
            return iter(list(self._dir))

    def meta(self, key: frozenset[str]) -> StoredMeta | None:
        """Directory metadata of ``key`` (no disk access), or None."""
        with self._lock:
            entry = self._dir.get(key)
            return entry.meta if entry is not None else None

    def _reader(self, segment_id: int) -> BinaryIO:
        handle = self._readers.get(segment_id)
        if handle is None:
            handle = open(self._segment_path(segment_id), "rb")
            self._readers[segment_id] = handle
        return handle

    def _close_readers(self) -> None:
        for handle in self._readers.values():
            handle.close()
        self._readers = {}

    def _read_record(self, entry: _DirEntry) -> SegmentRecord:
        # The active segment's bytes may still sit in the writer's
        # buffer; reads go through a separate per-segment handle.
        if entry.segment_id == self._active_id and self._writer is not None:
            self._writer.flush()
        return read_record_from(
            self._reader(entry.segment_id),
            entry.offset,
            label=str(self._segment_path(entry.segment_id)),
        )

    def get_postings(self, key: frozenset[str]) -> PostingList | None:
        """Decode the stored posting list of ``key`` (through the block
        cache), or None when the key is absent."""
        with self._lock:
            entry = self._dir.get(key)
        if entry is None:
            return None
        # Probe the block cache outside the store lock (it has its own):
        # cached reads must not queue behind a concurrent cold read's
        # disk I/O.  Segment ids are never reused, so a stale block id
        # can only miss — it cannot alias fresher data.
        block_id = (entry.segment_id, entry.offset)
        cached = self.cache.get(block_id)
        if cached is not None:
            return cached
        with self._lock:
            # Re-validate: a compaction may have moved the record while
            # the cache was probed.
            entry = self._dir.get(key)
            if entry is None:
                return None
            moved_to = (entry.segment_id, entry.offset)
            if moved_to != block_id:
                block_id = moved_to
                cached = self.cache.get(block_id)
                if cached is not None:
                    return cached
            record = self._read_record(entry)
        # Varint decode outside the lock: only the seek+read needs the
        # shared file handle.  A racing duplicate fill of the same
        # block id is idempotent (same bytes, internally locked cache).
        postings = record.postings()
        with self._lock:
            # Fill only if the record has not moved since the read — a
            # concurrent compaction retires the old block id forever,
            # and caching under it would strand a dead resident that
            # burns posting budget without ever being hit.
            entry = self._dir.get(key)
            if (
                entry is not None
                and (entry.segment_id, entry.offset) == block_id
            ):
                self.cache.put(block_id, postings)
        return postings

    def get_record(self, key: frozenset[str]) -> SegmentRecord | None:
        """Read the raw latest record of ``key`` (undecoded payload)."""
        with self._lock:
            entry = self._dir.get(key)
            if entry is None:
                return None
            return self._read_record(entry)

    # -- compaction --------------------------------------------------------------

    @property
    def dead_ratio(self) -> float:
        total = self._live_bytes + self._dead_bytes
        return self._dead_bytes / total if total else 0.0

    def maybe_compact(self) -> bool:
        """Compact when the dead-byte ratio passes the threshold."""
        with self._lock:
            if (
                self.compact_dead_ratio < 1.0
                and self._dead_bytes > 0
                and self.dead_ratio >= self.compact_dead_ratio
            ):
                self.compact()
                return True
            return False

    def compact(self) -> None:
        """Rewrite the live record set into fresh segments, dropping
        superseded records and tombstones, and delete the old files.

        Each old segment is scanned exactly once (one open + one
        sequential read per file, not one open per record)."""
        # Reentrant lock: maybe_compact() calls this while holding it.
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None
            self._close_readers()
            old_ids = self._segment_ids()
            self._active_id = (old_ids[-1] + 1) if old_ids else 1
            live_at = {
                (entry.segment_id, entry.offset): key
                for key, entry in self._dir.items()
            }
            survivors: dict[frozenset[str], SegmentRecord] = {}
            for segment_id in old_ids:
                scan = scan_segment(self._segment_path(segment_id))
                for offset, _, record in scan.records:
                    key = live_at.get((segment_id, offset))
                    if key is not None:
                        survivors[key] = record
            self._dir = {}
            self._live_bytes = 0
            self._dead_bytes = 0
            for key in sorted(survivors, key=sorted):
                self._append(survivors[key])
            if self._writer is not None:
                self._writer.flush()
            for segment_id in old_ids:
                self._segment_path(segment_id).unlink()
            self.cache.clear()
            self._compactions += 1

    # -- lifecycle / inspection --------------------------------------------------

    def flush(self) -> None:
        """Flush the active segment to the OS."""
        with self._lock:
            if self._writer is not None:
                self._writer.flush()

    def close(self) -> None:
        """Flush and close the active segment and all read handles (the
        store stays usable; reads reopen lazily)."""
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None
            self._close_readers()

    def stored_postings_total(self) -> int:
        """Total postings across live records (directory metadata only)."""
        with self._lock:
            return sum(e.meta.posting_count for e in self._dir.values())

    @property
    def cache_stats(self) -> BlockCacheStats:
        return self.cache.stats

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "directory": str(self.directory),
                "sync": self.sync,
                "keys": len(self._dir),
                "segments": len(self._segment_ids()),
                "live_bytes": self._live_bytes,
                "dead_bytes": self._dead_bytes,
                "dead_ratio": round(self.dead_ratio, 4),
                "compactions": self._compactions,
                "truncated_tails_skipped": self._truncated_tails,
                "cache_blocks": len(self.cache),
                "cache_postings": self.cache.held_postings,
                "cache_hits": self.cache.stats.hits,
                "cache_misses": self.cache.stats.misses,
            }

    def __repr__(self) -> str:
        return (
            f"SegmentStore(dir={str(self.directory)!r}, "
            f"keys={len(self._dir)}, segments={len(self._segment_ids())})"
        )
