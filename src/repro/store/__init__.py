"""Disk-backed segmented key-index store (generation 2: a mini-LSM).

The persistence subsystem behind the ``hdk_disk`` backend and the
``SearchService.save`` / ``SearchService.load`` snapshot workflow:

- :mod:`repro.store.segment` — crash-safe append-only segment files of
  varint/delta-encoded posting-list records;
- :mod:`repro.store.wal` — write-ahead log making incremental writes
  crash-durable before they reach a segment;
- :mod:`repro.store.memtable` — in-memory write buffer between the WAL
  and the segments, flushed under a byte budget;
- :mod:`repro.store.segindex` — persisted sparse offset index per
  sealed segment (O(segments) reopen instead of O(stored bytes));
- :mod:`repro.store.blockcache` — bounded LRU over decoded blocks,
  budgeted in encoded bytes;
- :mod:`repro.store.maintenance` — background worker thread running
  compaction off the write path;
- :mod:`repro.store.store` — :class:`SegmentStore`: offset directory,
  WAL/memtable write path, pread read path, and the compactor;
- :mod:`repro.store.spill` — :class:`SpillingGlobalKeyIndex`: the global
  HDK index under a RAM residency budget, spilling cold lists to
  segments;
- :mod:`repro.store.snapshot` — save/load of a whole indexed service.
"""

from .blockcache import BlockCache, BlockCacheStats
from .maintenance import MaintenanceWorker
from .memtable import MEMTABLE_ID, Memtable
from .segindex import (
    IndexedRecord,
    SegmentColumns,
    SegmentIndex,
    load_segment_index,
    sidecar_path,
    write_segment_index,
)
from .segment import (
    STATUS_DK,
    STATUS_NDK,
    STATUS_TOMBSTONE,
    SegmentRecord,
    SegmentWriter,
    scan_segment,
)
from .spill import SpilledPostings, SpillingGlobalKeyIndex
from .store import SegmentStore, StoredMeta
from .wal import WalWriter, scan_wal

__all__ = [
    "MEMTABLE_ID",
    "STATUS_DK",
    "STATUS_NDK",
    "STATUS_TOMBSTONE",
    "BlockCache",
    "BlockCacheStats",
    "IndexedRecord",
    "MaintenanceWorker",
    "Memtable",
    "SegmentColumns",
    "SegmentIndex",
    "SegmentRecord",
    "SegmentStore",
    "SegmentWriter",
    "SpilledPostings",
    "SpillingGlobalKeyIndex",
    "StoredMeta",
    "WalWriter",
    "load_segment_index",
    "scan_segment",
    "scan_wal",
    "sidecar_path",
    "write_segment_index",
]
