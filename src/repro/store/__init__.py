"""Disk-backed segmented key-index store.

The persistence subsystem behind the ``hdk_disk`` backend and the
``SearchService.save`` / ``SearchService.load`` snapshot workflow:

- :mod:`repro.store.segment` — crash-safe append-only segment files of
  varint/delta-encoded posting-list records;
- :mod:`repro.store.blockcache` — bounded LRU over decoded blocks;
- :mod:`repro.store.store` — :class:`SegmentStore`: offset directory,
  write/read paths, tombstones, and the compacting writer;
- :mod:`repro.store.spill` — :class:`SpillingGlobalKeyIndex`: the global
  HDK index under a RAM posting budget, spilling cold lists to segments;
- :mod:`repro.store.snapshot` — save/load of a whole indexed service.
"""

from .blockcache import BlockCache, BlockCacheStats
from .segment import (
    STATUS_DK,
    STATUS_NDK,
    STATUS_TOMBSTONE,
    SegmentRecord,
    SegmentWriter,
    scan_segment,
)
from .spill import SpilledPostings, SpillingGlobalKeyIndex
from .store import SegmentStore, StoredMeta

__all__ = [
    "STATUS_DK",
    "STATUS_NDK",
    "STATUS_TOMBSTONE",
    "BlockCache",
    "BlockCacheStats",
    "SegmentRecord",
    "SegmentStore",
    "SegmentWriter",
    "SpilledPostings",
    "SpillingGlobalKeyIndex",
    "StoredMeta",
    "scan_segment",
]
