"""The document model.

A :class:`Document` holds the *processed* token sequence (after stop-word
removal and stemming) because every stage of the HDK model — windowing,
key generation, posting lists, BM25 statistics — operates on processed
tokens.  Raw text, when it exists, is processed once at collection build
time and not retained.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["Document"]


@dataclass(frozen=True)
class Document:
    """An immutable processed document.

    Attributes:
        doc_id: globally unique integer id (unique across all peers).
        tokens: processed tokens in document order; order matters because
            proximity filtering slides a window over this sequence.
        title: optional human-readable label (examples print it).
    """

    doc_id: int
    tokens: tuple[str, ...]
    title: str = ""
    _term_counts: Counter = field(
        default=None, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        # Cache term frequencies; Counter construction is the only
        # mutation and happens before the instance escapes.
        object.__setattr__(self, "_term_counts", Counter(self.tokens))

    def __len__(self) -> int:
        """Document length in processed tokens (BM25's ``|d|``)."""
        return len(self.tokens)

    @property
    def distinct_terms(self) -> frozenset[str]:
        """The set of distinct terms occurring in the document."""
        return frozenset(self._term_counts)

    def term_frequency(self, term: str) -> int:
        """Return the number of occurrences of ``term`` in the document."""
        return self._term_counts.get(term, 0)

    def term_frequencies(self) -> dict[str, int]:
        """Return a copy of the full term -> frequency map."""
        return dict(self._term_counts)

    def contains_all(self, terms: frozenset[str]) -> bool:
        """Return True iff every term of ``terms`` occurs in the document
        (ignoring proximity; used by exhaustiveness tests)."""
        counts = self._term_counts
        return all(t in counts for t in terms)
