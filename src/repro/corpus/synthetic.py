"""Synthetic topic-mixture corpus with Zipf-distributed term marginals.

Substitute for the paper's Wikipedia subset (DESIGN.md §4).  The generator
produces documents whose

- global term-frequency distribution follows a Zipf law with configurable
  skew (the paper fits ``a = 1.5`` on Wikipedia), which drives the
  scalability analysis of Section 4, and
- terms co-occur *topically*: each document mixes a few topics, and topic
  vocabularies overlap only in the shared high-frequency band.  This gives
  multi-term keys realistic document frequencies — random independent
  sampling would make almost every pair discriminative and trivialize HDK
  generation.

Tokens are emitted directly in processed form (``"t<number>"`` surface
forms survive the tokenizer; generated tokens bypass stemming), so the
same generator output can be fed to the pipeline-based builders or used
as-is.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import CorpusError
from .collection import DocumentCollection
from .document import Document

__all__ = ["SyntheticCorpusConfig", "SyntheticCorpusGenerator"]


@dataclass(frozen=True)
class SyntheticCorpusConfig:
    """Configuration of the synthetic corpus generator.

    Attributes:
        vocabulary_size: number of distinct terms available globally.
        zipf_skew: the Zipf skew ``a`` of the global rank-frequency law
            (the paper fits 1.5 for single terms on Wikipedia).
        num_topics: number of latent topics.
        topics_per_doc: how many topics a single document mixes.
        shared_fraction: fraction of the vocabulary (taken from the lowest
            Zipf ranks, i.e. the most frequent terms) shared by all topics;
            the rest is partitioned across topics.
        mean_doc_length: average document length in tokens (the paper's
            Wikipedia subset averages 225 words; the reduced-scale default
            is shorter).
        doc_length_jitter: half-width of the uniform jitter around the mean
            length, as a fraction of the mean.
    """

    vocabulary_size: int = 2_000
    zipf_skew: float = 1.5
    num_topics: int = 20
    topics_per_doc: int = 2
    shared_fraction: float = 0.10
    mean_doc_length: int = 100
    doc_length_jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.vocabulary_size < 10:
            raise CorpusError(
                f"vocabulary_size must be >= 10, got {self.vocabulary_size}"
            )
        if self.zipf_skew <= 0:
            raise CorpusError(f"zipf_skew must be > 0, got {self.zipf_skew}")
        if self.num_topics < 1:
            raise CorpusError(f"num_topics must be >= 1, got {self.num_topics}")
        if not 1 <= self.topics_per_doc <= self.num_topics:
            raise CorpusError(
                f"topics_per_doc must be in [1, num_topics], "
                f"got {self.topics_per_doc}"
            )
        if not 0.0 <= self.shared_fraction < 1.0:
            raise CorpusError(
                f"shared_fraction must be in [0, 1), got {self.shared_fraction}"
            )
        if self.mean_doc_length < 5:
            raise CorpusError(
                f"mean_doc_length must be >= 5, got {self.mean_doc_length}"
            )
        if not 0.0 <= self.doc_length_jitter < 1.0:
            raise CorpusError(
                f"doc_length_jitter must be in [0, 1), "
                f"got {self.doc_length_jitter}"
            )


class SyntheticCorpusGenerator:
    """Deterministic (seeded) topic-mixture corpus generator.

    The generator assigns each vocabulary rank a global Zipf weight
    ``r**-a``.  The lowest ranks (most frequent terms) form a *shared band*
    visible to every topic; the remaining ranks are partitioned round-robin
    across topics so each topic's exclusive vocabulary also spans the full
    frequency range.  A document samples its tokens from the union of the
    shared band and its topics' exclusive vocabularies, with probabilities
    proportional to the global Zipf weights.  The resulting corpus keeps
    the configured global skew while concentrating mid-frequency
    co-occurrence inside topics.
    """

    def __init__(
        self, config: SyntheticCorpusConfig | None = None, seed: int = 7
    ) -> None:
        self.config = config or SyntheticCorpusConfig()
        self._seed = seed
        self._terms = [f"t{rank:05d}" for rank in range(1, self.config.vocabulary_size + 1)]
        self._weights = [
            rank ** -self.config.zipf_skew
            for rank in range(1, self.config.vocabulary_size + 1)
        ]
        self._shared_size = max(
            1, int(self.config.vocabulary_size * self.config.shared_fraction)
        )
        self._topic_members = self._partition_topics()
        # Per-topic sampling tables: term indices + cumulative weights.
        self._topic_tables = [
            self._build_table(members) for members in self._topic_members
        ]

    # -- construction helpers ------------------------------------------------

    def _partition_topics(self) -> list[list[int]]:
        """Assign exclusive vocabulary ranks to topics, round-robin.

        Round-robin over ranks gives every topic terms at every frequency
        level, so each topic has its own frequent *and* rare terms.
        """
        shared = list(range(self._shared_size))
        members: list[list[int]] = [
            list(shared) for _ in range(self.config.num_topics)
        ]
        for offset, rank_index in enumerate(
            range(self._shared_size, self.config.vocabulary_size)
        ):
            members[offset % self.config.num_topics].append(rank_index)
        return members

    def _build_table(
        self, member_indices: list[int]
    ) -> tuple[list[int], list[float]]:
        """Return (term indices, cumulative weights) for one topic."""
        cumulative: list[float] = []
        total = 0.0
        for index in member_indices:
            total += self._weights[index]
            cumulative.append(total)
        return member_indices, cumulative

    # -- generation ------------------------------------------------------------

    def _sample_token(
        self, rng: random.Random, table: tuple[list[int], list[float]]
    ) -> str:
        indices, cumulative = table
        point = rng.random() * cumulative[-1]
        # Binary search over the cumulative weights.
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        return self._terms[indices[lo]]

    def _merged_table(
        self, topic_ids: list[int]
    ) -> tuple[list[int], list[float]]:
        """Merge the tables of several topics (dedup shared band)."""
        seen: set[int] = set()
        merged: list[int] = []
        for topic_id in topic_ids:
            for index in self._topic_members[topic_id]:
                if index not in seen:
                    seen.add(index)
                    merged.append(index)
        return self._build_table(merged)

    def generate(
        self, num_documents: int, first_doc_id: int = 0
    ) -> DocumentCollection:
        """Generate ``num_documents`` documents with consecutive ids.

        The output order is already shuffled w.r.t. topics (each document
        independently samples its topic mixture), so round-robin splitting
        across peers yields the paper's "randomly distributed" setting.
        """
        if num_documents < 0:
            raise CorpusError(
                f"num_documents must be >= 0, got {num_documents}"
            )
        rng = random.Random(self._seed)
        config = self.config
        collection = DocumentCollection()
        jitter = int(config.mean_doc_length * config.doc_length_jitter)
        for offset in range(num_documents):
            topic_ids = rng.sample(
                range(config.num_topics), config.topics_per_doc
            )
            table = self._merged_table(topic_ids)
            length = config.mean_doc_length + rng.randint(-jitter, jitter)
            length = max(5, length)
            tokens = tuple(
                self._sample_token(rng, table) for _ in range(length)
            )
            doc_id = first_doc_id + offset
            topic_label = "+".join(str(t) for t in sorted(topic_ids))
            collection.add(
                Document(
                    doc_id=doc_id,
                    tokens=tokens,
                    title=f"synthetic-{doc_id} (topics {topic_label})",
                )
            )
        return collection

    def expected_rank_weight(self, rank: int) -> float:
        """Return the unnormalized Zipf weight ``rank**-a`` (for tests)."""
        if rank < 1:
            raise CorpusError(f"rank must be >= 1, got {rank}")
        return float(rank) ** -self.config.zipf_skew


def _document_entropy_guard(collection: DocumentCollection) -> float:
    """Return the mean distinct-term ratio of a collection.

    Diagnostic used by tests: topic mixing should keep documents lexically
    diverse (ratio well above the degenerate single-term case).
    """
    if len(collection) == 0:
        return 0.0
    ratios = [
        len(doc.distinct_terms) / max(1, len(doc)) for doc in collection
    ]
    return math.fsum(ratios) / len(ratios)
