"""Query-log generation.

Substitute for the paper's Wikipedia query log (08-09/2004).  The paper
samples 3,000 multi-term queries (2-8 terms, average 3.02) that each
produce more than 20 hits on the indexed collection.  This generator
reproduces those properties against any :class:`DocumentCollection`:

- query terms are drawn from a random *window* of a random document, so
  they genuinely co-occur (which determines the shape of the key lattice a
  query maps to);
- the length distribution is configurable and defaults to the paper's
  2..8-term range with mean ~3;
- rejection sampling enforces the >20-hit constraint under the paper's
  disjunctive (set-union) retrieval semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from ..errors import CorpusError
from ..utils import sliding_windows
from .collection import DocumentCollection

__all__ = ["Query", "QueryLogGenerator"]


@dataclass(frozen=True)
class Query:
    """A processed multi-term query.

    Attributes:
        query_id: position in the generated log.
        terms: distinct processed terms (order irrelevant to the model).
    """

    query_id: int
    terms: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.terms)) != len(self.terms):
            raise CorpusError(f"query terms must be distinct, got {self.terms}")

    def __len__(self) -> int:
        return len(self.terms)

    @property
    def term_set(self) -> frozenset[str]:
        return frozenset(self.terms)


#: Weights over query sizes 2..8 chosen to give a mean close to the
#: paper's 3.02 terms per query.
_DEFAULT_SIZE_WEIGHTS: dict[int, float] = {
    2: 0.44,
    3: 0.30,
    4: 0.13,
    5: 0.07,
    6: 0.03,
    7: 0.02,
    8: 0.01,
}


class QueryLogGenerator:
    """Samples realistic queries from a document collection.

    Args:
        collection: the collection queries should be answerable against.
        window_size: the window from which co-occurring terms are drawn;
            using the *indexing* window size makes most sampled queries map
            to keys that actually exist in the HDK index, mirroring real
            logs where users search for phrases that occur in pages.
        min_hits: minimum number of matching documents (set-union
            semantics) for a query to be kept; the paper uses 20.
        size_weights: probability weights over query sizes.
        seed: RNG seed.
    """

    def __init__(
        self,
        collection: DocumentCollection,
        window_size: int = 20,
        min_hits: int = 20,
        size_weights: dict[int, float] | None = None,
        seed: int = 11,
    ) -> None:
        if len(collection) == 0:
            raise CorpusError("cannot sample queries from an empty collection")
        if window_size < 2:
            raise CorpusError(
                f"window_size must be >= 2, got {window_size}"
            )
        if min_hits < 0:
            raise CorpusError(f"min_hits must be >= 0, got {min_hits}")
        self._collection = collection
        self._window_size = window_size
        self._min_hits = min_hits
        if size_weights is None:
            self._size_weights = dict(_DEFAULT_SIZE_WEIGHTS)
        else:
            self._size_weights = dict(size_weights)
        if not self._size_weights:
            raise CorpusError("size_weights must not be empty")
        for size, weight in self._size_weights.items():
            if size < 1 or weight < 0:
                raise CorpusError(
                    f"invalid size weight {size}: {weight}"
                )
        self._rng = random.Random(seed)
        self._doc_ids = collection.doc_ids()
        # Document frequency of every term, for the hit-count filter.
        self._df: dict[str, int] = {}
        for doc in collection:
            for term in doc.distinct_terms:
                self._df[term] = self._df.get(term, 0) + 1

    # -- internal helpers ----------------------------------------------------

    def _sample_size(self) -> int:
        sizes = list(self._size_weights)
        weights = [self._size_weights[s] for s in sizes]
        return self._rng.choices(sizes, weights=weights, k=1)[0]

    def _union_hits(self, terms: Iterable[str]) -> int:
        """Upper-bound-free exact union size would need posting lists; the
        sum of dfs is an upper bound and the max df a lower bound.  We use
        the cheap lower bound (max df) which is exact for single terms and
        conservative for multi-term queries: every accepted query is
        guaranteed to have at least ``min_hits`` union hits."""
        return max((self._df.get(t, 0) for t in terms), default=0)

    def _sample_window_terms(self) -> list[str]:
        doc = self._collection.get(self._rng.choice(self._doc_ids))
        if not doc.tokens:
            return []
        windows = list(sliding_windows(doc.tokens, self._window_size))
        window = self._rng.choice(windows)
        return sorted(set(window))

    # -- public API -----------------------------------------------------------

    def generate(self, num_queries: int, max_attempts: int = 200) -> list[Query]:
        """Generate ``num_queries`` accepted queries.

        Args:
            num_queries: how many queries to return.
            max_attempts: rejection-sampling attempts per query before the
                hit constraint is relaxed for that query (guards against
                pathological collections).

        Raises:
            CorpusError: if the collection cannot produce a single
                multi-term window.
        """
        if num_queries < 0:
            raise CorpusError(f"num_queries must be >= 0, got {num_queries}")
        queries: list[Query] = []
        for query_id in range(num_queries):
            query = self._generate_one(query_id, max_attempts)
            queries.append(query)
        return queries

    def _generate_one(self, query_id: int, max_attempts: int) -> Query:
        best: tuple[int, tuple[str, ...]] | None = None
        for _ in range(max_attempts):
            candidates = self._sample_window_terms()
            if len(candidates) < 2:
                continue
            size = min(self._sample_size(), len(candidates))
            if size < 2:
                continue
            terms = tuple(sorted(self._rng.sample(candidates, size)))
            hits = self._union_hits(terms)
            if hits >= self._min_hits:
                return Query(query_id=query_id, terms=terms)
            if best is None or hits > best[0]:
                best = (hits, terms)
        if best is None:
            raise CorpusError(
                "collection has no window with two distinct terms; "
                "cannot generate multi-term queries"
            )
        # Hit constraint relaxed: return the best candidate seen.
        return Query(query_id=query_id, terms=best[1])

    def average_query_size(self, queries: list[Query]) -> float:
        """Mean query size of a generated log (paper reports 3.02)."""
        if not queries:
            return 0.0
        return sum(len(q) for q in queries) / len(queries)
