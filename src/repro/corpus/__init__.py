"""Document collections: containers, synthetic generation, statistics.

The paper evaluates on a 653,546-document Wikipedia subset and a 2004
Wikipedia query log; neither is shippable here, so this package provides a
topic-mixture synthetic corpus with Zipf-distributed term marginals and a
query-log generator that samples co-occurring terms from document windows
(see DESIGN.md §4 for why these substitutions preserve the paper's
behaviour).  Real text can still be used through
:func:`repro.corpus.collection.build_collection_from_texts`.
"""

from .collection import DocumentCollection, build_collection_from_texts
from .document import Document
from .querylog import Query, QueryLogGenerator
from .stats import CollectionStatistics, compute_statistics
from .synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator

__all__ = [
    "Document",
    "DocumentCollection",
    "build_collection_from_texts",
    "Query",
    "QueryLogGenerator",
    "CollectionStatistics",
    "compute_statistics",
    "SyntheticCorpusConfig",
    "SyntheticCorpusGenerator",
]
