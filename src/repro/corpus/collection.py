"""Document collections and helpers to build them.

A :class:`DocumentCollection` is the unit the paper calls ``D`` — a set of
``M`` documents whose total number of term occurrences is the *sample size*
``D``.  Peers hold disjoint slices of one global collection
(:meth:`DocumentCollection.split`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..errors import CorpusError
from ..text.pipeline import TextPipeline
from .document import Document

__all__ = ["DocumentCollection", "build_collection_from_texts"]


class DocumentCollection:
    """An ordered collection of documents with id-based access.

    Document ids must be unique within the collection; they are global
    (DHT-wide) identifiers, so peers holding slices of the same global
    collection never collide.
    """

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._documents: list[Document] = []
        self._by_id: dict[int, Document] = {}
        for doc in documents:
            self.add(doc)

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._by_id

    # -- construction ------------------------------------------------------

    def add(self, document: Document) -> None:
        """Append ``document``; raises :class:`CorpusError` on id clash."""
        if document.doc_id in self._by_id:
            raise CorpusError(
                f"duplicate document id {document.doc_id} in collection"
            )
        self._documents.append(document)
        self._by_id[document.doc_id] = document

    def extend(self, documents: Iterable[Document]) -> None:
        """Append every document of ``documents`` in order."""
        for doc in documents:
            self.add(doc)

    # -- access ------------------------------------------------------------

    def get(self, doc_id: int) -> Document:
        """Return the document with id ``doc_id``.

        Raises:
            CorpusError: when the id is unknown.
        """
        try:
            return self._by_id[doc_id]
        except KeyError:
            raise CorpusError(f"unknown document id {doc_id}") from None

    def doc_ids(self) -> list[int]:
        """Return all document ids in insertion order."""
        return [doc.doc_id for doc in self._documents]

    def doc_length(self, doc_id: int) -> int:
        """Return the processed length of document ``doc_id``."""
        return len(self.get(doc_id))

    # -- aggregate measures (paper Section 3 notation) ----------------------

    @property
    def size(self) -> int:
        """``M`` — the number of documents."""
        return len(self._documents)

    @property
    def sample_size(self) -> int:
        """``D`` — the total number of term occurrences."""
        return sum(len(doc) for doc in self._documents)

    @property
    def average_document_length(self) -> float:
        """Mean processed document length (BM25's ``avgdl``)."""
        if not self._documents:
            return 0.0
        return self.sample_size / len(self._documents)

    def vocabulary(self) -> set[str]:
        """``T`` — the set of distinct terms in the collection."""
        vocab: set[str] = set()
        for doc in self._documents:
            vocab.update(doc.distinct_terms)
        return vocab

    # -- slicing across peers ------------------------------------------------

    def split(self, parts: int) -> list["DocumentCollection"]:
        """Split into ``parts`` collections, round-robin by position.

        Round-robin matches the paper's "randomly distributed over the
        peers" when the input order is already random (the synthetic
        generator shuffles), while staying deterministic for tests.
        """
        if parts < 1:
            raise CorpusError(f"parts must be >= 1, got {parts}")
        slices: list[DocumentCollection] = [
            DocumentCollection() for _ in range(parts)
        ]
        for position, doc in enumerate(self._documents):
            slices[position % parts].add(doc)
        return slices

    def subset(self, doc_ids: Sequence[int]) -> "DocumentCollection":
        """Return a new collection with the given documents, in id order."""
        return DocumentCollection(self.get(doc_id) for doc_id in doc_ids)


def build_collection_from_texts(
    texts: Iterable[str],
    pipeline: TextPipeline | None = None,
    title_fn: Callable[[int], str] | None = None,
) -> DocumentCollection:
    """Process raw ``texts`` through ``pipeline`` into a collection.

    Args:
        texts: raw document strings.
        pipeline: the text pipeline; defaults to the paper's configuration
            (250 stop words + Porter stemming).
        title_fn: optional function from document index to title.
    """
    pipeline = pipeline or TextPipeline()
    collection = DocumentCollection()
    for index, text in enumerate(texts):
        tokens = tuple(pipeline.process(text))
        title = title_fn(index) if title_fn else f"doc-{index}"
        collection.add(Document(doc_id=index, tokens=tokens, title=title))
    return collection
