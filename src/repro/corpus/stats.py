"""Collection statistics (paper Table 1).

The paper characterizes its Wikipedia subset by the number of documents
``M``, the sample size (total words) ``D``, and the average document size.
:func:`compute_statistics` produces those plus the frequency data the
scalability analysis consumes: term collection frequencies, document
frequencies, and the rank-frequency sequence used to fit the Zipf skew.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .collection import DocumentCollection

__all__ = ["CollectionStatistics", "compute_statistics"]


@dataclass(frozen=True)
class CollectionStatistics:
    """Aggregate statistics of a document collection.

    Attributes:
        num_documents: ``M``.
        sample_size: ``D`` — total term occurrences.
        vocabulary_size: ``|T|`` — distinct terms.
        average_document_length: mean tokens per document.
        collection_frequency: term -> number of occurrences in ``D``.
        document_frequency: term -> number of documents containing it.
        rank_frequency: collection frequencies sorted descending; position
            ``r-1`` holds the frequency of the rank-``r`` term (the input
            to Zipf fitting, Figure 2).
    """

    num_documents: int
    sample_size: int
    vocabulary_size: int
    average_document_length: float
    collection_frequency: dict[str, int] = field(repr=False)
    document_frequency: dict[str, int] = field(repr=False)
    rank_frequency: tuple[int, ...] = field(repr=False)

    def hapax_count(self) -> int:
        """Number of hapax legomena (terms occurring exactly once); the
        scalability proofs truncate the Zipf integral at the first hapax."""
        return sum(1 for f in self.collection_frequency.values() if f == 1)

    def very_frequent_terms(self, ff: int) -> set[str]:
        """Terms with collection frequency strictly above ``ff``
        (Definition 9's very frequent keys, restricted to single terms)."""
        return {
            term
            for term, freq in self.collection_frequency.items()
            if freq > ff
        }

    def frequency_of_rank(self, rank: int) -> int:
        """Collection frequency of the rank-``rank`` term (1-based)."""
        if rank < 1 or rank > len(self.rank_frequency):
            raise ValueError(
                f"rank must be in [1, {len(self.rank_frequency)}], got {rank}"
            )
        return self.rank_frequency[rank - 1]

    def summary_rows(self) -> list[tuple[str, str]]:
        """Rows mirroring paper Table 1 (plus vocabulary size)."""
        return [
            ("total number of documents M", f"{self.num_documents:,}"),
            ("size in words D", f"{self.sample_size:,}"),
            (
                "average document size",
                f"{self.average_document_length:.1f} words",
            ),
            ("vocabulary size |T|", f"{self.vocabulary_size:,}"),
        ]


def compute_statistics(collection: DocumentCollection) -> CollectionStatistics:
    """Compute :class:`CollectionStatistics` in a single pass."""
    collection_frequency: Counter[str] = Counter()
    document_frequency: Counter[str] = Counter()
    sample_size = 0
    for doc in collection:
        counts = doc.term_frequencies()
        sample_size += len(doc)
        for term, count in counts.items():
            collection_frequency[term] += count
            document_frequency[term] += 1
    rank_frequency = tuple(
        sorted(collection_frequency.values(), reverse=True)
    )
    num_documents = len(collection)
    return CollectionStatistics(
        num_documents=num_documents,
        sample_size=sample_size,
        vocabulary_size=len(collection_frequency),
        average_document_length=(
            sample_size / num_documents if num_documents else 0.0
        ),
        collection_frequency=dict(collection_frequency),
        document_frequency=dict(document_frequency),
        rank_frequency=rank_frequency,
    )
