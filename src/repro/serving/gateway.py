"""Stdlib-only asyncio HTTP gateway over a :class:`WorkerPool`.

The network edge of the reproduction: a single-threaded asyncio server
speaking enough HTTP/1.1 (keep-alive, Content-Length bodies) to front
the process-parallel search workers.  Endpoints:

========================  ====================================================
``POST /search``          ``{"query": str, "k": int}`` → one ranked response
``POST /search_batch``    ``{"queries": [str, ...], "k": int}`` → per-query
                          responses + batch aggregates
``GET  /healthz``         readiness: 200 while serving, 503 once draining
``GET  /stats``           gateway metrics + pool counters + a fleet-wide
                          service aggregate + per-worker service
                          statistics, all plain JSON
``GET  /trace/recent``    the most recent stitched traces from the
                          process-wide tracer (see :mod:`repro.obs`)
========================  ====================================================

Tracing: when the global tracer is enabled (``repro serve --trace-dir``)
every ``/search`` request runs under a ``gateway.search`` root span
whose ids ride the pool envelope; the worker's spans ship back in the
reply and are re-parented into one connected tree.  A client-supplied
``X-Trace-Id`` header names the trace (and force-traces that single
request even when the tracer is off); the response always echoes the
trace id back as ``X-Trace-Id``.

Admission control happens *before* any worker is involved, in strict
order: a draining gateway sheds with 503, a client over its token bucket
sheds with 429, and a full in-flight window (``max_inflight``) sheds
with 503 — all three are constant-time fast paths, so overload never
queues unboundedly in front of the pool.

Graceful drain (SIGTERM or :meth:`Gateway.initiate_drain`): the
readiness probe flips unready immediately, new search requests are
refused, every in-flight request runs to completion, and only then does
the listener close — zero in-flight requests are dropped, and a load
balancer watching ``/healthz`` stops routing before the socket goes
away.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError
from ..obs.metrics import LatencyHistogram
from ..obs.trace import get_tracer
from .metrics import MetricsRegistry
from .pool import PoolShutdownError, WorkerCrashError, WorkerPool

__all__ = [
    "Gateway",
    "GatewayConfig",
    "TokenBucket",
]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Endpoint -> allowed method (anything else on the path is a 405).
_ROUTES = {
    "/search": "POST",
    "/search_batch": "POST",
    "/healthz": "GET",
    "/stats": "GET",
    "/trace/recent": "GET",
}


class _HttpError(Exception):
    """A request that must be answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class TokenBucket:
    """Per-client token bucket: ``rate`` requests/second sustained,
    bursts up to ``burst`` (refilled continuously on demand)."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = time.monotonic()

    def try_take(self) -> bool:
        """Take one token if available; refills lazily."""
        now = time.monotonic()
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class GatewayConfig:
    """Gateway knobs.

    Attributes:
        host / port: listen address (``port=0`` picks a free port,
            readable from :attr:`Gateway.port` once serving).
        max_inflight: admission-control window — search requests beyond
            this many simultaneously in the pool are shed with 503.
        rate_limit: per-client sustained requests/second; ``0`` disables
            rate limiting.
        rate_burst: per-client burst size (defaults to ``rate_limit``
            rounded up, minimum 1, when left at 0).
        max_body_bytes: request bodies beyond this are refused with 413.
        max_batch: longest accepted ``/search_batch`` query list.
        default_k: result depth when the request body omits ``"k"``.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_inflight: int = 64
    rate_limit: float = 0.0
    rate_burst: float = 0.0
    max_body_bytes: int = 1 << 20
    max_batch: int = 256
    default_k: int = 10

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.rate_limit < 0:
            raise ConfigurationError(
                f"rate_limit must be >= 0, got {self.rate_limit}"
            )
        if self.rate_burst <= 0:
            self.rate_burst = max(1.0, float(int(self.rate_limit + 0.999)))


class Gateway:
    """The asyncio HTTP server tying admission control, the worker
    pool, and the metrics registry together.

    Run it blocking on the current thread with :meth:`run` (the CLI
    path, with SIGTERM/SIGINT wired to graceful drain), or on a
    background thread with :meth:`start_in_thread` (tests, examples).
    The gateway does not own the pool's lifecycle: the caller starts the
    pool before and shuts it down after.
    """

    def __init__(
        self,
        pool: WorkerPool,
        config: GatewayConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.pool = pool
        self.config = config or GatewayConfig()
        self.metrics = metrics or MetricsRegistry()
        self.port: int | None = None  # set once the listener is bound
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._drain_started = False
        self._inflight = 0
        self._buckets: dict[str, TokenBucket] = {}
        self._ready = threading.Event()
        self._finished = threading.Event()
        self._thread: threading.Thread | None = None
        #: Optional zero-arg callback fired once the listener is bound
        #: (``self.port`` is final); the CLI uses it to announce the
        #: serving address.
        self.on_ready: Any = None

    # -- lifecycle ---------------------------------------------------------------

    def run(self, install_signal_handlers: bool = True) -> None:
        """Serve until drained (blocking)."""
        asyncio.run(self._main(install_signal_handlers))

    def start_in_thread(self, timeout_s: float = 30.0) -> None:
        """Serve on a daemon thread; returns once the listener is bound
        (``self.port`` is then final)."""
        self._thread = threading.Thread(
            target=self.run,
            kwargs={"install_signal_handlers": False},
            name="gateway",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ConfigurationError(
                f"gateway did not start within {timeout_s}s"
            )

    def initiate_drain(self) -> None:
        """Begin graceful drain (thread-safe and signal-safe): healthz
        flips unready now, in-flight requests finish, then the listener
        closes and :meth:`run` returns."""
        self._draining = True  # visible to healthz immediately
        loop = self._loop
        if loop is None or self._finished.is_set():
            return  # not started yet, or already fully drained
        try:
            loop.call_soon_threadsafe(self._schedule_drain)
        except RuntimeError:
            pass  # lost the race against the loop closing: drained

    def wait_finished(self, timeout_s: float | None = None) -> bool:
        """Block until the drain completed and the listener closed."""
        return self._finished.wait(timeout_s)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    async def _main(self, install_signal_handlers: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self.initiate_drain)
        self._ready.set()
        if self.on_ready is not None:
            self.on_ready()
        try:
            await self._stopped.wait()
        finally:
            self._finished.set()

    def _schedule_drain(self) -> None:
        if not self._drain_started:
            self._drain_started = True
            asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        self._draining = True
        # In-flight requests (and their response writes) finish first;
        # the listener closes only after the last one completed, so
        # nothing already admitted is ever dropped.
        while self._inflight > 0:
            await asyncio.sleep(0.005)
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        self._stopped.set()

    # -- connection handling -----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_ip = peer[0] if isinstance(peer, tuple) else "unknown"
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    writer.write(_encode_error(error, close=True))
                    await writer.drain()
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break
                if request is None:
                    break  # clean EOF between requests
                method, path, headers, body = request
                started = time.perf_counter()
                extra_headers: dict[str, str] | None = None
                try:
                    status, payload, extra_headers = await self._dispatch(
                        method, path, headers, body, peer_ip
                    )
                except _HttpError as error:
                    status, payload = error.status, {
                        "error": error.message
                    }
                latency_ms = (time.perf_counter() - started) * 1000.0
                self.metrics.observe(path, status, latency_ms)
                close = (
                    self._draining
                    or headers.get("connection", "").lower() == "close"
                )
                writer.write(
                    _encode_response(status, payload, close, extra_headers)
                )
                await writer.drain()
                if close:
                    break
        except ConnectionError:
            pass  # client went away mid-write; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _HttpError(400, "truncated headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise _HttpError(400, "malformed Content-Length")
        if length > self.config.max_body_bytes:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method, path, headers, body

    # -- request dispatch --------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes,
        peer_ip: str,
    ) -> tuple[int, dict[str, Any], dict[str, str] | None]:
        allowed = _ROUTES.get(path)
        if allowed is None:
            return 404, {"error": f"unknown endpoint {path!r}"}, None
        if method != allowed:
            return 405, {
                "error": f"{path} only accepts {allowed}, got {method}"
            }, None
        if path == "/healthz":
            if self._draining:
                return 503, {"status": "draining", "ready": False}, None
            return 200, {"status": "ok", "ready": True}, None
        if path == "/trace/recent":
            return 200, {"traces": get_tracer().recent_traces()}, None
        if path == "/stats":
            # The per-worker stats fan-out waits on pool futures, so it
            # runs on the default executor instead of blocking the loop.
            payload = await asyncio.get_running_loop().run_in_executor(
                None, self._stats_payload
            )
            return 200, payload, None
        # The two search surfaces: admission control, then the pool.
        if self._draining:
            self.metrics.note_shed("draining")
            return 503, {"error": "draining", "retry_after_s": 1}, None
        client_id = headers.get("x-client-id", peer_ip)
        if not self._admit_client(client_id):
            return 429, {
                "error": f"client {client_id!r} over rate limit",
                "retry_after_s": 1,
            }, None
        if self._inflight >= self.config.max_inflight:
            self.metrics.note_shed("overload")
            return 503, {
                "error": (
                    f"gateway at max_inflight={self.config.max_inflight}"
                ),
                "retry_after_s": 1,
            }, None
        method_name, payload = self._parse_search_body(path, body)
        tracer = get_tracer()
        client_tid = headers.get("x-trace-id") or None
        gw_span = None
        if method_name == "search" and (tracer.active or client_tid):
            # One root per traced request; its ids ride the pool
            # envelope so the worker's spans re-parent under it.  A
            # client-named trace id force-records even when the tracer
            # switch is off (per-request opt-in).
            gw_span = tracer.root(
                "gateway.search",
                trace_id=client_tid,
                force=client_tid is not None,
                client=client_id,
            )
            if gw_span.recording:
                payload["trace"] = {
                    "trace_id": gw_span.trace_id,
                    "parent_span_id": gw_span.span_id,
                }
            else:
                gw_span = None
        trace_headers: dict[str, str] | None = None
        self._inflight += 1
        try:
            if gw_span is not None:
                with gw_span:
                    future = self.pool.submit(method_name, payload)
                    result = await asyncio.wrap_future(future)
                worker_trace = result.pop("trace", None)
                if worker_trace is not None:
                    tracer.adopt(worker_trace.get("spans") or [])
                result["trace_id"] = gw_span.trace_id
                trace_headers = {"X-Trace-Id": gw_span.trace_id}
            else:
                future = self.pool.submit(method_name, payload)
                result = await asyncio.wrap_future(future)
        except WorkerCrashError as exc:
            return 500, {"error": str(exc)}, trace_headers
        except PoolShutdownError as exc:
            return 503, {"error": str(exc)}, trace_headers
        finally:
            self._inflight -= 1
        return 200, result, trace_headers

    def _admit_client(self, client_id: str) -> bool:
        if self.config.rate_limit <= 0:
            return True
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = self._buckets[client_id] = TokenBucket(
                self.config.rate_limit, self.config.rate_burst
            )
        return bucket.try_take()

    def _parse_search_body(
        self, path: str, body: bytes
    ) -> tuple[str, dict[str, Any]]:
        try:
            parsed = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError):
            raise _HttpError(400, "request body is not valid JSON") from None
        if not isinstance(parsed, dict):
            raise _HttpError(400, "request body must be a JSON object")
        k = parsed.get("k", self.config.default_k)
        if not isinstance(k, int) or k < 1:
            raise _HttpError(400, f"'k' must be a positive integer, got {k!r}")
        if path == "/search":
            query = parsed.get("query")
            if not isinstance(query, str) or not query.strip():
                raise _HttpError(400, "'query' must be a non-empty string")
            return "search", {"query": query, "k": k}
        queries = parsed.get("queries")
        if not isinstance(queries, list) or not queries:
            raise _HttpError(400, "'queries' must be a non-empty list")
        if len(queries) > self.config.max_batch:
            raise _HttpError(
                400,
                f"batch of {len(queries)} exceeds max_batch="
                f"{self.config.max_batch}",
            )
        if not all(isinstance(q, str) and q.strip() for q in queries):
            raise _HttpError(400, "'queries' must be non-empty strings")
        return "search_batch", {"queries": queries, "k": k}

    def _stats_payload(self) -> dict[str, Any]:
        # One fan-out, two views: the raw per-worker entries and the
        # fleet-wide "service" aggregate derived from the same replies
        # (no second round of worker stats round-trips).
        workers = self.pool.worker_stats()
        return {
            "gateway": {
                "draining": self._draining,
                "inflight": self._inflight,
                "max_inflight": self.config.max_inflight,
                "rate_limit": self.config.rate_limit,
                "clients_seen": len(self._buckets),
                **self.metrics.snapshot(),
            },
            "service": _aggregate_worker_stats(workers),
            "pool": self.pool.stats(),
            "workers": workers,
        }


def _aggregate_worker_stats(
    workers: list[dict[str, Any]]
) -> dict[str, Any]:
    """Fold per-worker ``SearchService.stats()`` replies into one
    fleet-wide view: summed cache counters, summed traffic totals, and
    the per-worker latency histograms merged (via their lossless
    ``latency_state`` twins) into a single distribution."""
    reporting = [w for w in workers if "error" not in w]
    hits = sum(int(w.get("cache_hits", 0)) for w in reporting)
    misses = sum(int(w.get("cache_misses", 0)) for w in reporting)
    traffic_totals = {
        key: sum(
            int((w.get("traffic") or {}).get(key, 0)) for w in reporting
        )
        for key in (
            "indexing_postings",
            "retrieval_postings",
            "maintenance_postings",
            "total_postings",
            "total_messages",
            "total_hops",
        )
    }
    merged: LatencyHistogram | None = None
    for worker in reporting:
        state = worker.get("latency_state")
        if not state:
            continue
        histogram = LatencyHistogram.from_state(state)
        if merged is None:
            merged = histogram
        else:
            merged.merge(histogram)
    overlay = _merge_overlay_stats(
        [w["overlay"] for w in reporting if isinstance(w.get("overlay"), dict)]
    )
    aggregate = {
        "workers_reporting": len(reporting),
        "workers_errored": len(workers) - len(reporting),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": round(hits / max(1, hits + misses), 4),
        "traffic": traffic_totals,
        "latency": merged.as_dict() if merged is not None else None,
    }
    if overlay is not None:
        aggregate["overlay"] = overlay
    return aggregate


#: Overlay stats keys that describe configuration/shape, not events —
#: identical across workers, so the aggregate takes the first reporting
#: worker's value instead of summing them into nonsense.
_OVERLAY_CONFIG_KEYS = frozenset(
    {"fanout", "clusters", "peers", "path_cache_capacity", "adaptive"}
)


def _merge_overlay_stats(
    overlays: list[dict[str, Any]]
) -> dict[str, Any] | None:
    """Fold per-worker ``hdk_super`` overlay stats into one view.

    Counters sum; config/shape keys take the first worker's value;
    keyed sub-dicts (``sp_load``, ``per_super_peer``) merge *per key*,
    so a super-peer hot on one worker is not averaged away — each
    worker simulates its own network, and summing whole dicts blind to
    their keys was exactly the attribution loss this repairs."""
    if not overlays:
        return None
    merged: dict[str, Any] = {}
    for overlay in overlays:
        for key, value in overlay.items():
            if key in _OVERLAY_CONFIG_KEYS or key == "path_cache_hit_rate":
                merged.setdefault(key, value)
            elif isinstance(value, dict):
                merged.setdefault(key, {})
                _merge_keyed_counts(merged[key], value)
            elif isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            else:
                merged.setdefault(key, value)
    hits = merged.get("path_cache_hits", 0)
    misses = merged.get("path_cache_misses", 0)
    merged["path_cache_hit_rate"] = round(
        hits / max(1, hits + misses), 4
    )
    return merged


def _merge_keyed_counts(
    into: dict[str, Any], update: dict[str, Any]
) -> None:
    """Per-key recursive sum (``per_super_peer`` values are themselves
    counter dicts)."""
    for key, value in update.items():
        if isinstance(value, dict):
            into.setdefault(key, {})
            _merge_keyed_counts(into[key], value)
        elif isinstance(value, (int, float)):
            into[key] = into.get(key, 0) + value
        else:
            into.setdefault(key, value)


def _encode_response(
    status: int,
    payload: dict[str, Any],
    close: bool,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    extra = ""
    if status in (429, 503):
        extra = "Retry-After: 1\r\n"
    for name, value in (extra_headers or {}).items():
        extra += f"{name}: {value}\r\n"
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        f"{extra}\r\n"
    )
    return head.encode("latin-1") + body


def _encode_error(error: _HttpError, close: bool) -> bytes:
    return _encode_response(
        error.status, {"error": error.message}, close
    )
