"""The serving subsystem: a network edge for the reproduction.

``repro.serving`` turns the library-invoked :class:`repro.SearchService`
into a deployable search tier:

- :mod:`repro.serving.pool` — a pool of worker *processes*, each loading
  the same :meth:`SearchService.save` snapshot (true multi-core; the GIL
  ceiling of the thread benches does not apply);
- :mod:`repro.serving.gateway` — a stdlib-only asyncio HTTP gateway
  (``POST /search``, ``POST /search_batch``, ``GET /healthz``,
  ``GET /stats``) with admission control, per-client token-bucket rate
  limits, and graceful SIGTERM drain;
- :mod:`repro.serving.metrics` — latency histograms + QPS registry
  surfaced on ``/stats``;
- :mod:`repro.serving.loadgen` — the closed-loop load generator the
  serving bench and the CI smoke drive the gateway with.

Wired to the CLI as ``repro serve`` (see :mod:`repro.cli`); the
end-to-end walkthrough is ``examples/serving_gateway.py``.
"""

from importlib import import_module
from typing import Any

#: Public name -> defining submodule, resolved lazily (PEP 562).  Lazy
#: so ``python -m repro.serving.loadgen`` does not import the package's
#: other submodules first (runpy warns when the target module is
#: already in ``sys.modules``), and so importing the package stays free
#: of asyncio/multiprocessing machinery until it is actually used.
_EXPORTS = {
    "Gateway": "gateway",
    "GatewayConfig": "gateway",
    "TokenBucket": "gateway",
    "LoadReport": "loadgen",
    "run_load": "loadgen",
    "run_smoke": "loadgen",
    "wait_ready": "loadgen",
    "LatencyHistogram": "metrics",
    "MetricsRegistry": "metrics",
    "PoolShutdownError": "pool",
    "WorkerCrashError": "pool",
    "WorkerPool": "pool",
    "WorkerSpec": "pool",
}


def __getattr__(name: str) -> Any:
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    return getattr(import_module(f".{submodule}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "Gateway",
    "GatewayConfig",
    "LatencyHistogram",
    "LoadReport",
    "MetricsRegistry",
    "PoolShutdownError",
    "TokenBucket",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerSpec",
    "run_load",
    "run_smoke",
    "wait_ready",
]
