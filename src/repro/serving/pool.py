"""Process-parallel ``SearchService`` worker pool.

The serving path's unit of parallelism is a *process*, not a thread:
each worker loads its own snapshot via :meth:`SearchService.load` and
answers queries fully independently, so a pool of N workers uses N cores
— the GIL ceiling the thread benches hit does not apply.  The gateway
(:mod:`repro.serving.gateway`) talks to the pool through
:meth:`WorkerPool.submit`, which returns a
:class:`concurrent.futures.Future` it can await.

Design:

- every worker process runs :func:`_worker_main`: load the snapshot,
  announce readiness, then loop over a private task queue dispatching
  ``search`` / ``search_batch`` / ``stats`` requests and pushing plain
  picklable dicts onto one shared result queue;
- the pool keeps a private task queue *per worker* so it always knows
  which in-flight requests are assigned where — when a worker dies, only
  its own requests fail (:class:`WorkerCrashError`), every other
  in-flight request is untouched, and a fresh process is respawned into
  the same slot.  The monitor thread only *detects* the death; it routes
  a sentinel through the shared result queue so the collector (the
  queue's single consumer) dooms the slot strictly after every reply the
  dead worker delivered before dying — a completed request is never
  failed just because its reply was still in the queue;
- dispatch is least-loaded: a new request goes to the worker with the
  fewest outstanding requests (ties to the lowest slot), which keeps the
  pool busy under a closed-loop client population without any work
  stealing;
- results marshal as plain dicts (ints, floats, strings, lists), never
  live service objects, so a response crosses the process boundary and
  then the JSON boundary untouched — and worker ``stats`` payloads ride
  the same rule via the pickle-safe :meth:`SearchService.stats`.

The ``crash`` method is deliberate fault injection (the worker hard-exits
without cleanup) used by the respawn tests and chaos drills; the gateway
never routes it.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path
from queue import Empty
from typing import Any

from ..errors import ConfigurationError, ReproError
from ..obs.trace import get_tracer

__all__ = [
    "PoolShutdownError",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerSpec",
    "response_payload",
]

#: Queue poll granularity for the collector/monitor threads (seconds).
_POLL_S = 0.05


class WorkerCrashError(ReproError):
    """A worker process died while this request was assigned to it."""


class PoolShutdownError(ReproError):
    """The pool is shut down and accepts no new requests."""


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its service.

    Picklable by construction — it crosses the process boundary at
    spawn time.

    Attributes:
        snapshot: the :meth:`SearchService.save` directory every worker
            loads (read-only: N workers share one snapshot).
        backend: backend-name override for the load (``None`` keeps the
            snapshot manifest's backend, typically ``hdk_disk``).
        memory_budget: deprecated posting-count RAM budget for
            disk-backed workers; prefer ``memory_budget_bytes``.
        memory_budget_bytes: RAM residency budget for disk-backed
            workers, in encoded posting bytes.
        cache_capacity: per-worker LRU query-cache size.
        link_latency_s: simulated per-hop link latency applied to the
            worker's serving phase — the WAN-shaped regime the repo's
            parallelism benches measure in.
        source_peer: the querying peer name (defaults to the service's
            first peer).
    """

    snapshot: str
    backend: str | None = None
    memory_budget: int | None = None
    memory_budget_bytes: int | None = None
    cache_capacity: int | None = 256
    link_latency_s: float = 0.0
    source_peer: str | None = None


def response_payload(response: Any) -> dict[str, Any]:
    """Flatten a :class:`~repro.engine.backends.SearchResponse` into the
    plain dict that crosses the process and JSON boundaries.

    Scores stay full-precision floats: JSON round-trips Python floats
    exactly, so the gateway's results are byte-identical to a direct
    in-process :meth:`SearchService.search` on the same snapshot.
    """
    return {
        "backend": response.backend,
        "k": response.k,
        "results": [[r.doc_id, r.score] for r in response.results],
        "keys_looked_up": response.keys_looked_up,
        "keys_found": response.keys_found,
        "postings_transferred": response.postings_transferred,
        "cache_hit": response.cache_hit,
        "elapsed_ms": round(response.elapsed_ms, 3),
    }


def _worker_main(
    worker_id: int,
    spec: WorkerSpec,
    tasks: "multiprocessing.queues.Queue",
    results: "multiprocessing.queues.Queue",
) -> None:
    """Worker process entry point: load the snapshot, then serve the
    task queue until the ``None`` shutdown sentinel arrives."""
    # Import here: under the spawn start method this runs in a fresh
    # interpreter, and the parent's module state is not inherited.
    from ..engine.service import SearchService

    try:
        service = SearchService.load(
            spec.snapshot,
            backend=spec.backend,
            memory_budget=spec.memory_budget,
            memory_budget_bytes=spec.memory_budget_bytes,
            cache_capacity=spec.cache_capacity,
        )
        service.network.link_latency_s = spec.link_latency_s
    except Exception as exc:  # surface load failures to the pool
        results.put(("__load_failed__", worker_id, repr(exc)))
        return
    results.put(("__ready__", worker_id, os.getpid()))
    while True:
        item = tasks.get()
        if item is None:
            return
        request_id, method, payload = item
        try:
            if method == "search":
                trace = payload.get("trace")
                if trace:
                    # The gateway's trace continues here: open a forced
                    # root parented on the gateway span (force records
                    # even though this process's tracer is disabled),
                    # then ship the finished spans back in the reply so
                    # the gateway can re-parent them into its trace.
                    tracer = get_tracer()
                    with tracer.root(
                        "worker.search",
                        trace_id=trace["trace_id"],
                        parent_id=trace.get("parent_span_id"),
                        force=True,
                        worker=worker_id,
                        pid=os.getpid(),
                    ):
                        response = service.search(
                            payload["query"],
                            k=payload.get("k", 10),
                            source_peer=spec.source_peer,
                        )
                    out = response_payload(response)
                    out["trace"] = {
                        "trace_id": trace["trace_id"],
                        "spans": tracer.take_trace(trace["trace_id"]),
                    }
                else:
                    response = service.search(
                        payload["query"],
                        k=payload.get("k", 10),
                        source_peer=spec.source_peer,
                    )
                    out = response_payload(response)
            elif method == "search_batch":
                report = service.search_batch(
                    payload["queries"],
                    k=payload.get("k", 10),
                    source_peer=spec.source_peer,
                )
                out = {
                    "responses": [
                        response_payload(r) for r in report.responses
                    ],
                    "cache_hits": report.cache_hits,
                    "cache_misses": report.cache_misses,
                    "elapsed_ms": round(report.elapsed_ms, 3),
                }
            elif method == "stats":
                out = service.stats()
            elif method == "crash":
                # Fault injection: die the way a segfaulting or
                # OOM-killed worker would — no reply, no cleanup.
                # Flush replies already handed to the queue's feeder
                # thread first, so the crash loses exactly the requests
                # that never completed.
                results.close()
                results.join_thread()
                os._exit(1)
            else:
                raise ValueError(f"unknown method {method!r}")
            results.put((request_id, "ok", out))
        except Exception as exc:
            results.put((request_id, "error", repr(exc)))


class _WorkerSlot:
    """One pool slot: a live process, its task queue, and the ids of the
    requests currently assigned to it."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process: multiprocessing.process.BaseProcess | None = None
        self.tasks: Any = None
        self.assigned: set[int] = set()
        self.served = 0
        # True between the monitor noticing this slot's process died and
        # the collector finishing the doom + respawn for it.
        self.dying = False


class WorkerPool:
    """A fixed-size pool of snapshot-loaded ``SearchService`` processes.

    Args:
        spec: the worker build recipe (snapshot path + knobs).
        size: number of worker processes.
        start_method: multiprocessing start method; ``spawn`` (the
            default) gives every worker a fresh interpreter — no
            fork-with-threads hazards, and the same behaviour on every
            platform.
        ready_timeout_s: how long :meth:`start` waits for all workers to
            finish loading their snapshot.

    Lifecycle: :meth:`start` → :meth:`submit` freely (thread-safe) →
    :meth:`shutdown`.  A worker death at any point fails only its own
    assigned requests and triggers an automatic respawn.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        size: int,
        start_method: str = "spawn",
        ready_timeout_s: float = 60.0,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        if not Path(spec.snapshot).is_dir():
            raise ConfigurationError(
                f"snapshot directory not found: {spec.snapshot}"
            )
        self.spec = spec
        self.size = size
        self.ready_timeout_s = ready_timeout_s
        self._ctx = multiprocessing.get_context(start_method)
        self._results: Any = self._ctx.Queue()
        self._slots = [_WorkerSlot(i) for i in range(size)]
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._next_id = 0
        self._respawns = 0
        self._completed = 0
        self._errors = 0
        self._started = False
        self._closed = False
        self._ready = threading.Event()
        self._collector: threading.Thread | None = None
        self._monitor: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker and block until all report ready."""
        if self._started:
            raise ConfigurationError("pool already started")
        self._started = True
        for slot in self._slots:
            self._spawn(slot)
        self._collector = threading.Thread(
            target=self._collect_loop, name="pool-collector", daemon=True
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="pool-monitor", daemon=True
        )
        self._monitor.start()
        if not self._ready.wait(self.ready_timeout_s):
            self.shutdown()
            raise ConfigurationError(
                f"workers not ready within {self.ready_timeout_s}s"
            )

    def _spawn(self, slot: _WorkerSlot) -> None:
        slot.tasks = self._ctx.Queue()
        slot.process = self._ctx.Process(
            target=_worker_main,
            args=(slot.worker_id, self.spec, slot.tasks, self._results),
            name=f"search-worker-{slot.worker_id}",
            daemon=True,
        )
        slot.process.start()

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop accepting work, fail whatever is still pending, and
        terminate the workers.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
            for slot in self._slots:
                slot.assigned.clear()
        for future in pending:
            future.set_exception(PoolShutdownError("pool shut down"))
        for slot in self._slots:
            if slot.tasks is not None:
                try:
                    slot.tasks.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + timeout_s
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        # The collector/monitor threads see _closed and exit; daemon
        # threads, so no join deadline can hang interpreter exit.

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- request surface ---------------------------------------------------------

    def submit(self, method: str, payload: dict[str, Any]) -> "Future[Any]":
        """Dispatch one request to the least-loaded worker.

        Returns a future resolving to the worker's plain-dict reply;
        it fails with :class:`WorkerCrashError` if the assigned worker
        dies first, or whatever error the worker reported.
        """
        future: Future = Future()
        with self._lock:
            if self._closed or not self._started:
                raise PoolShutdownError(
                    "pool is not accepting requests"
                    if self._closed
                    else "pool not started"
                )
            request_id = self._next_id
            self._next_id += 1
            slot = min(
                self._slots,
                key=lambda s: (len(s.assigned), s.worker_id),
            )
            slot.assigned.add(request_id)
            self._pending[request_id] = future
        slot.tasks.put((request_id, method, payload))
        return future

    def submit_to(
        self, worker_id: int, method: str, payload: dict[str, Any]
    ) -> "Future[Any]":
        """Dispatch to one specific worker (per-worker stats fan-out)."""
        future: Future = Future()
        with self._lock:
            if self._closed or not self._started:
                raise PoolShutdownError("pool is not accepting requests")
            slot = self._slots[worker_id]
            request_id = self._next_id
            self._next_id += 1
            slot.assigned.add(request_id)
            self._pending[request_id] = future
        slot.tasks.put((request_id, method, payload))
        return future

    # -- background threads ------------------------------------------------------

    def _collect_loop(self) -> None:
        """Drain the shared result queue, completing futures."""
        while not self._closed:
            try:
                item = self._results.get(timeout=_POLL_S)
            except (Empty, OSError, ValueError):
                continue
            tag, *rest = item
            if tag == "__ready__":
                self._note_ready()
                continue
            if tag == "__worker_died__":
                worker_id, exitcode = rest
                self._respawn_slot(self._slots[worker_id], exitcode)
                continue
            if tag == "__load_failed__":
                worker_id, detail = rest
                self._fail_slot(
                    self._slots[worker_id],
                    WorkerCrashError(
                        f"worker {worker_id} failed to load: {detail}"
                    ),
                )
                # Leave the slot dead-on-arrival: the monitor respawns
                # it, and a persistent load failure shows up as respawn
                # churn in stats() rather than a silent hang.
                continue
            request_id, status, out = item
            with self._lock:
                future = self._pending.pop(request_id, None)
                for slot in self._slots:
                    if request_id in slot.assigned:
                        slot.assigned.discard(request_id)
                        slot.served += status == "ok"
                if status == "ok":
                    self._completed += 1
                else:
                    self._errors += 1
            if future is None:
                continue  # failed by a crash/shutdown path already
            if status == "ok":
                future.set_result(out)
            else:
                future.set_exception(ReproError(f"worker error: {out}"))

    def _note_ready(self) -> None:
        with self._lock:
            alive = sum(
                1
                for slot in self._slots
                if slot.process is not None and slot.process.is_alive()
            )
        if alive >= self.size:
            self._ready.set()

    def _monitor_loop(self) -> None:
        """Watch worker liveness.  On a death, enqueue a sentinel on the
        *result* queue rather than dooming the slot here: the collector
        is the queue's single consumer, so by the time it dequeues the
        sentinel it has already completed every reply the dead worker
        managed to deliver before dying — only requests whose replies
        are truly lost get failed."""
        while not self._closed:
            time.sleep(_POLL_S)
            for slot in self._slots:
                process = slot.process
                if (
                    self._closed
                    or slot.dying
                    or process is None
                    or process.is_alive()
                ):
                    continue
                with self._lock:
                    if self._closed or slot.dying:
                        continue
                    slot.dying = True
                    exitcode = process.exitcode
                try:
                    self._results.put(
                        ("__worker_died__", slot.worker_id, exitcode)
                    )
                except (OSError, ValueError):
                    return  # result queue torn down: shutting down

    def _respawn_slot(self, slot: _WorkerSlot, exitcode: Any) -> None:
        """Fail a dead worker's still-assigned requests and start a
        replacement process in its slot (collector thread only)."""
        error = WorkerCrashError(
            f"worker {slot.worker_id} died (exitcode={exitcode})"
        )
        # Doom-collection and queue swap must be one atomic step:
        # submit() records an assignment under the lock and then puts
        # onto slot.tasks, so any request is either collected here (its
        # queue entry goes to the abandoned dead queue, harmlessly) or
        # recorded after the swap and enqueued for the replacement
        # worker.  Nothing can slip between and hang forever.
        with self._lock:
            if self._closed:
                return
            doomed = self._collect_doomed(slot)
            fresh_tasks = self._ctx.Queue()
            slot.tasks = fresh_tasks
            self._respawns += 1
        for future in doomed:
            future.set_exception(error)
        replacement = self._ctx.Process(
            target=_worker_main,
            args=(slot.worker_id, self.spec, fresh_tasks, self._results),
            name=f"search-worker-{slot.worker_id}",
            daemon=True,
        )
        # Start before publishing: shutdown() joins slot.process, and an
        # unstarted Process object cannot be joined.
        replacement.start()
        if self._closed:
            # shutdown() raced us and may have missed this replacement's
            # queue; don't leave an orphan serving nothing.
            replacement.terminate()
            replacement.join(1.0)
            return
        slot.process = replacement
        slot.dying = False

    def _fail_slot(self, slot: _WorkerSlot, error: Exception) -> None:
        """Fail every request assigned to ``slot`` — and nothing else."""
        with self._lock:
            doomed = self._collect_doomed(slot)
        for future in doomed:
            future.set_exception(error)

    def _collect_doomed(self, slot: _WorkerSlot) -> list[Future]:
        """Pop ``slot``'s assigned requests from the pending table
        (caller holds the lock); returns their futures to fail."""
        doomed = [
            self._pending.pop(request_id)
            for request_id in sorted(slot.assigned)
            if request_id in self._pending
        ]
        slot.assigned.clear()
        self._errors += len(doomed)
        return doomed

    # -- inspection --------------------------------------------------------------

    @property
    def alive_workers(self) -> int:
        return sum(
            1
            for slot in self._slots
            if slot.process is not None and slot.process.is_alive()
        )

    def stats(self) -> dict[str, Any]:
        """Pool-level counters (plain data; no worker round-trip)."""
        with self._lock:
            return {
                "size": self.size,
                "alive": self.alive_workers,
                "respawns": self._respawns,
                "completed": self._completed,
                "errors": self._errors,
                "inflight": len(self._pending),
                "per_worker": [
                    {
                        "worker": slot.worker_id,
                        "assigned": len(slot.assigned),
                        "served": slot.served,
                    }
                    for slot in self._slots
                ],
            }

    def worker_stats(self, timeout_s: float = 5.0) -> list[dict[str, Any]]:
        """Fan ``stats`` out to every worker and gather the replies
        (pickle-safe service snapshots); a worker that cannot answer
        within the deadline reports an ``error`` entry instead."""
        futures = []
        for slot in self._slots:
            try:
                futures.append(
                    (slot.worker_id, self.submit_to(slot.worker_id, "stats", {}))
                )
            except PoolShutdownError:
                return []
        gathered: list[dict[str, Any]] = []
        deadline = time.monotonic() + timeout_s
        for worker_id, future in futures:
            try:
                stats = future.result(
                    max(0.0, deadline - time.monotonic())
                )
                gathered.append({"worker": worker_id, **stats})
            except Exception as exc:
                gathered.append(
                    {"worker": worker_id, "error": repr(exc)}
                )
        return gathered
