"""Serving-side metrics: latency histograms and a QPS registry.

The gateway records one observation per completed request —
``(endpoint, status, latency_ms)`` — into a :class:`MetricsRegistry`,
which the ``GET /stats`` endpoint renders as plain JSON.  Latencies go
into fixed log-spaced buckets (:class:`LatencyHistogram`), so the
registry costs O(1) memory per endpoint regardless of traffic volume
and percentiles are read off the cumulative bucket counts with
within-bucket linear interpolation.

:class:`LatencyHistogram` and :data:`DEFAULT_BUCKET_BOUNDS_MS` moved to
:mod:`repro.obs.metrics` (the process-wide metrics layer) and are
re-exported here unchanged — existing imports keep working.

Everything here is plain data + a lock: the registry is shared between
the asyncio gateway loop and any thread that wants a snapshot (the CLI's
drain summary, tests), so mutation is guarded even though the gateway
itself is single-threaded.
"""

from __future__ import annotations

import threading
import time

from ..obs.metrics import DEFAULT_BUCKET_BOUNDS_MS, LatencyHistogram

__all__ = [
    "DEFAULT_BUCKET_BOUNDS_MS",
    "LatencyHistogram",
    "MetricsRegistry",
]


class _EndpointMetrics:
    """Per-endpoint counters: status breakdown + latency histogram."""

    def __init__(self) -> None:
        self.by_status: dict[int, int] = {}
        self.latency = LatencyHistogram()

    def observe(self, status: int, latency_ms: float) -> None:
        self.by_status[status] = self.by_status.get(status, 0) + 1
        self.latency.observe(latency_ms)

    def as_dict(self) -> dict[str, object]:
        return {
            "requests": self.latency.count,
            "by_status": {
                str(status): count
                for status, count in sorted(self.by_status.items())
            },
            "latency": self.latency.as_dict(),
        }


class MetricsRegistry:
    """Thread-safe request metrics keyed by endpoint.

    Tracks, per endpoint, a status-code breakdown and a latency
    histogram, plus gateway-level shed counters (requests refused by
    admission control or rate limiting before reaching a worker) and a
    cumulative QPS figure over the registry's lifetime.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointMetrics] = {}
        self._started = time.monotonic()
        self._completed = 0
        self._shed_overload = 0
        self._shed_rate_limited = 0
        self._shed_draining = 0

    def observe(
        self, endpoint: str, status: int, latency_ms: float
    ) -> None:
        """Record one completed request."""
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = _EndpointMetrics()
            metrics.observe(status, latency_ms)
            self._completed += 1
            if status == 429:
                self._shed_rate_limited += 1

    def note_shed(self, reason: str) -> None:
        """Count a request refused before any worker was involved
        (``reason`` is ``"overload"`` or ``"draining"``)."""
        with self._lock:
            if reason == "overload":
                self._shed_overload += 1
            elif reason == "draining":
                self._shed_draining += 1
            else:
                raise ValueError(f"unknown shed reason {reason!r}")

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def snapshot(self) -> dict[str, object]:
        """Plain-data view of every counter (JSON-ready)."""
        with self._lock:
            uptime = max(self.uptime_s, 1e-9)
            return {
                "uptime_s": round(uptime, 3),
                "completed": self._completed,
                "qps": round(self._completed / uptime, 3),
                "shed_overload": self._shed_overload,
                "shed_rate_limited": self._shed_rate_limited,
                "shed_draining": self._shed_draining,
                "endpoints": {
                    endpoint: metrics.as_dict()
                    for endpoint, metrics in sorted(
                        self._endpoints.items()
                    )
                },
            }
