"""Serving-side metrics: latency histograms and a QPS registry.

The gateway records one observation per completed request —
``(endpoint, status, latency_ms)`` — into a :class:`MetricsRegistry`,
which the ``GET /stats`` endpoint renders as plain JSON.  Latencies go
into fixed log-spaced buckets (:class:`LatencyHistogram`), so the
registry costs O(1) memory per endpoint regardless of traffic volume and
percentiles are read straight off the cumulative bucket counts.

The histogram percentiles are bucket-resolution estimates (each bucket's
upper bound); exact percentiles over a bounded run come from the
closed-loop load generator (:mod:`repro.serving.loadgen`), which keeps
every sample.  The two agree to within one bucket width.

Everything here is plain data + a lock: the registry is shared between
the asyncio gateway loop and any thread that wants a snapshot (the CLI's
drain summary, tests), so mutation is guarded even though the gateway
itself is single-threaded.
"""

from __future__ import annotations

import threading
import time
from typing import Sequence

__all__ = [
    "DEFAULT_BUCKET_BOUNDS_MS",
    "LatencyHistogram",
    "MetricsRegistry",
]

#: Upper bounds (milliseconds) of the latency buckets; the last bucket
#: is unbounded.  Log-spaced from sub-millisecond cache hits up to the
#: multi-second tail a draining or overloaded gateway can produce.
DEFAULT_BUCKET_BOUNDS_MS: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates.

    Args:
        bounds_ms: ascending bucket upper bounds in milliseconds; an
            implicit overflow bucket catches everything beyond the last
            bound.
    """

    def __init__(
        self, bounds_ms: Sequence[float] = DEFAULT_BUCKET_BOUNDS_MS
    ) -> None:
        bounds = tuple(float(b) for b in bounds_ms)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"bucket bounds must be ascending and non-empty: {bounds!r}"
            )
        self.bounds_ms = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self._total = 0
        self._sum_ms = 0.0
        self._max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        """Record one latency sample (negative values clamp to 0)."""
        latency_ms = max(0.0, float(latency_ms))
        index = len(self.bounds_ms)  # overflow unless a bound catches it
        for i, bound in enumerate(self.bounds_ms):
            if latency_ms <= bound:
                index = i
                break
        self._counts[index] += 1
        self._total += 1
        self._sum_ms += latency_ms
        if latency_ms > self._max_ms:
            self._max_ms = latency_ms

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean_ms(self) -> float:
        return self._sum_ms / self._total if self._total else 0.0

    def percentile_ms(self, fraction: float) -> float:
        """Estimate the ``fraction`` percentile (0 < fraction <= 1) as
        the upper bound of the bucket holding that rank; the overflow
        bucket reports the maximum observed sample."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not self._total:
            return 0.0
        rank = fraction * self._total
        cumulative = 0
        for i, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank:
                if i < len(self.bounds_ms):
                    return self.bounds_ms[i]
                return self._max_ms
        return self._max_ms

    def as_dict(self) -> dict[str, object]:
        """Plain-data view (JSON-ready)."""
        return {
            "count": self._total,
            "mean_ms": round(self.mean_ms, 3),
            "max_ms": round(self._max_ms, 3),
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
            "p99_ms": self.percentile_ms(0.99),
            "buckets": {
                f"le_{bound:g}ms": count
                for bound, count in zip(self.bounds_ms, self._counts)
            }
            | {"overflow": self._counts[-1]},
        }


class _EndpointMetrics:
    """Per-endpoint counters: status breakdown + latency histogram."""

    def __init__(self) -> None:
        self.by_status: dict[int, int] = {}
        self.latency = LatencyHistogram()

    def observe(self, status: int, latency_ms: float) -> None:
        self.by_status[status] = self.by_status.get(status, 0) + 1
        self.latency.observe(latency_ms)

    def as_dict(self) -> dict[str, object]:
        return {
            "requests": self.latency.count,
            "by_status": {
                str(status): count
                for status, count in sorted(self.by_status.items())
            },
            "latency": self.latency.as_dict(),
        }


class MetricsRegistry:
    """Thread-safe request metrics keyed by endpoint.

    Tracks, per endpoint, a status-code breakdown and a latency
    histogram, plus gateway-level shed counters (requests refused by
    admission control or rate limiting before reaching a worker) and a
    cumulative QPS figure over the registry's lifetime.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointMetrics] = {}
        self._started = time.monotonic()
        self._completed = 0
        self._shed_overload = 0
        self._shed_rate_limited = 0
        self._shed_draining = 0

    def observe(
        self, endpoint: str, status: int, latency_ms: float
    ) -> None:
        """Record one completed request."""
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = _EndpointMetrics()
            metrics.observe(status, latency_ms)
            self._completed += 1
            if status == 429:
                self._shed_rate_limited += 1

    def note_shed(self, reason: str) -> None:
        """Count a request refused before any worker was involved
        (``reason`` is ``"overload"`` or ``"draining"``)."""
        with self._lock:
            if reason == "overload":
                self._shed_overload += 1
            elif reason == "draining":
                self._shed_draining += 1
            else:
                raise ValueError(f"unknown shed reason {reason!r}")

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def snapshot(self) -> dict[str, object]:
        """Plain-data view of every counter (JSON-ready)."""
        with self._lock:
            uptime = max(self.uptime_s, 1e-9)
            return {
                "uptime_s": round(uptime, 3),
                "completed": self._completed,
                "qps": round(self._completed / uptime, 3),
                "shed_overload": self._shed_overload,
                "shed_rate_limited": self._shed_rate_limited,
                "shed_draining": self._shed_draining,
                "endpoints": {
                    endpoint: metrics.as_dict()
                    for endpoint, metrics in sorted(
                        self._endpoints.items()
                    )
                },
            }
