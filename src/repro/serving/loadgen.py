"""Closed-loop HTTP load generator for the serving gateway.

Closed-loop means each client thread keeps exactly one request
outstanding: it sends, waits for the response, records the latency, and
immediately sends the next.  Offered load therefore adapts to the
server's capacity (N clients ≈ concurrency N), which is the right model
for measuring pool scaling — QPS grows with worker processes until the
pool saturates, instead of an open-loop generator drowning the gateway
in queued requests.

Usable as a library (:func:`run_load`, returning a :class:`LoadReport`
with exact p50/p95/p99 over every recorded sample) and as a CLI::

    python -m repro.serving.loadgen --url http://127.0.0.1:8080 \
        --clients 8 --requests 400 --query "t00042 t00137"

``--smoke`` mode is the CI surface: wait for readiness, hit all four
endpoints (``/healthz``, ``/stats``, ``/search``, ``/search_batch``),
run a short closed loop, and write the machine-readable
``BENCH_serving.json`` artifact via :func:`repro.utils.write_bench_json`.

Status accounting: 200 is ``ok``; 429/503 are ``shed`` (the gateway
refusing load by design — the client backs off briefly and retries);
anything else, including transport errors, is ``failed``.  A graceful
drain must therefore show ``failed == 0``: in-flight requests complete
with 200 and post-drain requests are shed, never dropped.
"""

from __future__ import annotations

import argparse
import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence
from urllib.parse import urlsplit

from ..errors import ConfigurationError
from ..utils import write_bench_json

__all__ = [
    "LoadReport",
    "http_request",
    "run_load",
    "run_smoke",
    "wait_ready",
    "main",
]

#: Back-off applied by a closed-loop client after a shed (429/503).
SHED_BACKOFF_S = 0.02


@dataclass
class LoadReport:
    """Outcome of one closed-loop run.

    ``latencies_ms`` holds one sample per *successful* request, so the
    percentiles describe served traffic; shed and failed requests are
    counted separately.
    """

    clients: int = 0
    elapsed_s: float = 0.0
    ok: int = 0
    shed: int = 0
    failed: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentile_ms(self, fraction: float) -> float:
        """Exact sample percentile (nearest-rank)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(1, round(fraction * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def as_dict(self) -> dict[str, Any]:
        return {
            "clients": self.clients,
            "elapsed_s": round(self.elapsed_s, 3),
            "ok": self.ok,
            "shed": self.shed,
            "failed": self.failed,
            "qps": round(self.qps, 2),
            "p50_ms": round(self.percentile_ms(0.50), 3),
            "p95_ms": round(self.percentile_ms(0.95), 3),
            "p99_ms": round(self.percentile_ms(0.99), 3),
            "errors": self.errors[:5],
        }


def _split_url(url: str) -> tuple[str, int]:
    parts = urlsplit(url)
    if parts.scheme != "http" or not parts.hostname:
        raise ConfigurationError(
            f"loadgen needs an http://host:port URL, got {url!r}"
        )
    return parts.hostname, parts.port or 80


def http_request(
    url: str,
    method: str,
    path: str,
    body: dict[str, Any] | None = None,
    headers: dict[str, str] | None = None,
    timeout_s: float = 30.0,
) -> tuple[int, dict[str, Any]]:
    """One-shot JSON request; returns ``(status, parsed_body)``."""
    host, port = _split_url(url)
    connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        connection.request(
            method,
            path,
            body=payload,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        response = connection.getresponse()
        raw = response.read()
        return response.status, json.loads(raw.decode("utf-8") or "null")
    finally:
        connection.close()


def wait_ready(url: str, timeout_s: float = 30.0) -> None:
    """Poll ``/healthz`` until the gateway answers 200."""
    deadline = time.monotonic() + timeout_s
    last = "no response"
    while time.monotonic() < deadline:
        try:
            status, _body = http_request(url, "GET", "/healthz", timeout_s=2.0)
            if status == 200:
                return
            last = f"healthz={status}"
        except OSError as exc:
            last = repr(exc)
        time.sleep(0.1)
    raise ConfigurationError(
        f"gateway at {url} not ready within {timeout_s}s ({last})"
    )


def run_load(
    url: str,
    queries: Sequence[str],
    clients: int = 4,
    requests_per_client: int = 50,
    k: int = 10,
    timeout_s: float = 60.0,
    client_id_prefix: str = "loadgen",
) -> LoadReport:
    """Drive the gateway with ``clients`` closed-loop threads.

    Each client keeps one persistent keep-alive connection, walks the
    query list round-robin from a per-client offset, and issues exactly
    ``requests_per_client`` requests.  Each client presents a distinct
    ``X-Client-Id``, so per-client token buckets see ``clients``
    separate principals.
    """
    if clients < 1:
        raise ConfigurationError(f"clients must be >= 1, got {clients}")
    if not queries:
        raise ConfigurationError("queries must be non-empty")
    host, port = _split_url(url)
    report = LoadReport(clients=clients)
    lock = threading.Lock()

    def client_loop(index: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
        ok = shed = failed = 0
        latencies: list[float] = []
        errors: list[str] = []
        headers = {
            "Content-Type": "application/json",
            "X-Client-Id": f"{client_id_prefix}-{index}",
        }
        try:
            for n in range(requests_per_client):
                query = queries[(index + n * clients) % len(queries)]
                body = json.dumps({"query": query, "k": k}).encode()
                started = time.perf_counter()
                try:
                    connection.request("POST", "/search", body, headers)
                    response = connection.getresponse()
                    response.read()
                    status = response.status
                except (OSError, http.client.HTTPException) as exc:
                    failed += 1
                    errors.append(repr(exc))
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout_s
                    )
                    continue
                latency_ms = (time.perf_counter() - started) * 1000.0
                if status == 200:
                    ok += 1
                    latencies.append(latency_ms)
                elif status in (429, 503):
                    shed += 1
                    time.sleep(SHED_BACKOFF_S)
                else:
                    failed += 1
                    errors.append(f"status {status}")
        finally:
            connection.close()
        with lock:
            report.ok += ok
            report.shed += shed
            report.failed += failed
            report.latencies_ms.extend(latencies)
            report.errors.extend(errors)

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_s = time.perf_counter() - started
    return report


def run_smoke(
    url: str,
    queries: Sequence[str],
    clients: int = 2,
    requests_per_client: int = 10,
    k: int = 10,
) -> dict[str, Any]:
    """The CI smoke: exercise all four endpoints, then a short closed
    loop; returns the combined plain-data summary."""
    endpoint_checks: dict[str, int] = {}
    status, health = http_request(url, "GET", "/healthz")
    endpoint_checks["/healthz"] = status
    if status != 200 or health.get("status") != "ok":
        raise ConfigurationError(f"healthz not ok: {status} {health}")
    status, single = http_request(
        url, "POST", "/search", {"query": queries[0], "k": k}
    )
    endpoint_checks["/search"] = status
    if status != 200 or "results" not in single:
        raise ConfigurationError(f"/search failed: {status} {single}")
    status, batch = http_request(
        url,
        "POST",
        "/search_batch",
        {"queries": list(queries[: min(4, len(queries))]), "k": k},
    )
    endpoint_checks["/search_batch"] = status
    if status != 200 or "responses" not in batch:
        raise ConfigurationError(f"/search_batch failed: {status} {batch}")
    report = run_load(
        url,
        queries,
        clients=clients,
        requests_per_client=requests_per_client,
        k=k,
    )
    status, stats = http_request(url, "GET", "/stats")
    endpoint_checks["/stats"] = status
    if status != 200 or "gateway" not in stats:
        raise ConfigurationError(f"/stats failed: {status} {stats}")
    return {
        "bench": "serving",
        "mode": "smoke",
        "url": url,
        "endpoints": endpoint_checks,
        "pool": stats.get("pool", {}),
        "gateway_qps": stats["gateway"].get("qps"),
        **report.as_dict(),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.loadgen",
        description="closed-loop load generator for the repro gateway",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8080")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--requests",
        type=int,
        default=100,
        help="requests per client (closed loop)",
    )
    parser.add_argument("--top", type=int, default=10, metavar="K")
    parser.add_argument(
        "--query",
        action="append",
        default=None,
        metavar="TERMS",
        help="query string; repeat for a mixed workload "
        "(default: 't00042 t00137')",
    )
    parser.add_argument(
        "--wait-ready",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="poll /healthz this long before starting",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: hit all four endpoints, run a short closed "
        "loop, fail on any non-shed error",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH_OR_NAME",
        help="write the run summary as a BENCH json artifact "
        "(a bare name goes through repro.utils.write_bench_json)",
    )
    args = parser.parse_args(argv)
    queries = args.query or ["t00042 t00137"]
    if args.wait_ready > 0:
        wait_ready(args.url, args.wait_ready)
    if args.smoke:
        summary = run_smoke(
            args.url,
            queries,
            clients=min(args.clients, 4),
            requests_per_client=min(args.requests, 25),
            k=args.top,
        )
    else:
        report = run_load(
            args.url,
            queries,
            clients=args.clients,
            requests_per_client=args.requests,
            k=args.top,
        )
        summary = {"bench": "serving", "mode": "load", **report.as_dict()}
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.json_out:
        path = write_bench_json("serving", summary, path=args.json_out)
        print(f"wrote {path}")
    if summary["failed"]:
        print(f"FAIL: {summary['failed']} requests failed")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
