"""Small shared helpers used across the repro library."""

from __future__ import annotations

import itertools
import json
import math
import os
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence, TypeVar

__all__ = [
    "binomial",
    "sliding_windows",
    "chunked",
    "pairwise_overlap",
    "harmonic_number",
    "generalized_harmonic",
    "format_count",
    "format_table",
    "write_bench_json",
]

T = TypeVar("T")


def binomial(n: int, k: int) -> int:
    """Return ``n choose k``, defined as 0 when ``k > n`` or ``k < 0``.

    The paper's Theorem 3 uses binomial coefficients of window positions;
    treating out-of-range arguments as 0 keeps those formulas total.
    """
    if k < 0 or k > n:
        return 0
    return math.comb(n, k)


def sliding_windows(tokens: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield every window of ``size`` consecutive items of ``tokens``.

    A sequence shorter than ``size`` yields itself once (the paper's
    proximity filter treats a short document as a single window).
    """
    if size < 1:
        raise ValueError(f"window size must be >= 1, got {size}")
    n = len(tokens)
    if n <= size:
        if n:
            yield tokens
        return
    for start in range(n - size + 1):
        yield tokens[start : start + size]


def chunked(items: Iterable[T], size: int) -> Iterator[list[T]]:
    """Yield lists of at most ``size`` consecutive items of ``items``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    batch: list[T] = []
    for item in items:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


def pairwise_overlap(left: Sequence[T], right: Sequence[T]) -> float:
    """Return ``|set(left) & set(right)| / max(|left|, |right|, 1)``.

    Used for the top-k overlap metric of Figure 7; both arguments are ranked
    result lists and the denominator is the longer list so the value stays
    in [0, 1] even when one engine returns fewer than k results.
    """
    if not left and not right:
        return 1.0
    shared = len(set(left) & set(right))
    return shared / max(len(left), len(right), 1)


def harmonic_number(n: int) -> float:
    """Return the n-th harmonic number ``H_n``."""
    return generalized_harmonic(n, 1.0)


def generalized_harmonic(n: int, exponent: float) -> float:
    """Return ``sum_{r=1..n} r**-exponent`` (normalizer of a Zipf pmf)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return sum(r ** -exponent for r in range(1, n + 1))


def format_count(value: float) -> str:
    """Format a posting/message count compactly, e.g. ``1.40e+07``."""
    if value == 0:
        return "0"
    if abs(value) >= 100_000:
        return f"{value:.2e}"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}"
    return f"{int(value):,}"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table (used by benches and reports)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def write_bench_json(
    name: str,
    payload: Mapping[str, object],
    path: str | os.PathLike[str] | None = None,
) -> Path:
    """Write a machine-readable benchmark artifact ``BENCH_<name>.json``.

    The perf trajectory across PRs is tracked through these files:
    every ``benchmarks/`` run (and the load generator's smoke mode)
    emits one, so a regression is a diff between two JSON artifacts
    instead of a by-eye comparison of rendered tables.

    Args:
        name: the bench name; the file is ``BENCH_<name>.json``.
        payload: JSON-serializable summary (plain scalars/lists/dicts).
        path: explicit output file or directory; when omitted, the
            ``REPRO_BENCH_JSON_DIR`` environment variable names the
            output directory, defaulting to the working directory.

    Returns the path written.
    """
    if path is None:
        target = Path(os.environ.get("REPRO_BENCH_JSON_DIR", "."))
    else:
        target = Path(path)
    if target.is_dir() or not target.suffix:
        target.mkdir(parents=True, exist_ok=True)
        target = target / f"BENCH_{name}.json"
    text = json.dumps(payload, indent=2, sort_keys=True)
    target.write_text(text + "\n", encoding="utf-8")
    return target


def take(iterable: Iterable[T], n: int) -> list[T]:
    """Return the first ``n`` items of ``iterable`` as a list."""
    return list(itertools.islice(iterable, n))
