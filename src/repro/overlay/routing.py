"""Hierarchical routing with in-network DHT-path result caching.

:class:`HierarchicalRouter` implements the
:class:`repro.net.network.RoutingPolicy` hook over a
:class:`~repro.overlay.topology.SuperPeerTopology`.  A lookup for key K
issued by leaf S travels::

    S --> SP(S) --> SP(K)  [the *home* super-peer] --> owner(K)

and the response retraces ``owner -> SP(K) -> S`` — the classic
DHT-path-caching shape: the home super-peer sees every response for the
keys in its range and keeps a bounded
:class:`~repro.retrieval.cache.QueryResultCache` of them (*and* of
definitive absences), so repeated term-sets are answered mid-path
without involving the responsible peer.  Freshness is
invalidate-on-insert: every insert for K also routes through SP(K),
which evicts K before the write returns, so a cached answer is never
stale and results stay byte-identical to flat routing.

Two mid-path short-circuits answer at the home super-peer:

- **path-cache hit** — the key's last response (or absence) is cached;
- **summary skip** — the cluster's Bloom summary proves the key was
  never stored in its range (no false negatives; see
  :mod:`repro.overlay.summaries`).

**Adaptive mode** (``adaptive=True``) extends the scheme in two ways:

- *Multi-level path caches*: responses retrace through the querying
  leaf's own super-peer too (``owner -> SP(K) -> SP(S) -> S``), and
  both super-peers cache the answer — the next lookup from that
  cluster is answered one hop away, before ever leaving for the home
  range.  Because copies of a key now live at several super-peers,
  invalidation fans out: the home super-peer tracks which clusters
  hold copies (a bounded registry) and sends each a
  ``CACHE_INVALIDATE`` on insert, so freshness is preserved and
  results stay byte-identical to flat routing.
- *Load-aware splitting*: the router charges every super-peer it
  routes through (feeding :meth:`SuperPeerTopology.observe_load`, the
  election signal) and keeps windowed per-cluster counters of lookups
  plus cache churn.  Every ``decision_interval`` lookups it closes a
  window: the hottest cluster at or above ``split_threshold`` is split
  at its median member, and a split pair whose combined score stays at
  or below ``merge_threshold`` for ``merge_cool_down`` *consecutive*
  windows is merged back (the consecutive requirement is the
  hysteresis that prevents flapping).

Every hop count is bounded by the hierarchy depth (≤ 3 request hops,
≤ 3 response hops) instead of Chord's O(log N) walk, and each message's
posting payload is identical to flat routing — traffic in the paper's
cost unit can only improve.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ConfigurationError, PeerNotFoundError
from ..index.bloom import optimal_bits_per_element
from ..net.accounting import Phase
from ..net.messages import MessageKind
from ..net.network import P2PNetwork
from ..obs.metrics import get_hub
from ..retrieval.cache import QueryResultCache
from .summaries import ClusterSummary, scan_cluster_key_ids, summary_for_scan
from .topology import Cluster, SuperPeerTopology

__all__ = ["HierarchicalRouter", "RouterStats"]

#: Cached marker for "the responsible peer stores nothing under this
#: key" — distinct from a cache miss (no entry at all).
_ABSENT = object()

#: Path-cache payloads are depth-independent stored values, so every
#: cache call uses one nominal depth.
_CACHE_DEPTH = 1


class _KeyProbe:
    """Adapter giving a raw DHT key the ``.term_set`` attribute the
    query-result cache keys by."""

    __slots__ = ("term_set",)

    def __init__(self, key: Any) -> None:
        self.term_set = key


@dataclass
class RouterStats:
    """Counters over the router's lifetime (monotonic; survive
    re-clustering even though the caches themselves are dropped)."""

    lookups: int = 0
    inserts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Subset of ``cache_hits`` answered at the querying leaf's *own*
    #: super-peer (adaptive multi-level caching).
    local_cache_hits: int = 0
    summary_skips: int = 0
    rebuilds: int = 0
    #: Summary (re)builds installed — full refreshes, saturation
    #: rebuilds, and per-half rebuilds after splits/merges.
    summary_rebuilds: int = 0
    #: Crash/respawn events absorbed without a full re-cluster.
    scoped_repairs: int = 0
    #: ``CACHE_INVALIDATE`` fan-out messages sent to remote copies.
    invalidations: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class HierarchicalRouter:
    """Routes DHT messages through the super-peer hierarchy.

    Args:
        topology: the cluster map (owns re-clustering + its traffic).
        path_cache_capacity: per-super-peer result-cache size in keys;
            ``0`` disables in-network caching.
        use_summaries: keep Bloom key summaries at super-peers and
            answer definitely-absent keys mid-path.
        adaptive: enable load-aware election feedback, cluster
            splitting/merging, and multi-level path caching.  Off by
            default: the static overlay stays byte-reproducible.
        split_threshold: windowed load score (lookups homed in the
            cluster + its cache churn) at which a cluster splits.
        merge_threshold: score at or below which a split pair counts as
            calm; must be strictly below ``split_threshold`` so a
            cluster hovering between the two neither splits nor merges.
        decision_interval: lookups per decision window.
        merge_cool_down: consecutive calm windows required before a
            split pair merges back (hysteresis).

    Install on the topology's network with :meth:`install`; the network
    then delegates every lookup, and hop counts for inserts and stats
    publications, to this object.

    Locking: ``_adapt_lock`` (outer) serializes every topology mutation
    — full refreshes, scoped crash repairs, splits and merges — while
    ``_lock`` (inner) guards the hot-path routing state.  ``_lock`` is
    never held while acquiring ``_adapt_lock``.
    """

    def __init__(
        self,
        topology: SuperPeerTopology,
        path_cache_capacity: int = 128,
        use_summaries: bool = True,
        adaptive: bool = False,
        split_threshold: int = 64,
        merge_threshold: int = 16,
        decision_interval: int = 128,
        merge_cool_down: int = 2,
    ) -> None:
        if path_cache_capacity < 0:
            raise ConfigurationError(
                "path_cache_capacity must be >= 0, got "
                f"{path_cache_capacity}"
            )
        if split_threshold < 1:
            raise ConfigurationError(
                f"split_threshold must be >= 1, got {split_threshold}"
            )
        if not 0 <= merge_threshold < split_threshold:
            raise ConfigurationError(
                "merge_threshold must satisfy 0 <= merge_threshold < "
                f"split_threshold, got {merge_threshold} vs "
                f"{split_threshold}"
            )
        if decision_interval < 1:
            raise ConfigurationError(
                f"decision_interval must be >= 1, got {decision_interval}"
            )
        if merge_cool_down < 1:
            raise ConfigurationError(
                f"merge_cool_down must be >= 1, got {merge_cool_down}"
            )
        self.topology = topology
        self.path_cache_capacity = path_cache_capacity
        self.use_summaries = use_summaries
        self.adaptive = adaptive
        self.split_threshold = split_threshold
        self.merge_threshold = merge_threshold
        self.decision_interval = decision_interval
        self.merge_cool_down = merge_cool_down
        self.stats = RouterStats()
        # All per-cluster state is keyed by Cluster.start (the lowest
        # member id) — unlike the list index it survives splits and
        # merges of *other* clusters.
        #: cluster start -> bounded result cache at that super-peer.
        self._caches: dict[int, QueryResultCache] = {}
        #: cluster start -> Bloom summary at that super-peer.
        self._summaries: dict[int, ClusterSummary] = {}
        #: cluster start -> insert generation; a fill is valid only if
        #: no insert hit the cluster between the owner read and the
        #: fill (see :meth:`_cache_fill`).
        self._insert_gens: dict[int, int] = {}
        # Single-flight summary rebuilds: a start present in
        # _summary_rebuilding has a rebuild in flight, owned by the
        # recorded epoch; inserts meanwhile append to the pending list,
        # applied when the rebuild installs.  Bumping _summary_epoch
        # (refresh) or popping the marker (split/merge/repair) turns
        # the in-flight install into a no-op.
        self._summary_epoch = 0
        self._summary_rebuilding: dict[int, int] = {}
        self._pending_summary_adds: dict[int, list[int]] = {}
        # Copy registry (adaptive mode): which cluster starts hold a
        # path-cache copy of each key, so the home super-peer can
        # invalidate them on insert.  In adaptive mode *every* fill is
        # registered — home-level fills included, because replication
        # failover, respawn, and splits can re-home a key, after which
        # an old home copy is still reachable through the local-level
        # probe.  Bounded and LRU-ordered; overflow evicts the copies
        # themselves (an unregistered copy could go stale silently).
        self._remote_copies: OrderedDict[Any, set[int]] = OrderedDict()
        self._copy_registry_capacity = max(512, 8 * path_cache_capacity)
        # Windowed adaptation state (cluster start -> count).
        self._window_lookups: dict[int, int] = {}
        self._window_churn: dict[int, int] = {}
        #: upper-half start -> lower-half start of an active split.
        self._split_pairs: dict[int, int] = {}
        #: upper-half start -> consecutive calm windows so far.
        self._calm_windows: dict[int, int] = {}
        self._decision_tick = 0
        #: super-peer id -> attribution counters (load, lookups, ...).
        self._per_sp: dict[int, dict[str, int]] = {}
        # Guards stats, the cache/summary maps, windows, the copy
        # registry, and filter mutation (Bloom add is
        # read-modify-write); the caches themselves are internally
        # locked.
        self._lock = threading.Lock()
        # Serializes topology mutations (refresh / split / merge /
        # scoped repair); always taken before _lock, never after.
        self._adapt_lock = threading.Lock()
        # Process-wide observability counters (repro.obs): the same
        # quantities as RouterStats, but readable by benches and the
        # serving tier without a reference to this router.  The
        # ``overlay.sp.*`` families attribute the same events to the
        # serving super-peer.
        hub = get_hub()
        self._m_lookups = hub.counter("overlay.lookups")
        self._m_cache_hits = hub.counter("overlay.path_cache_hits")
        self._m_cache_misses = hub.counter("overlay.path_cache_misses")
        self._m_summary_skips = hub.counter("overlay.summary_skips")
        self._m_inserts = hub.counter("overlay.inserts")
        self._m_splits = hub.counter("overlay.splits")
        self._m_merges = hub.counter("overlay.merges")
        self._m_invalidations = hub.counter("overlay.cache_invalidations")
        self._m_sp_lookups = hub.counter_family("overlay.sp.lookups")
        self._m_sp_cache_hits = hub.counter_family(
            "overlay.sp.path_cache_hits"
        )
        self._m_sp_cache_misses = hub.counter_family(
            "overlay.sp.path_cache_misses"
        )
        self._m_sp_summary_skips = hub.counter_family(
            "overlay.sp.summary_skips"
        )
        self._m_sp_inserts = hub.counter_family("overlay.sp.inserts")
        self._m_window_load = hub.gauge_family("overlay.sp.window_load")
        self._rebuild_summaries()

    def install(self, network: P2PNetwork) -> None:
        """Attach this router to ``network`` (its topology's network).

        Raises:
            ConfigurationError: the network already routes through a
                different policy, or belongs to another topology.
        """
        if network is not self.topology.network:
            raise ConfigurationError(
                "router must be installed on the network its topology "
                "was built over"
            )
        if network.router is not None and network.router is not self:
            raise ConfigurationError(
                "network already has a routing policy installed; one "
                "super-peer hierarchy per network"
            )
        network.router = self

    # -- RoutingPolicy: lookups ----------------------------------------------------

    def route_lookup(
        self,
        network: P2PNetwork,
        source_id: int,
        key: Any,
        key_id: int,
        response_size: Callable[[Any | None], int],
        key_repr: str = "",
    ) -> Any | None:
        try:
            return self._route_lookup(
                network, source_id, key, key_id, response_size, key_repr
            )
        finally:
            if self.adaptive:
                self._maybe_adapt()

    def _route_lookup(
        self,
        network: P2PNetwork,
        source_id: int,
        key: Any,
        key_id: int,
        response_size: Callable[[Any | None], int],
        key_repr: str,
    ) -> Any | None:
        with self._lock:
            self.stats.lookups += 1
        self._m_lookups.add()
        # The *effective* owner: the responsible peer, or — with a
        # replication manager installed — the first live replica.  A
        # crashed owner with no live replica leaves the range dark.
        owner = network.effective_owner(key_id)
        if owner is None:
            # The request still travels toward the dark range and times
            # out; no response arrives.
            local_sp = self.topology.super_peer_of(source_id)
            network.log_message(
                MessageKind.LOOKUP,
                source_id,
                network.overlay.responsible_peer(key_id),
                0,
                max(1, (source_id != local_sp) + 1),
                key_repr,
                route="dark_range",
            )
            self._charge((local_sp,), source_id)
            return None
        if owner == source_id:
            # Self-owned key: answered locally, same message shape as
            # flat routing (request + response, one hop each).
            network.log_message(
                MessageKind.LOOKUP, source_id, owner, 0, 1, key_repr,
                route="self_owned",
            )
            value = network.storage_by_id(owner).get(key)
            network.log_message(
                MessageKind.RESPONSE,
                owner,
                source_id,
                response_size(value),
                1,
                key_repr,
                route="self_owned",
            )
            return value
        home = self.topology.cluster_of_peer(owner)
        home_sp = home.super_peer
        local = self.topology.cluster_of_peer(source_id)
        local_sp = local.super_peer
        to_home = (source_id != local_sp) + (local_sp != home_sp)
        # Sampled before any probe: a cached payload (or a summary
        # verdict) observed now, then filled into a *second* cache
        # below, must be dropped if an insert lands in between.
        with self._lock:
            generation = self._insert_gens.get(home.start, 0)
        # Multi-level caching only pays off when the leaf's own
        # super-peer differs from the home one.
        fill_local = (
            self.adaptive
            and self.path_cache_capacity >= 1
            and local.start != home.start
        )

        if fill_local:
            payload = self._cache_peek(local.start, key)
            if payload is not None:
                # Answered one hop away, before leaving the cluster.
                value = None if payload is _ABSENT else payload
                with self._lock:
                    self.stats.cache_hits += 1
                    self.stats.local_cache_hits += 1
                    self._per_sp_add(local_sp, "path_cache_hits")
                    self._note_lookup_locked(local_sp, local.start)
                self._m_cache_hits.add()
                self._m_sp_cache_hits.add(local_sp)
                self._m_sp_lookups.add(local_sp)
                network.log_message(
                    MessageKind.LOOKUP,
                    source_id,
                    local_sp,
                    0,
                    max(1, source_id != local_sp),
                    key_repr,
                    route="local_cache",
                )
                network.log_message(
                    MessageKind.RESPONSE,
                    local_sp,
                    source_id,
                    response_size(value),
                    1,
                    key_repr,
                    route="local_cache",
                )
                self._charge((local_sp,), source_id)
                return value

        cached = self._cache_probe(home.start, key, home_sp)
        if cached is not None:
            value = None if cached is _ABSENT else cached
            if fill_local:
                self._answer_via_local(
                    network, source_id, local_sp, home_sp, to_home,
                    response_size(value), key_repr, "path_cache",
                )
                self._fill_remote(
                    local.start, home.start, key, cached, generation
                )
            else:
                self._answer_at_home(
                    network, source_id, home_sp, to_home,
                    response_size(value), key_repr, "path_cache",
                )
            self._charge((local_sp, home_sp), source_id)
            self._note_lookup(home_sp, home.start)
            return value
        if self.use_summaries and not self._may_contain(home.start, key_id):
            with self._lock:
                self.stats.summary_skips += 1
            self._m_summary_skips.add()
            self._m_sp_summary_skips.add(home_sp)
            with self._lock:
                self._per_sp_add(home_sp, "summary_skips")
            if fill_local:
                self._answer_via_local(
                    network, source_id, local_sp, home_sp, to_home,
                    response_size(None), key_repr, "summary_skip",
                )
                self._fill_remote(
                    local.start, home.start, key, _ABSENT, generation
                )
            else:
                self._answer_at_home(
                    network, source_id, home_sp, to_home,
                    response_size(None), key_repr, "summary_skip",
                )
            self._charge((local_sp, home_sp), source_id)
            self._note_lookup(home_sp, home.start)
            return None

        # Full path: forward to the responsible peer; the response
        # retraces through the home super-peer (and, in adaptive mode,
        # the local one too), filling the caches on its way back.
        request_hops = max(1, to_home + (home_sp != owner))
        network.log_message(
            MessageKind.LOOKUP, source_id, owner, 0, request_hops, key_repr,
            route="leaf>sp>home>owner",
        )
        value = network.storage_by_id(owner).get(key)
        if fill_local:
            response_hops = max(
                1,
                (owner != home_sp)
                + (home_sp != local_sp)
                + (local_sp != source_id),
            )
            response_route = "owner>home>local>leaf"
        else:
            response_hops = max(
                1, (owner != home_sp) + (home_sp != source_id)
            )
            response_route = "owner>home>leaf"
        network.log_message(
            MessageKind.RESPONSE,
            owner,
            source_id,
            response_size(value),
            response_hops,
            key_repr,
            route=response_route,
        )
        self._cache_fill(home.start, key, value, generation)
        if fill_local:
            self._fill_remote(
                local.start,
                home.start,
                key,
                _ABSENT if value is None else value,
                generation,
            )
        self._charge((local_sp, home_sp, owner), source_id)
        self._note_lookup(home_sp, home.start)
        return value

    def _answer_at_home(
        self,
        network: P2PNetwork,
        source_id: int,
        home_sp: int,
        to_home: int,
        postings: int,
        key_repr: str,
        route: str,
    ) -> None:
        """Log the message pair of a lookup answered at the home
        super-peer (cache hit or summary skip)."""
        network.log_message(
            MessageKind.LOOKUP,
            source_id,
            home_sp,
            0,
            max(1, to_home),
            key_repr,
            route=route,
        )
        network.log_message(
            MessageKind.RESPONSE, home_sp, source_id, postings, 1, key_repr,
            route=route,
        )

    def _answer_via_local(
        self,
        network: P2PNetwork,
        source_id: int,
        local_sp: int,
        home_sp: int,
        to_home: int,
        postings: int,
        key_repr: str,
        route: str,
    ) -> None:
        """Adaptive variant of :meth:`_answer_at_home`: the response
        retraces through the leaf's own super-peer so it can keep a
        copy (the caller fills it)."""
        network.log_message(
            MessageKind.LOOKUP,
            source_id,
            home_sp,
            0,
            max(1, to_home),
            key_repr,
            route=route,
        )
        network.log_message(
            MessageKind.RESPONSE,
            home_sp,
            source_id,
            postings,
            max(1, (home_sp != local_sp) + (local_sp != source_id)),
            key_repr,
            route=route,
        )

    # -- attribution -----------------------------------------------------------------

    def _per_sp_add(self, peer_id: int, field: str, amount: int = 1) -> None:
        """Bump an attribution counter.  Caller holds ``_lock``."""
        counters = self._per_sp.setdefault(peer_id, {})
        counters[field] = counters.get(field, 0) + amount

    def _charge(self, peers: tuple[int, ...], source_id: int) -> None:
        """Charge one unit of routing work to every distinct peer on
        the path except the requester itself — the load signal behind
        both the per-super-peer gauges and (adaptive only) the
        topology's election."""
        charged = {p for p in peers if p != source_id}
        if not charged:
            return
        with self._lock:
            for peer_id in charged:
                self._per_sp_add(peer_id, "load")
        if self.adaptive:
            for peer_id in charged:
                self.topology.observe_load(peer_id)

    def _note_lookup_locked(self, sp: int, cluster_key: int) -> None:
        """Attribute a served lookup.  Caller holds ``_lock``."""
        self._per_sp_add(sp, "lookups")
        if self.adaptive:
            self._window_lookups[cluster_key] = (
                self._window_lookups.get(cluster_key, 0) + 1
            )

    def _note_lookup(self, sp: int, cluster_key: int) -> None:
        with self._lock:
            self._note_lookup_locked(sp, cluster_key)
        self._m_sp_lookups.add(sp)

    # -- RoutingPolicy: inserts / generic hops ---------------------------------------

    def path_hops(self, source_id: int, key_id: int) -> int:
        """Request-path hops source -> local SP -> home SP -> owner."""
        network = self.topology.network
        owner = network.effective_owner(key_id)
        if owner is None:
            # Dark range: the message travels to the local super-peer
            # and on toward the dead region before timing out.
            local_sp = self.topology.super_peer_of(source_id)
            return max(1, (source_id != local_sp) + 1)
        if owner == source_id:
            return 1
        home_sp = self.topology.super_peer_of(owner)
        local_sp = self.topology.super_peer_of(source_id)
        return max(
            1,
            (source_id != local_sp)
            + (local_sp != home_sp)
            + (home_sp != owner),
        )

    def on_insert(self, key: Any, key_id: int) -> None:
        """Freshness hook: the insert just routed through the home
        super-peer, which evicts any cached answer for the key, fans
        an invalidation out to every super-peer holding a path-cache
        copy, and adds the key to the cluster summary.

        Saturation rebuilds are single-flight: the insert that tips the
        filter past capacity claims the rebuild under the lock (epoch
        marker); concurrent inserts see the marker and queue their key
        ids instead of re-triggering, and the rebuilt filter applies
        the queue on install — so no second scan, and no insert is ever
        missing from whichever filter wins (no false negatives)."""
        self._m_inserts.add()
        home = self.topology.home_cluster(key_id)
        if home is None:
            # Dark range: the write was lost, nothing is cached for the
            # key (dark lookups bypass the cache), nothing to invalidate.
            with self._lock:
                self.stats.inserts += 1
            return
        home_sp = home.super_peer
        start = home.start
        rebuild_epoch: int | None = None
        fanout_targets: list[int] = []
        with self._lock:
            self.stats.inserts += 1
            self._per_sp_add(home_sp, "inserts")
            self._m_sp_inserts.add(home_sp)
            # Bump the generation and evict under the same lock the
            # fill path checks the generation under, so a lookup that
            # read the pre-insert value can never re-cache it after
            # this invalidation.
            self._insert_gens[start] = self._insert_gens.get(start, 0) + 1
            cache = self._caches.get(start)
            if cache is not None:
                cache.remove(key)
            # Scoped fan-out: only the clusters registered as holding
            # a copy of *this* key are touched.
            holders = self._remote_copies.pop(key, None)
            if holders:
                for holder_start in holders:
                    holder_cache = self._caches.get(holder_start)
                    if holder_cache is not None:
                        holder_cache.remove(key)
                    if holder_start != start:
                        fanout_targets.append(holder_start)
            if self.adaptive:
                self._window_churn[start] = (
                    self._window_churn.get(start, 0) + 1
                )
            summary = self._summaries.get(start)
            if summary is not None:
                summary.add(key_id)
                if start in self._summary_rebuilding:
                    # A rebuild is in flight; queue the key id for the
                    # replacement filter instead of re-triggering.
                    self._pending_summary_adds.setdefault(start, []).append(
                        key_id
                    )
                elif summary.saturated:
                    # The filter outgrew its sizing: claim the rebuild.
                    self._summary_epoch += 1
                    rebuild_epoch = self._summary_epoch
                    self._summary_rebuilding[start] = rebuild_epoch
                    self._pending_summary_adds[start] = []
        if fanout_targets:
            # The invalidations ride the insert (same phase): one
            # zero-posting message per holding super-peer, so the
            # paper's posting counts are unchanged.
            network = self.topology.network
            by_start = {c.start: c for c in self.topology.clusters}
            sent = 0
            for holder_start in sorted(fanout_targets):
                holder = by_start.get(holder_start)
                if holder is None or holder.super_peer == home_sp:
                    continue
                network.log_message(
                    MessageKind.CACHE_INVALIDATE,
                    home_sp,
                    holder.super_peer,
                    0,
                    1,
                    key_repr=str(key_id),
                )
                sent += 1
            if sent:
                self._m_invalidations.add(sent)
                with self._lock:
                    self.stats.invalidations += sent
        if rebuild_epoch is not None:
            self._rebuild_cluster_summary(home, epoch=rebuild_epoch)

    # -- RoutingPolicy: membership -------------------------------------------------

    def on_membership_change(self, event=None) -> None:
        """Membership hook.  Join and leave change the live population,
        so the base chunking shifts and the whole map re-clusters.
        Crash and respawn do *not*: the fault model keeps the peer's
        ring position (key responsibility and replica placement are
        unchanged), so only the affected cluster's routing state is
        repaired — a single crash no longer throws away every other
        cluster's path cache."""
        if event is not None and getattr(event, "kind", None) in (
            "crash",
            "respawn",
        ):
            if self._scoped_membership_repair(event):
                return
        self.refresh()

    def _scoped_membership_repair(self, event: Any) -> bool:
        """Repair routing state around one crashed/respawned peer.

        Drops the affected cluster's cache and summary (a respawned
        peer comes back empty, a crashed one stops answering — either
        way the cluster's cached answers and key claims are suspect),
        re-elects its super-peer if that is the peer that crashed, and
        conservatively flushes the remote-copy registry: replication
        failover can re-home keys of the affected range, so copies
        anywhere may now be mis-registered.  Returns ``False`` when the
        peer is unknown to the current map (e.g. it crashed before the
        last full rebuild and respawned after) — the caller falls back
        to a full refresh."""
        try:
            cluster = self.topology.cluster_of_peer(event.peer_id)
        except PeerNotFoundError:
            return False
        with self._adapt_lock:
            current = cluster
            if (
                event.kind == "crash"
                and cluster.super_peer == event.peer_id
            ):
                reelected = self.topology.reelect(cluster)
                if reelected is not None:
                    current = reelected
            self._drop_cluster_state(current)
            with self._lock:
                self.stats.scoped_repairs += 1
            network = self.topology.network
            if self.use_summaries and any(
                network.is_live(m) for m in current.members
            ):
                self._rebuild_cluster_summary(current)
        return True

    def _drop_cluster_state(self, cluster: Cluster) -> None:
        """Invalidate one cluster's routing state (cache, summary, any
        in-flight summary rebuild) plus the whole remote-copy registry,
        and account the invalidation fan-out as maintenance."""
        network = self.topology.network
        start = cluster.start
        with self._lock:
            self._caches.pop(start, None)
            self._insert_gens[start] = self._insert_gens.get(start, 0) + 1
            self._summaries.pop(start, None)
            self._summary_rebuilding.pop(start, None)
            self._pending_summary_adds.pop(start, None)
            holder_starts: set[int] = set()
            for key, holders in self._remote_copies.items():
                for holder_start in holders:
                    holder_cache = self._caches.get(holder_start)
                    if holder_cache is not None:
                        holder_cache.remove(key)
                    holder_starts.add(holder_start)
            self._remote_copies.clear()
        if not holder_starts:
            return
        announce = cluster.super_peer
        if not network.is_live(announce):
            return
        by_start = {c.start: c for c in self.topology.clusters}
        sent = 0
        for holder_start in sorted(holder_starts):
            holder = by_start.get(holder_start)
            if holder is None or holder.super_peer == announce:
                continue
            network.log_maintenance(
                MessageKind.CACHE_INVALIDATE, announce, holder.super_peer
            )
            sent += 1
        if sent:
            self._m_invalidations.add(sent)
            with self._lock:
                self.stats.invalidations += sent

    def refresh(self) -> None:
        """Re-cluster and rebuild all routing state.

        Key ranges may have moved between clusters (churn handoffs), so
        the in-network caches are dropped wholesale and every summary is
        rebuilt from the member storages.  Also the restore hook after a
        snapshot load placed entries directly into storages.
        """
        with self._adapt_lock:
            self.topology.rebuild()
            with self._lock:
                self._caches = {}
                self._remote_copies.clear()
                self._window_lookups.clear()
                self._window_churn.clear()
                self._split_pairs.clear()
                self._calm_windows.clear()
                # Supersede every in-flight summary rebuild: cluster
                # boundaries moved, so an install scanned against the
                # old map must not resurrect a stale filter.
                self._summary_epoch += 1
                self._summary_rebuilding.clear()
                self._pending_summary_adds.clear()
                self._summaries = {}
                self.stats.rebuilds += 1
            self._rebuild_summaries()

    # -- adaptive split/merge controller ---------------------------------------------

    def _maybe_adapt(self) -> None:
        """Close a decision window every ``decision_interval`` lookups
        and act on it: merge calm split pairs, split the hottest
        overloaded cluster."""
        with self._lock:
            self._decision_tick += 1
            if self._decision_tick < self.decision_interval:
                return
            self._decision_tick = 0
            scores: dict[int, int] = dict(self._window_lookups)
            for start, churn in self._window_churn.items():
                scores[start] = scores.get(start, 0) + churn
            self._window_lookups.clear()
            self._window_churn.clear()
        with self._adapt_lock:
            self._apply_adaptation(scores)

    def _apply_adaptation(self, scores: dict[int, int]) -> None:
        """One decision round.  Caller holds ``_adapt_lock``."""
        clusters = self.topology.clusters
        for cluster in clusters:
            self._m_window_load.set(
                cluster.super_peer, float(scores.get(cluster.start, 0))
            )
        # Merges first: a pair must stay calm for merge_cool_down
        # *consecutive* windows (one hot window resets the count), so a
        # cluster oscillating around the thresholds never flaps.
        for upper_start in sorted(self._split_pairs):
            lower_start = self._split_pairs[upper_start]
            by_start = {c.start: c for c in self.topology.clusters}
            lower = by_start.get(lower_start)
            upper = by_start.get(upper_start)
            if (
                lower is None
                or upper is None
                or upper.index != lower.index + 1
            ):
                # The map changed underneath (full rebuild or another
                # reshape); the pair no longer exists.
                del self._split_pairs[upper_start]
                self._calm_windows.pop(upper_start, None)
                continue
            combined = scores.get(lower_start, 0) + scores.get(
                upper_start, 0
            )
            if combined > self.merge_threshold:
                self._calm_windows[upper_start] = 0
                continue
            calm = self._calm_windows.get(upper_start, 0) + 1
            if calm < self.merge_cool_down:
                self._calm_windows[upper_start] = calm
                continue
            merged = self.topology.merge(lower, upper)
            del self._split_pairs[upper_start]
            self._calm_windows.pop(upper_start, None)
            if merged is not None:
                self._m_merges.add()
                self._on_merged(lower, upper, merged)
        # One split per window, hottest first (ties to the lowest
        # start, keeping identical histories deterministic).
        candidates = [
            c
            for c in self.topology.clusters
            if len(c.members) >= 2
            and scores.get(c.start, 0) >= self.split_threshold
        ]
        if not candidates:
            return
        hottest = min(
            candidates, key=lambda c: (-scores.get(c.start, 0), c.start)
        )
        result = self.topology.split(hottest)
        if result is None:
            return
        lower, upper = result
        self._split_pairs[upper.start] = lower.start
        self._calm_windows[upper.start] = 0
        self._m_splits.add()
        self._on_split(lower, upper)

    def _on_split(self, lower: Cluster, upper: Cluster) -> None:
        """Routing-state follow-up to a topology split.  Caller holds
        ``_adapt_lock``."""
        self._drop_reshaped_state((lower.start, upper.start))
        if self.use_summaries:
            self._rebuild_cluster_summary(lower)
            self._rebuild_cluster_summary(upper)

    def _on_merged(
        self, lower: Cluster, upper: Cluster, merged: Cluster
    ) -> None:
        """Routing-state follow-up to a topology merge.  Caller holds
        ``_adapt_lock``."""
        self._drop_reshaped_state((lower.start, upper.start))
        if self.use_summaries:
            self._rebuild_cluster_summary(merged)

    def _drop_reshaped_state(self, starts: tuple[int, ...]) -> None:
        """Drop caches/summaries keyed by ``starts`` after a split or
        merge.  Generations are bumped so in-flight fills sampled
        against the old shape are discarded (a pre-split home cache
        slot must not receive a fill meant for what is now another
        cluster's range), and in-flight summary installs for the old
        shape become no-ops (marker popped)."""
        with self._lock:
            for start in starts:
                self._caches.pop(start, None)
                self._insert_gens[start] = (
                    self._insert_gens.get(start, 0) + 1
                )
                self._summaries.pop(start, None)
                self._summary_rebuilding.pop(start, None)
                self._pending_summary_adds.pop(start, None)
            # Copies *held by* the reshaped clusters died with their
            # caches; de-register them so later inserts do not fan out
            # to clusters that no longer hold anything.
            for key in list(self._remote_copies):
                holders = self._remote_copies[key]
                for start in starts:
                    holders.discard(start)
                if not holders:
                    del self._remote_copies[key]

    # -- path caches -----------------------------------------------------------------

    def _cache_peek(self, cluster_key: int, key: Any) -> Any | None:
        """The cached payload for ``key`` at ``cluster_key``'s
        super-peer, without touching hit/miss counters (the local-level
        probe of a two-level lookup: only the home-level probe defines
        the hit rate, so it stays comparable to static routing)."""
        if self.path_cache_capacity < 1:
            return None
        with self._lock:
            cache = self._caches.get(cluster_key)
        if cache is None:
            return None
        return cache.try_hit(_KeyProbe(key), _CACHE_DEPTH)

    def _cache_probe(
        self, cluster_key: int, key: Any, sp: int
    ) -> Any | None:
        """The cached payload for ``key`` at the home super-peer
        (possibly :data:`_ABSENT`), or ``None`` on a miss."""
        if self.path_cache_capacity < 1:
            return None
        with self._lock:
            cache = self._caches.get(cluster_key)
        payload = (
            cache.try_hit(_KeyProbe(key), _CACHE_DEPTH)
            if cache is not None
            else None
        )
        with self._lock:
            if payload is None:
                self.stats.cache_misses += 1
                self._per_sp_add(sp, "path_cache_misses")
            else:
                self.stats.cache_hits += 1
                self._per_sp_add(sp, "path_cache_hits")
        (self._m_cache_misses if payload is None else self._m_cache_hits).add()
        (
            self._m_sp_cache_misses
            if payload is None
            else self._m_sp_cache_hits
        ).add(sp)
        return payload

    def _cache_fill(
        self,
        cluster_key: int,
        key: Any,
        value: Any | None,
        generation: int,
    ) -> None:
        """Cache the response that just retraced through the home
        super-peer (absences included — repeated lattice probes of
        never-indexed subsets are the common case).

        ``generation`` is the cluster's insert generation sampled
        before the owner's storage was read; if any insert hit the
        cluster since, the read may predate it and the fill is dropped
        (the put runs under the router lock so it is atomic with
        :meth:`on_insert`'s bump-and-evict)."""
        if self.path_cache_capacity < 1:
            return
        payload = _ABSENT if value is None else value
        with self._lock:
            if self._insert_gens.get(cluster_key, 0) != generation:
                return
            cache = self._caches.get(cluster_key)
            if cache is None:
                cache = QueryResultCache(self.path_cache_capacity)
                self._caches[cluster_key] = cache
            cache.put(_KeyProbe(key), _CACHE_DEPTH, payload)
            if self.adaptive:
                # The home itself is a registered holder in adaptive
                # mode: a failover, respawn, or split can re-home the
                # key, and this copy would then still be reachable
                # through the local-level probe.
                self._register_copy_locked(key, cluster_key)

    def _fill_remote(
        self,
        holder_key: int,
        home_key: int,
        key: Any,
        payload: Any,
        generation: int,
    ) -> None:
        """Fill a *remote* copy (the querying cluster's super-peer) and
        register it for invalidation fan-out.  Guarded by the home
        cluster's insert generation exactly like :meth:`_cache_fill`."""
        if self.path_cache_capacity < 1:
            return
        with self._lock:
            if self._insert_gens.get(home_key, 0) != generation:
                return
            cache = self._caches.get(holder_key)
            if cache is None:
                cache = QueryResultCache(self.path_cache_capacity)
                self._caches[holder_key] = cache
            cache.put(_KeyProbe(key), _CACHE_DEPTH, payload)
            self._register_copy_locked(key, holder_key)

    def _register_copy_locked(self, key: Any, holder_key: int) -> None:
        """Record that ``holder_key``'s super-peer caches ``key``.
        Caller holds ``_lock``.  The registry is LRU-bounded; evicting
        a registry entry evicts the copies themselves."""
        holders = self._remote_copies.get(key)
        if holders is None:
            holders = set()
            self._remote_copies[key] = holders
        holders.add(holder_key)
        self._remote_copies.move_to_end(key)
        while len(self._remote_copies) > self._copy_registry_capacity:
            evicted_key, evicted_holders = self._remote_copies.popitem(
                last=False
            )
            for evicted_holder in evicted_holders:
                holder_cache = self._caches.get(evicted_holder)
                if holder_cache is not None:
                    holder_cache.remove(evicted_key)

    # -- summaries ---------------------------------------------------------------------

    def _may_contain(self, cluster_key: int, key_id: int) -> bool:
        with self._lock:
            summary = self._summaries.get(cluster_key)
            # A missing summary claims nothing: forward the lookup.
            return summary is None or key_id in summary

    def _rebuild_summaries(self) -> None:
        if not self.use_summaries:
            with self._lock:
                self._summaries = {}
            return
        for cluster in self.topology.clusters:
            self._rebuild_cluster_summary(cluster)

    def _rebuild_cluster_summary(
        self, cluster: Cluster, epoch: int | None = None
    ) -> None:
        """Scan the cluster members' storages into a fresh summary and
        charge the members' summary shipments to maintenance.

        ``epoch`` is the rebuild's claim ticket: saturation rebuilds
        mint it under the lock in :meth:`on_insert` (single-flight);
        every other caller (init, refresh, split/merge, scoped repair)
        passes ``None`` and a fresh epoch is minted here, superseding
        whatever rebuild may be in flight for the cluster.  The install
        is a no-op unless the claim still stands."""
        if not self.use_summaries:
            return
        start = cluster.start
        if epoch is None:
            with self._lock:
                self._summary_epoch += 1
                epoch = self._summary_epoch
                self._summary_rebuilding[start] = epoch
                self._pending_summary_adds[start] = []
        network = self.topology.network
        rows = scan_cluster_key_ids(network, cluster)
        summary = summary_for_scan(rows)
        with network.accounting.phase_scope(Phase.MAINTENANCE):
            for member, key_ids in rows:
                for key_id in key_ids:
                    summary.add(key_id)
                if key_ids and member != cluster.super_peer:
                    network.log_message(
                        MessageKind.ROUTING_UPDATE,
                        member,
                        cluster.super_peer,
                        postings=_summary_posting_equivalents(len(key_ids)),
                    )
        self._install_summary(start, summary, epoch)

    def _install_summary(
        self, cluster_key: int, summary: ClusterSummary, epoch: int
    ) -> bool:
        """Atomically install a rebuilt summary if its claim still
        stands, folding in the key ids inserted while the scan ran.
        A superseded rebuild (refresh, split/merge, scoped repair, or
        a newer claim) is discarded — this is what makes concurrent
        rebuilds single-flight and stale installs harmless."""
        with self._lock:
            if self._summary_rebuilding.get(cluster_key) != epoch:
                return False
            for key_id in self._pending_summary_adds.pop(cluster_key, []):
                summary.add(key_id)
            del self._summary_rebuilding[cluster_key]
            self._summaries[cluster_key] = summary
            self.stats.summary_rebuilds += 1
        return True

    # -- inspection --------------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """Topology shape + routing/caching counters (backend stats)."""
        stats = self.stats
        info: dict[str, object] = dict(self.topology.describe())
        with self._lock:
            per_sp = {
                str(peer_id): dict(counters)
                for peer_id, counters in sorted(self._per_sp.items())
            }
        info.update(
            {
                "path_cache_capacity": self.path_cache_capacity,
                "adaptive": self.adaptive,
                "lookups": stats.lookups,
                "inserts": stats.inserts,
                "path_cache_hits": stats.cache_hits,
                "path_cache_misses": stats.cache_misses,
                "path_cache_hit_rate": round(stats.cache_hit_rate, 4),
                "local_cache_hits": stats.local_cache_hits,
                "summary_skips": stats.summary_skips,
                "summary_rebuilds": stats.summary_rebuilds,
                "scoped_repairs": stats.scoped_repairs,
                "invalidations": stats.invalidations,
                "sp_load": {
                    peer: counters.get("load", 0)
                    for peer, counters in per_sp.items()
                },
                "per_super_peer": per_sp,
            }
        )
        return info


def _summary_posting_equivalents(num_keys: int) -> int:
    """Wire size, in postings, of one member's key summary — the same
    bits-per-element sizing rule as the Bloom baseline's filters."""
    bits = max(8.0, num_keys * optimal_bits_per_element(0.01))
    return max(1, math.ceil(bits / 8 / 8))
