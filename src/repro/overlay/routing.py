"""Hierarchical routing with in-network DHT-path result caching.

:class:`HierarchicalRouter` implements the
:class:`repro.net.network.RoutingPolicy` hook over a
:class:`~repro.overlay.topology.SuperPeerTopology`.  A lookup for key K
issued by leaf S travels::

    S --> SP(S) --> SP(K)  [the *home* super-peer] --> owner(K)

and the response retraces ``owner -> SP(K) -> S`` — the classic
DHT-path-caching shape: the home super-peer sees every response for the
keys in its range and keeps a bounded
:class:`~repro.retrieval.cache.QueryResultCache` of them (*and* of
definitive absences), so repeated term-sets are answered mid-path
without involving the responsible peer.  Freshness is
invalidate-on-insert: every insert for K also routes through SP(K),
which evicts K before the write returns, so a cached answer is never
stale and results stay byte-identical to flat routing.

Two mid-path short-circuits answer at the home super-peer:

- **path-cache hit** — the key's last response (or absence) is cached;
- **summary skip** — the cluster's Bloom summary proves the key was
  never stored in its range (no false negatives; see
  :mod:`repro.overlay.summaries`).

Every hop count is bounded by the hierarchy depth (≤ 3 request hops,
≤ 2 response hops) instead of Chord's O(log N) walk, and each message's
posting payload is identical to flat routing — traffic in the paper's
cost unit can only improve.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ConfigurationError
from ..index.bloom import optimal_bits_per_element
from ..net.accounting import Phase
from ..net.messages import MessageKind
from ..net.network import P2PNetwork
from ..obs.metrics import get_hub
from ..retrieval.cache import QueryResultCache
from .summaries import DEFAULT_SUMMARY_CAPACITY, ClusterSummary
from .topology import Cluster, SuperPeerTopology

__all__ = ["HierarchicalRouter", "RouterStats"]

#: Cached marker for "the responsible peer stores nothing under this
#: key" — distinct from a cache miss (no entry at all).
_ABSENT = object()

#: Path-cache payloads are depth-independent stored values, so every
#: cache call uses one nominal depth.
_CACHE_DEPTH = 1


class _KeyProbe:
    """Adapter giving a raw DHT key the ``.term_set`` attribute the
    query-result cache keys by."""

    __slots__ = ("term_set",)

    def __init__(self, key: Any) -> None:
        self.term_set = key


@dataclass
class RouterStats:
    """Counters over the router's lifetime (monotonic; survive
    re-clustering even though the caches themselves are dropped)."""

    lookups: int = 0
    inserts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    summary_skips: int = 0
    rebuilds: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class HierarchicalRouter:
    """Routes DHT messages through the super-peer hierarchy.

    Args:
        topology: the cluster map (owns re-clustering + its traffic).
        path_cache_capacity: per-super-peer result-cache size in keys;
            ``0`` disables in-network caching.
        use_summaries: keep Bloom key summaries at super-peers and
            answer definitely-absent keys mid-path.

    Install on the topology's network with :meth:`install`; the network
    then delegates every lookup, and hop counts for inserts and stats
    publications, to this object.
    """

    def __init__(
        self,
        topology: SuperPeerTopology,
        path_cache_capacity: int = 128,
        use_summaries: bool = True,
    ) -> None:
        if path_cache_capacity < 0:
            raise ConfigurationError(
                "path_cache_capacity must be >= 0, got "
                f"{path_cache_capacity}"
            )
        self.topology = topology
        self.path_cache_capacity = path_cache_capacity
        self.use_summaries = use_summaries
        self.stats = RouterStats()
        #: cluster index -> bounded result cache at that super-peer.
        self._caches: dict[int, QueryResultCache] = {}
        #: cluster index -> Bloom summary at that super-peer.
        self._summaries: dict[int, ClusterSummary] = {}
        #: cluster index -> insert generation; a fill is valid only if
        #: no insert hit the cluster between the owner read and the
        #: fill (see :meth:`_cache_fill`).
        self._insert_gens: dict[int, int] = {}
        # Guards stats, the cache/summary maps, and filter mutation
        # (Bloom add is read-modify-write); the caches themselves are
        # internally locked.
        self._lock = threading.Lock()
        # Process-wide observability counters (repro.obs): the same
        # quantities as RouterStats, but readable by benches and the
        # serving tier without a reference to this router.
        hub = get_hub()
        self._m_lookups = hub.counter("overlay.lookups")
        self._m_cache_hits = hub.counter("overlay.path_cache_hits")
        self._m_cache_misses = hub.counter("overlay.path_cache_misses")
        self._m_summary_skips = hub.counter("overlay.summary_skips")
        self._m_inserts = hub.counter("overlay.inserts")
        self._rebuild_summaries()

    def install(self, network: P2PNetwork) -> None:
        """Attach this router to ``network`` (its topology's network).

        Raises:
            ConfigurationError: the network already routes through a
                different policy, or belongs to another topology.
        """
        if network is not self.topology.network:
            raise ConfigurationError(
                "router must be installed on the network its topology "
                "was built over"
            )
        if network.router is not None and network.router is not self:
            raise ConfigurationError(
                "network already has a routing policy installed; one "
                "super-peer hierarchy per network"
            )
        network.router = self

    # -- RoutingPolicy: lookups ----------------------------------------------------

    def route_lookup(
        self,
        network: P2PNetwork,
        source_id: int,
        key: Any,
        key_id: int,
        response_size: Callable[[Any | None], int],
        key_repr: str = "",
    ) -> Any | None:
        with self._lock:
            self.stats.lookups += 1
        self._m_lookups.add()
        # The *effective* owner: the responsible peer, or — with a
        # replication manager installed — the first live replica.  A
        # crashed owner with no live replica leaves the range dark.
        owner = network.effective_owner(key_id)
        if owner is None:
            # The request still travels toward the dark range and times
            # out; no response arrives.
            local_sp = self.topology.super_peer_of(source_id)
            network.log_message(
                MessageKind.LOOKUP,
                source_id,
                network.overlay.responsible_peer(key_id),
                0,
                max(1, (source_id != local_sp) + 1),
                key_repr,
                route="dark_range",
            )
            return None
        if owner == source_id:
            # Self-owned key: answered locally, same message shape as
            # flat routing (request + response, one hop each).
            network.log_message(
                MessageKind.LOOKUP, source_id, owner, 0, 1, key_repr,
                route="self_owned",
            )
            value = network.storage_by_id(owner).get(key)
            network.log_message(
                MessageKind.RESPONSE,
                owner,
                source_id,
                response_size(value),
                1,
                key_repr,
                route="self_owned",
            )
            return value
        home = self.topology.cluster_of_peer(owner)
        home_sp = home.super_peer
        local_sp = self.topology.super_peer_of(source_id)
        to_home = (source_id != local_sp) + (local_sp != home_sp)

        cached = self._cache_probe(home.index, key)
        if cached is not None:
            value = None if cached is _ABSENT else cached
            self._answer_at_home(
                network, source_id, home_sp, to_home,
                response_size(value), key_repr, "path_cache",
            )
            return value
        if self.use_summaries and not self._may_contain(home.index, key_id):
            with self._lock:
                self.stats.summary_skips += 1
            self._m_summary_skips.add()
            self._answer_at_home(
                network, source_id, home_sp, to_home,
                response_size(None), key_repr, "summary_skip",
            )
            return None

        # Full path: forward to the responsible peer; the response
        # retraces through the home super-peer, filling its cache.
        request_hops = max(1, to_home + (home_sp != owner))
        network.log_message(
            MessageKind.LOOKUP, source_id, owner, 0, request_hops, key_repr,
            route="leaf>sp>home>owner",
        )
        with self._lock:
            generation = self._insert_gens.get(home.index, 0)
        value = network.storage_by_id(owner).get(key)
        response_hops = max(1, (owner != home_sp) + (home_sp != source_id))
        network.log_message(
            MessageKind.RESPONSE,
            owner,
            source_id,
            response_size(value),
            response_hops,
            key_repr,
            route="owner>home>leaf",
        )
        self._cache_fill(home.index, key, value, generation)
        return value

    def _answer_at_home(
        self,
        network: P2PNetwork,
        source_id: int,
        home_sp: int,
        to_home: int,
        postings: int,
        key_repr: str,
        route: str,
    ) -> None:
        """Log the message pair of a lookup answered at the home
        super-peer (cache hit or summary skip)."""
        network.log_message(
            MessageKind.LOOKUP,
            source_id,
            home_sp,
            0,
            max(1, to_home),
            key_repr,
            route=route,
        )
        network.log_message(
            MessageKind.RESPONSE, home_sp, source_id, postings, 1, key_repr,
            route=route,
        )

    # -- RoutingPolicy: inserts / generic hops ---------------------------------------

    def path_hops(self, source_id: int, key_id: int) -> int:
        """Request-path hops source -> local SP -> home SP -> owner."""
        network = self.topology.network
        owner = network.effective_owner(key_id)
        if owner is None:
            # Dark range: the message travels to the local super-peer
            # and on toward the dead region before timing out.
            local_sp = self.topology.super_peer_of(source_id)
            return max(1, (source_id != local_sp) + 1)
        if owner == source_id:
            return 1
        home_sp = self.topology.super_peer_of(owner)
        local_sp = self.topology.super_peer_of(source_id)
        return max(
            1,
            (source_id != local_sp)
            + (local_sp != home_sp)
            + (home_sp != owner),
        )

    def on_insert(self, key: Any, key_id: int) -> None:
        """Freshness hook: the insert just routed through the home
        super-peer, which evicts any cached answer for the key and adds
        it to the cluster summary."""
        self._m_inserts.add()
        home = self.topology.home_cluster(key_id)
        if home is None:
            # Dark range: the write was lost, nothing is cached for the
            # key (dark lookups bypass the cache), nothing to invalidate.
            with self._lock:
                self.stats.inserts += 1
            return
        with self._lock:
            self.stats.inserts += 1
            # Bump the generation and evict under the same lock the
            # fill path checks the generation under, so a lookup that
            # read the pre-insert value can never re-cache it after
            # this invalidation.
            self._insert_gens[home.index] = (
                self._insert_gens.get(home.index, 0) + 1
            )
            cache = self._caches.get(home.index)
            if cache is not None:
                cache.remove(key)
            summary = self._summaries.get(home.index)
            if summary is not None:
                summary.add(key_id)
                saturated = summary.saturated
            else:
                saturated = False
        if saturated:
            # The filter outgrew its sizing: the super-peer asks its
            # members to re-send summaries and rebuilds at 2x capacity.
            self._rebuild_cluster_summary(home)

    # -- RoutingPolicy: membership -------------------------------------------------

    def on_membership_change(self, event=None) -> None:
        # Every membership kind — join, leave, crash, respawn — changes
        # which peers can serve, so the response is the same: re-cluster
        # the live population and rebuild routing state.
        self.refresh()

    def refresh(self) -> None:
        """Re-cluster and rebuild all routing state.

        Key ranges may have moved between clusters (churn handoffs), so
        the in-network caches are dropped wholesale and every summary is
        rebuilt from the member storages.  Also the restore hook after a
        snapshot load placed entries directly into storages.
        """
        self.topology.rebuild()
        with self._lock:
            self._caches = {}
            self.stats.rebuilds += 1
        self._rebuild_summaries()

    # -- path caches -----------------------------------------------------------------

    def _cache_probe(self, cluster_index: int, key: Any) -> Any | None:
        """The cached payload for ``key`` at the home super-peer
        (possibly :data:`_ABSENT`), or ``None`` on a miss."""
        if self.path_cache_capacity < 1:
            return None
        with self._lock:
            cache = self._caches.get(cluster_index)
        payload = (
            cache.try_hit(_KeyProbe(key), _CACHE_DEPTH)
            if cache is not None
            else None
        )
        with self._lock:
            if payload is None:
                self.stats.cache_misses += 1
            else:
                self.stats.cache_hits += 1
        (self._m_cache_misses if payload is None else self._m_cache_hits).add()
        return payload

    def _cache_fill(
        self,
        cluster_index: int,
        key: Any,
        value: Any | None,
        generation: int,
    ) -> None:
        """Cache the response that just retraced through the home
        super-peer (absences included — repeated lattice probes of
        never-indexed subsets are the common case).

        ``generation`` is the cluster's insert generation sampled
        before the owner's storage was read; if any insert hit the
        cluster since, the read may predate it and the fill is dropped
        (the put runs under the router lock so it is atomic with
        :meth:`on_insert`'s bump-and-evict)."""
        if self.path_cache_capacity < 1:
            return
        payload = _ABSENT if value is None else value
        with self._lock:
            if self._insert_gens.get(cluster_index, 0) != generation:
                return
            cache = self._caches.get(cluster_index)
            if cache is None:
                cache = QueryResultCache(self.path_cache_capacity)
                self._caches[cluster_index] = cache
            cache.put(_KeyProbe(key), _CACHE_DEPTH, payload)

    # -- summaries ---------------------------------------------------------------------

    def _may_contain(self, cluster_index: int, key_id: int) -> bool:
        with self._lock:
            summary = self._summaries.get(cluster_index)
            # A missing summary claims nothing: forward the lookup.
            return summary is None or key_id in summary

    def _rebuild_summaries(self) -> None:
        if not self.use_summaries:
            with self._lock:
                self._summaries = {}
            return
        for cluster in self.topology.clusters:
            self._rebuild_cluster_summary(cluster)

    def _rebuild_cluster_summary(self, cluster: Cluster) -> None:
        """Scan the cluster members' storages into a fresh summary and
        charge the members' summary shipments to maintenance."""
        network = self.topology.network
        member_key_ids: list[list[int]] = []
        total = 0
        for member in cluster.members:
            # Clusters hold live peers, but a member may have crashed
            # between the rebuild and a saturation-triggered re-scan.
            if not network.is_live(member):
                member_key_ids.append([])
                continue
            key_ids = [
                entry.key_id for entry in network.storage_by_id(member)
            ]
            member_key_ids.append(key_ids)
            total += len(key_ids)
        summary = ClusterSummary(
            capacity=max(DEFAULT_SUMMARY_CAPACITY, 2 * total)
        )
        with network.accounting.phase_scope(Phase.MAINTENANCE):
            for member, key_ids in zip(cluster.members, member_key_ids):
                for key_id in key_ids:
                    summary.add(key_id)
                if key_ids and member != cluster.super_peer:
                    network.log_message(
                        MessageKind.ROUTING_UPDATE,
                        member,
                        cluster.super_peer,
                        postings=_summary_posting_equivalents(len(key_ids)),
                    )
        with self._lock:
            self._summaries[cluster.index] = summary

    # -- inspection --------------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """Topology shape + routing/caching counters (backend stats)."""
        stats = self.stats
        info: dict[str, object] = dict(self.topology.describe())
        info.update(
            {
                "path_cache_capacity": self.path_cache_capacity,
                "lookups": stats.lookups,
                "inserts": stats.inserts,
                "path_cache_hits": stats.cache_hits,
                "path_cache_misses": stats.cache_misses,
                "path_cache_hit_rate": round(stats.cache_hit_rate, 4),
                "summary_skips": stats.summary_skips,
            }
        )
        return info


def _summary_posting_equivalents(num_keys: int) -> int:
    """Wire size, in postings, of one member's key summary — the same
    bits-per-element sizing rule as the Bloom baseline's filters."""
    bits = max(8.0, num_keys * optimal_bits_per_element(0.01))
    return max(1, math.ceil(bits / 8 / 8))
