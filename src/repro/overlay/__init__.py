"""Super-peer overlay: hierarchical routing over the flat DHT.

The paper's HDK index runs on a flat structured overlay where every
query pays an O(log N) DHT walk per key.  This subsystem adds the
super-peer architecture of Ismail & Quafafou's routing work on top of
the *unchanged* DHT responsibility rule, in three layers:

- :class:`SuperPeerTopology` (``topology.py``) — clusters leaf peers
  under super-peers by key-range affinity over the existing ``node_id``
  space, with join/leave re-clustering accounted as maintenance
  traffic;
- :class:`ClusterSummary` (``summaries.py``) — Bloom-compressed key
  summaries each super-peer holds for its cluster's key range, so
  definitely-absent keys are answered mid-path;
- :class:`HierarchicalRouter` (``routing.py``) — the
  :class:`repro.net.network.RoutingPolicy` implementation: bounded-hop
  request paths (leaf → super-peer → home super-peer → owner), response
  retracing through the home super-peer, and an in-network
  DHT-path result cache per super-peer with invalidate-on-insert
  freshness.

Because storage placement still follows ``overlay.responsible_peer``,
the ``hdk_super`` backend built on this subsystem returns byte-identical
top-k rankings to ``hdk`` — only hop counts and mid-path answering
change.
"""

from .routing import HierarchicalRouter, RouterStats
from .summaries import ClusterSummary
from .topology import Cluster, SuperPeerTopology

__all__ = [
    "Cluster",
    "ClusterSummary",
    "HierarchicalRouter",
    "RouterStats",
    "SuperPeerTopology",
]
