"""Bloom-compressed cluster key summaries.

Each super-peer holds a summary of the key ids stored inside its
cluster's key range, reusing the Bloom machinery of the
``single_term_bloom`` baseline (:class:`repro.index.bloom.BloomFilter`
hashes integers — posting doc ids there, hashed key ids here).  A
summary answers "might this cluster store key K?":

- **no** is definitive — the home super-peer replies *not found*
  without the final hop to the responsible peer (the HDK lattice walk
  probes many never-indexed subsets, so this path is hot);
- **yes** may be a false positive — the lookup is simply forwarded, so
  correctness never depends on the filter.

No false negatives by construction: every insert routes through the
home super-peer, which adds the key id before any later lookup can
consult the filter, and re-clustering rebuilds summaries from the
member storages (covering churn handoffs that move keys between
ranges).  Bloom filters cannot be resized in place, so a summary that
outgrows its capacity reports :attr:`saturated` and the router rebuilds
it at double capacity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..index.bloom import BloomFilter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.network import P2PNetwork
    from .topology import Cluster

__all__ = [
    "ClusterSummary",
    "DEFAULT_SUMMARY_CAPACITY",
    "scan_cluster_key_ids",
    "summary_for_scan",
]

#: Fresh-cluster filter sizing (keys); doubled on saturation.
DEFAULT_SUMMARY_CAPACITY = 1024


class ClusterSummary:
    """A bounded-size membership summary over hashed key ids.

    Args:
        capacity: element count the filter is sized for.
        target_fpr: false-positive rate at ``capacity`` elements.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SUMMARY_CAPACITY,
        target_fpr: float = 0.01,
    ) -> None:
        self.capacity = max(1, capacity)
        self._filter = BloomFilter.for_capacity(
            self.capacity, target_fpr=target_fpr
        )

    def add(self, key_id: int) -> None:
        """Record that the cluster stores ``key_id``.

        Idempotent: a key id the filter already claims is skipped, so
        the element count tracks *distinct* keys — every HDK key is
        inserted once per contributing peer, and counting repeats would
        saturate the filter (triggering rebuilds) without adding any
        information.  On a false positive the skip is still sound: the
        membership test already answers "may contain" for the id.
        """
        if key_id not in self._filter:
            self._filter.add(key_id)

    def __contains__(self, key_id: int) -> bool:
        """May-contain test (false positives possible, negatives not)."""
        return key_id in self._filter

    def __len__(self) -> int:
        """Number of key ids added."""
        return len(self._filter)

    @property
    def saturated(self) -> bool:
        """True once more keys were added than the filter was sized
        for — the false-positive rate is degrading and the owner should
        rebuild at a larger capacity."""
        return len(self._filter) > self.capacity

    def posting_equivalents(self) -> int:
        """Wire size in postings (the traffic unit maintenance exchange
        of this summary is charged at)."""
        return self._filter.posting_equivalents()

    def expected_fpr(self) -> float:
        """Expected false-positive rate at the current load."""
        return self._filter.expected_fpr()


def scan_cluster_key_ids(
    network: "P2PNetwork", cluster: "Cluster"
) -> list[tuple[int, list[int]]]:
    """Per-member key-id scan over ``cluster``'s *live* members.

    The raw material of every summary (re)build — full refreshes,
    saturation-triggered rebuilds, and the per-half rebuilds after an
    adaptive split or merge all start from this scan.  A crashed member
    contributes an empty row: its storage is gone, so its keys must not
    be claimed (false positives only waste a hop, but claiming keys for
    a member that *might* hold them is exactly what the filter is for).
    """
    rows: list[tuple[int, list[int]]] = []
    for member in cluster.members:
        if not network.is_live(member):
            rows.append((member, []))
            continue
        rows.append(
            (
                member,
                [entry.key_id for entry in network.storage_by_id(member)],
            )
        )
    return rows


def summary_for_scan(
    rows: list[tuple[int, list[int]]],
    minimum_capacity: int = DEFAULT_SUMMARY_CAPACITY,
) -> ClusterSummary:
    """An empty summary sized for a :func:`scan_cluster_key_ids` result:
    2x the scanned key count (headroom before the next saturation),
    floored at ``minimum_capacity``.  The caller adds the scanned ids —
    sizing and population are split so the router can charge each
    member's shipment while it populates."""
    total = sum(len(key_ids) for _, key_ids in rows)
    return ClusterSummary(capacity=max(minimum_capacity, 2 * total))
