"""Cluster leaf peers under super-peers by key-range affinity.

Peers are sorted by overlay id and chunked into runs of ``fanout``
consecutive peers; each run is one *cluster*.  Because DHT
responsibility is the ring successor, the peer responsible for any key
id lies inside the cluster whose id range covers it — so the cluster
doubles as the key-range routing unit: the super-peers' shared routing
index is simply the sorted list of cluster boundaries, and the *home*
cluster of a key is the cluster of its responsible peer.

**Election** is load-aware: the member with the least observed load
(fed by the adaptive router via :meth:`SuperPeerTopology.observe_load`)
is promoted, ties broken by lowest id.  With no load history every load
is zero, so the static overlay reproduces the original lowest-id choice
and snapshots stay byte-reproducible; under identical load histories
the election is deterministic for the same reason.

**Splitting** halves a hot cluster at its median member: the upper half
becomes a new cluster with its own super-peer, recorded as an extra
boundary on top of the fanout chunking.  :meth:`merge` removes the
boundary again (the router drives both off windowed load counters, with
hysteresis).  A full :meth:`rebuild` — membership changed, so the base
chunking shifts — clears the extra boundaries; persistent hotspots
simply re-split.

Membership changes re-cluster from scratch (the peer population is the
input, not an incremental structure); the registration and
routing-index-exchange messages this costs are logged under the
MAINTENANCE phase via a thread-local :meth:`phase_scope`, exactly like
churn key handoffs — the paper's analysis reports maintenance
separately from indexing/retrieval.  Split/merge/re-election traffic
goes through :meth:`P2PNetwork.log_maintenance` for the same reason:
those fire mid-query, where the thread's phase is RETRIEVAL.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, NetworkError, PeerNotFoundError
from ..net.accounting import Phase
from ..net.messages import MessageKind
from ..net.network import P2PNetwork

__all__ = ["Cluster", "SuperPeerTopology"]


@dataclass(frozen=True)
class Cluster:
    """One super-peer cluster: a run of consecutive peers on the ring.

    Attributes:
        index: position in the topology's cluster list.
        super_peer: overlay id of the promoted member (least observed
            load, ties to lowest id).
        members: all member overlay ids, ascending (includes the
            super-peer).
    """

    index: int
    super_peer: int
    members: tuple[int, ...]

    @property
    def start(self) -> int:
        """Stable identity of the cluster's key range: its lowest
        member id.  Unlike :attr:`index` it survives splits and merges
        of *other* clusters (which shift list positions), so the router
        keys its per-cluster caches/summaries/generations by it."""
        return self.members[0]

    def __len__(self) -> int:
        return len(self.members)


class SuperPeerTopology:
    """The cluster map and its maintenance protocol.

    Args:
        network: the simulated network whose peers are clustered.
        fanout: maximum leaves per cluster (>= 1).  ``fanout=1`` makes
            every peer its own super-peer (the degenerate flat-ish
            case); larger fanouts trade shorter super-peer routing
            tables against larger clusters.

    Thread-safety: the cluster map is swapped atomically on every
    mutation (readers see the old or the new map, never a half-built
    one).  Full rebuilds are driven by membership changes, which the
    simulator performs sequentially; split/merge/re-election are driven
    by the router, which serializes them behind its own adaptation
    lock.  Load observation is a plain dict update — concurrent
    observers may lose increments, which only blurs an already
    heuristic signal; sequential histories stay exactly deterministic.
    """

    def __init__(self, network: P2PNetwork, fanout: int = 8) -> None:
        if fanout < 1:
            raise ConfigurationError(
                f"overlay fanout must be >= 1, got {fanout}"
            )
        self.network = network
        self.fanout = fanout
        self.rebuilds = 0
        self.splits = 0
        self.merges = 0
        #: peer id -> cumulative observed load (routing work units the
        #: adaptive router charges); the election signal.
        self._peer_load: dict[int, float] = {}
        #: member ids that start a split-induced cluster, on top of the
        #: base fanout chunking; cleared by full rebuilds.
        self._extra_boundaries: set[int] = set()
        #: (clusters, peer id -> cluster index), swapped as one object.
        self._state: tuple[tuple[Cluster, ...], dict[int, int]] = ((), {})
        self.rebuild()

    # -- load-aware election -------------------------------------------------------

    def observe_load(self, peer_id: int, amount: float = 1.0) -> None:
        """Charge ``amount`` units of routing work to ``peer_id``.

        Fed by the adaptive router for every peer that serves or
        forwards a request; the next election (rebuild, split, merge,
        or crash re-election) prefers the least-loaded member.
        """
        self._peer_load[peer_id] = self._peer_load.get(peer_id, 0.0) + amount

    def load_of(self, peer_id: int) -> float:
        """Cumulative observed load of ``peer_id`` (0 if never charged)."""
        return self._peer_load.get(peer_id, 0.0)

    def _elect(self, members: tuple[int, ...]) -> int:
        """Least observed load wins; ties — including the cold start,
        where every load is zero — break to the lowest id.  Identical
        load histories therefore elect identical super-peers, and an
        unloaded (static) topology reproduces the lowest-id choice."""
        return min(
            members, key=lambda m: (self._peer_load.get(m, 0.0), m)
        )

    # -- construction / maintenance ----------------------------------------------

    def rebuild(self) -> None:
        """Re-cluster the current peer population and account the
        maintenance traffic (member registrations + the super-peers'
        routing-index exchange).

        Only *live* peers are clustered: a crashed peer cannot serve as
        a super-peer or answer for its range, and the population
        re-clusters around it exactly as it would around a departure —
        while the peer keeps its ring position, so key responsibility
        (and replica placement) is unchanged.

        Split-induced boundaries are dropped: the base chunking shifts
        with membership, so carrying them over would split arbitrary
        cold ranges; a range that stays hot re-splits within one
        decision window."""
        peer_ids = self.network.live_peer_ids()
        if not peer_ids:
            raise NetworkError("cannot cluster an empty network")
        self._extra_boundaries.clear()
        clusters: list[Cluster] = []
        cluster_of: dict[int, int] = {}
        for index, start in enumerate(
            range(0, len(peer_ids), self.fanout)
        ):
            members = tuple(peer_ids[start : start + self.fanout])
            clusters.append(
                Cluster(
                    index=index,
                    super_peer=self._elect(members),
                    members=members,
                )
            )
            for member in members:
                cluster_of[member] = index
        # Thread-local phase override: a rebuild racing with queries in
        # other threads must not re-attribute their messages.
        with self.network.accounting.phase_scope(Phase.MAINTENANCE):
            for cluster in clusters:
                for member in cluster.members:
                    if member != cluster.super_peer:
                        self.network.log_message(
                            MessageKind.CLUSTER_JOIN,
                            member,
                            cluster.super_peer,
                        )
            # Every super-peer learns every cluster boundary (the
            # routing index is tiny: one id per cluster, zero postings).
            super_peers = [c.super_peer for c in clusters]
            for source in super_peers:
                for target in super_peers:
                    if source != target:
                        self.network.log_message(
                            MessageKind.ROUTING_UPDATE, source, target
                        )
        self._state = (tuple(clusters), cluster_of)
        self.rebuilds += 1

    def _swap(self, pieces: list[Cluster]) -> tuple[Cluster, ...]:
        """Renumber ``pieces``, rebuild the member map, and swap the
        state atomically.  Returns the installed cluster tuple."""
        rebuilt = tuple(
            cluster
            if cluster.index == index
            else Cluster(
                index=index,
                super_peer=cluster.super_peer,
                members=cluster.members,
            )
            for index, cluster in enumerate(pieces)
        )
        cluster_of = {
            member: cluster.index
            for cluster in rebuilt
            for member in cluster.members
        }
        self._state = (rebuilt, cluster_of)
        return rebuilt

    def _current(self, cluster: Cluster) -> Cluster | None:
        """The live map entry matching a caller-held ``cluster`` handle,
        or ``None`` when the map changed underneath (handles are
        immutable snapshots, so every mutation re-validates)."""
        clusters, _ = self._state
        if cluster.index < len(clusters):
            candidate = clusters[cluster.index]
            if candidate.members == cluster.members:
                return candidate
        return None

    def split(self, cluster: Cluster) -> tuple[Cluster, Cluster] | None:
        """Split ``cluster`` at its median member: the lower half keeps
        the cluster's start key, the upper half becomes a new cluster
        whose start is recorded as an extra boundary.  Both halves
        elect their own super-peer.  Returns ``(lower, upper)``, or
        ``None`` when the handle is stale or the cluster is too small.

        Deterministic by construction — median split point, (load, id)
        election — so identical load histories produce identical
        post-split maps."""
        current = self._current(cluster)
        if current is None or len(current.members) < 2:
            return None
        clusters, _ = self._state
        half = len(current.members) // 2
        lower_members = current.members[:half]
        upper_members = current.members[half:]
        lower = Cluster(
            index=current.index,
            super_peer=self._elect(lower_members),
            members=lower_members,
        )
        upper = Cluster(
            index=current.index + 1,
            super_peer=self._elect(upper_members),
            members=upper_members,
        )
        self._extra_boundaries.add(upper_members[0])
        installed = self._swap(
            list(clusters[: current.index])
            + [lower, upper]
            + list(clusters[current.index + 1 :])
        )
        lower, upper = installed[current.index], installed[current.index + 1]
        self._log_reshape(
            MessageKind.CLUSTER_SPLIT,
            current,
            (lower, upper),
            announce=current.super_peer,
        )
        self.splits += 1
        return lower, upper

    def merge(self, lower: Cluster, upper: Cluster) -> Cluster | None:
        """Fold a cooled-down split pair back into one cluster (the
        inverse of :meth:`split`): ``upper``'s start must be a
        split-induced boundary and the two handles must be adjacent.
        Returns the merged cluster, or ``None`` on a stale handle."""
        current_lower = self._current(lower)
        current_upper = self._current(upper)
        if (
            current_lower is None
            or current_upper is None
            or current_upper.index != current_lower.index + 1
            or current_upper.start not in self._extra_boundaries
        ):
            return None
        clusters, _ = self._state
        members = current_lower.members + current_upper.members
        merged = Cluster(
            index=current_lower.index,
            super_peer=self._elect(members),
            members=members,
        )
        self._extra_boundaries.discard(current_upper.start)
        installed = self._swap(
            list(clusters[: current_lower.index])
            + [merged]
            + list(clusters[current_upper.index + 1 :])
        )
        merged = installed[current_lower.index]
        self._log_reshape(
            MessageKind.CLUSTER_MERGE,
            current_upper,
            (merged,),
            announce=current_upper.super_peer,
        )
        self.merges += 1
        return merged

    def reelect(self, cluster: Cluster) -> Cluster | None:
        """Re-run election over ``cluster``'s *live* members (scoped
        super-peer replacement after its super-peer crashed — the rest
        of the map is untouched).  Returns the updated cluster, or
        ``None`` when the handle is stale or every member is crashed
        (the range is dark; there is nothing to promote)."""
        current = self._current(cluster)
        if current is None:
            return None
        live = tuple(
            m for m in current.members if self.network.is_live(m)
        )
        if not live:
            return None
        super_peer = self._elect(live)
        if super_peer == current.super_peer:
            return current
        clusters, cluster_of = self._state
        updated = Cluster(
            index=current.index,
            super_peer=super_peer,
            members=current.members,
        )
        pieces = list(clusters)
        pieces[current.index] = updated
        # Members are unchanged, so the member map carries over.
        self._state = (tuple(pieces), cluster_of)
        for member in live:
            if member != super_peer:
                self.network.log_maintenance(
                    MessageKind.CLUSTER_JOIN, member, super_peer
                )
        for other in self.super_peers():
            if other != super_peer:
                self.network.log_maintenance(
                    MessageKind.ROUTING_UPDATE, super_peer, other
                )
        return updated

    def _log_reshape(
        self,
        kind: MessageKind,
        origin: Cluster,
        produced: tuple[Cluster, ...],
        announce: int,
    ) -> None:
        """Account a split/merge: one reshape message from the origin
        super-peer, re-registration of every live member whose
        super-peer changed, and the new super-peers' boundary
        announcements to the rest of the routing index."""
        super_peers = set(self.super_peers())
        for piece in produced:
            if piece.super_peer != announce:
                self.network.log_maintenance(
                    kind, announce, piece.super_peer
                )
            for member in piece.members:
                if member != piece.super_peer and self.network.is_live(
                    member
                ):
                    self.network.log_maintenance(
                        MessageKind.CLUSTER_JOIN, member, piece.super_peer
                    )
            for other in super_peers:
                if other != piece.super_peer:
                    self.network.log_maintenance(
                        MessageKind.ROUTING_UPDATE,
                        piece.super_peer,
                        other,
                    )

    # -- the routing index -------------------------------------------------------

    @property
    def clusters(self) -> tuple[Cluster, ...]:
        return self._state[0]

    def cluster_of_peer(self, peer_id: int) -> Cluster:
        """The cluster ``peer_id`` belongs to."""
        clusters, cluster_of = self._state
        try:
            return clusters[cluster_of[peer_id]]
        except KeyError:
            raise PeerNotFoundError(
                f"peer id {peer_id} not in any cluster"
            ) from None

    def super_peer_of(self, peer_id: int) -> int:
        """Overlay id of the super-peer serving ``peer_id``."""
        return self.cluster_of_peer(peer_id).super_peer

    def home_cluster(self, key_id: int) -> Cluster | None:
        """The cluster whose key range covers ``key_id`` — the cluster
        of the key's *effective* owner (the responsible peer, or with
        replication installed the first live replica).  ``None`` when
        the whole replica set is crashed: the range is dark and has no
        serving cluster."""
        owner = self.network.effective_owner(key_id)
        if owner is None:
            return None
        return self.cluster_of_peer(owner)

    def super_peers(self) -> list[int]:
        """Overlay ids of all current super-peers, in cluster order."""
        return [cluster.super_peer for cluster in self.clusters]

    def describe(self) -> dict[str, int]:
        """Topology shape counters (for stats/reports)."""
        clusters = self.clusters
        return {
            "fanout": self.fanout,
            "clusters": len(clusters),
            "peers": sum(len(c) for c in clusters),
            "rebuilds": self.rebuilds,
            "splits": self.splits,
            "merges": self.merges,
        }
