"""Cluster leaf peers under super-peers by key-range affinity.

Peers are sorted by overlay id and chunked into runs of ``fanout``
consecutive peers; each run is one *cluster* and its lowest-id member is
promoted to super-peer.  Because DHT responsibility is the ring
successor, the peer responsible for any key id lies inside the cluster
whose id range covers it — so the cluster doubles as the key-range
routing unit: the super-peers' shared routing index is simply the
sorted list of cluster boundaries, and the *home* cluster of a key is
the cluster of its responsible peer.

Membership changes re-cluster from scratch (the peer population is the
input, not an incremental structure); the registration and
routing-index-exchange messages this costs are logged under the
MAINTENANCE phase via a thread-local :meth:`phase_scope`, exactly like
churn key handoffs — the paper's analysis reports maintenance
separately from indexing/retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, NetworkError, PeerNotFoundError
from ..net.accounting import Phase
from ..net.messages import MessageKind
from ..net.network import P2PNetwork

__all__ = ["Cluster", "SuperPeerTopology"]


@dataclass(frozen=True)
class Cluster:
    """One super-peer cluster: a run of consecutive peers on the ring.

    Attributes:
        index: position in the topology's cluster list.
        super_peer: overlay id of the promoted member (lowest id).
        members: all member overlay ids, ascending (includes the
            super-peer).
    """

    index: int
    super_peer: int
    members: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.members)


class SuperPeerTopology:
    """The cluster map and its maintenance protocol.

    Args:
        network: the simulated network whose peers are clustered.
        fanout: maximum leaves per cluster (>= 1).  ``fanout=1`` makes
            every peer its own super-peer (the degenerate flat-ish
            case); larger fanouts trade shorter super-peer routing
            tables against larger clusters.

    Thread-safety: the cluster map is swapped atomically on
    :meth:`rebuild` (readers see the old or the new map, never a
    half-built one); rebuilds themselves are driven by membership
    changes, which the simulator performs sequentially.
    """

    def __init__(self, network: P2PNetwork, fanout: int = 8) -> None:
        if fanout < 1:
            raise ConfigurationError(
                f"overlay fanout must be >= 1, got {fanout}"
            )
        self.network = network
        self.fanout = fanout
        self.rebuilds = 0
        #: (clusters, peer id -> cluster index), swapped as one object.
        self._state: tuple[tuple[Cluster, ...], dict[int, int]] = ((), {})
        self.rebuild()

    # -- construction / maintenance ----------------------------------------------

    def rebuild(self) -> None:
        """Re-cluster the current peer population and account the
        maintenance traffic (member registrations + the super-peers'
        routing-index exchange).

        Only *live* peers are clustered: a crashed peer cannot serve as
        a super-peer or answer for its range, and the population
        re-clusters around it exactly as it would around a departure —
        while the peer keeps its ring position, so key responsibility
        (and replica placement) is unchanged."""
        peer_ids = self.network.live_peer_ids()
        if not peer_ids:
            raise NetworkError("cannot cluster an empty network")
        clusters: list[Cluster] = []
        cluster_of: dict[int, int] = {}
        for index, start in enumerate(
            range(0, len(peer_ids), self.fanout)
        ):
            members = tuple(peer_ids[start : start + self.fanout])
            clusters.append(
                Cluster(
                    index=index, super_peer=members[0], members=members
                )
            )
            for member in members:
                cluster_of[member] = index
        # Thread-local phase override: a rebuild racing with queries in
        # other threads must not re-attribute their messages.
        with self.network.accounting.phase_scope(Phase.MAINTENANCE):
            for cluster in clusters:
                for member in cluster.members:
                    if member != cluster.super_peer:
                        self.network.log_message(
                            MessageKind.CLUSTER_JOIN,
                            member,
                            cluster.super_peer,
                        )
            # Every super-peer learns every cluster boundary (the
            # routing index is tiny: one id per cluster, zero postings).
            super_peers = [c.super_peer for c in clusters]
            for source in super_peers:
                for target in super_peers:
                    if source != target:
                        self.network.log_message(
                            MessageKind.ROUTING_UPDATE, source, target
                        )
        self._state = (tuple(clusters), cluster_of)
        self.rebuilds += 1

    # -- the routing index -------------------------------------------------------

    @property
    def clusters(self) -> tuple[Cluster, ...]:
        return self._state[0]

    def cluster_of_peer(self, peer_id: int) -> Cluster:
        """The cluster ``peer_id`` belongs to."""
        clusters, cluster_of = self._state
        try:
            return clusters[cluster_of[peer_id]]
        except KeyError:
            raise PeerNotFoundError(
                f"peer id {peer_id} not in any cluster"
            ) from None

    def super_peer_of(self, peer_id: int) -> int:
        """Overlay id of the super-peer serving ``peer_id``."""
        return self.cluster_of_peer(peer_id).super_peer

    def home_cluster(self, key_id: int) -> Cluster | None:
        """The cluster whose key range covers ``key_id`` — the cluster
        of the key's *effective* owner (the responsible peer, or with
        replication installed the first live replica).  ``None`` when
        the whole replica set is crashed: the range is dark and has no
        serving cluster."""
        owner = self.network.effective_owner(key_id)
        if owner is None:
            return None
        return self.cluster_of_peer(owner)

    def super_peers(self) -> list[int]:
        """Overlay ids of all current super-peers, in cluster order."""
        return [cluster.super_peer for cluster in self.clusters]

    def describe(self) -> dict[str, int]:
        """Topology shape counters (for stats/reports)."""
        clusters = self.clusters
        return {
            "fanout": self.fanout,
            "clusters": len(clusters),
            "peers": sum(len(c) for c in clusters),
            "rebuilds": self.rebuilds,
        }
