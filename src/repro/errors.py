"""Exception hierarchy for the HDK reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from protocol-level failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CorpusError",
    "PipelineError",
    "IndexError_",
    "KeyGenerationError",
    "NetworkError",
    "RoutingError",
    "PeerNotFoundError",
    "StorageError",
    "StoreError",
    "RetrievalError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A model parameter is missing, out of range, or inconsistent."""


class CorpusError(ReproError):
    """A document collection could not be built, loaded, or sampled."""


class PipelineError(ReproError):
    """Text pre-processing failed (tokenization, stemming, windowing)."""


class IndexError_(ReproError):
    """An index operation failed (named with a trailing underscore to
    avoid shadowing the :class:`IndexError` builtin)."""


class KeyGenerationError(ReproError):
    """HDK computation failed or was given inconsistent inputs."""


class NetworkError(ReproError):
    """A simulated P2P network operation failed."""


class RoutingError(NetworkError):
    """A DHT lookup could not be routed to a responsible peer."""


class PeerNotFoundError(NetworkError, LookupError):
    """A peer identifier does not exist in the simulated network."""


class StorageError(NetworkError):
    """A peer-local storage operation failed."""


class StoreError(ReproError):
    """A disk-backed key-index store operation failed (bad segment file,
    unknown snapshot layout, corrupt record)."""


class RetrievalError(ReproError):
    """Query processing failed."""


class AnalysisError(ReproError):
    """A scalability-analysis computation received invalid inputs."""
