"""Replicated key ranges with failover reads and anti-entropy repair.

The paper's global index stores each highly discriminative key on
exactly one DHT peer: a peer *crash* (as opposed to graceful churn,
whose join/leave handoff protocol the network already implements)
silently destroys that peer's postings and leaves every lookup for its
range with a single dark home.  This package closes that last single
point of failure:

- :class:`ReplicaPlacement` maps each key id to its R *successor*
  owners on the ring — the primary (the overlay's responsible peer)
  plus the next R-1 distinct peers in id order;
- :class:`ReplicationManager` runs the write path: inserts and
  statistics publications fan out from the primary as idempotent ops
  tagged with per-origin sequence numbers, merged independently at each
  live replica (set-union/CRDT-style for posting lists, version-vector
  LWW for metadata) and recorded in per-replica
  :class:`VersionVector`\\ s;
- :class:`ReplicaFailoverRouter` runs the read path: lookups route to
  the nearest *live* replica, failing over past crashed owners — as a
  :class:`repro.net.network.RoutingPolicy` wrapper, so the flat network
  and the super-peer :class:`repro.overlay.HierarchicalRouter` both get
  failover without touching ranking semantics;
- :class:`AntiEntropyRepairer` periodically exchanges
  :class:`MerkleTree` digests between the replicas of each key range
  under the MAINTENANCE accounting phase and ships only the divergent
  keys, so a respawned or lagging replica re-converges with repair
  traffic proportional to the divergence, not to the range.

With ``replication=1`` (the default everywhere) none of this is
installed and the stack stays byte-identical — results *and* traffic —
to the unreplicated system.
"""

from .manager import ReplicationManager
from .merkle import MerkleTree, value_fingerprint
from .placement import ReplicaPlacement
from .failover import ReplicaFailoverRouter
from .repair import AntiEntropyRepairer, RepairReport
from .versioning import VersionVector

__all__ = [
    "AntiEntropyRepairer",
    "MerkleTree",
    "RepairReport",
    "ReplicaFailoverRouter",
    "ReplicaPlacement",
    "ReplicationManager",
    "VersionVector",
    "value_fingerprint",
]
