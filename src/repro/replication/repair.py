"""Merkle anti-entropy repair between the replicas of each key range.

A crashed-then-respawned replica comes back empty; a replica that was
dead during a burst of writes misses them.  :class:`AntiEntropyRepairer`
re-converges replica sets without re-shipping whole ranges: per key
range (one range per ring primary) the live replicas exchange
:class:`~repro.replication.merkle.MerkleTree` digests — root first, then
only the divergent buckets — and finally ship just the keys whose value
fingerprints differ, fresher side to staler side as decided by the
manager's per-key write versions.  All messages run under the
MAINTENANCE accounting phase, so the paper's indexing/retrieval figures
stay clean and repair traffic is reported where churn handoff already
is.

Repair never deletes: a key present on one replica and absent on the
other is shipped, making the pass idempotent — a second run over a
converged group exchanges one root digest per pair and nothing else.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError
from ..index.postings import PostingList
from ..net.accounting import Phase
from ..net.messages import MessageKind
from .merkle import DEFAULT_BUCKETS, MerkleTree, value_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.network import P2PNetwork
    from .manager import ReplicationManager

__all__ = ["AntiEntropyRepairer", "RepairReport"]


@dataclass
class RepairReport:
    """What one anti-entropy pass did (benchmark/test observable).

    Attributes:
        groups_checked: replica groups with >= 2 live members compared.
        replica_pairs_compared: (coordinator, other) pairs digest-checked.
        digests_exchanged: root + bucket digest messages logged.
        buckets_diverged: Merkle buckets whose digests mismatched.
        keys_repaired: keys shipped between replicas.
        postings_shipped: total postings carried by repair messages —
            the quantity that must scale with divergence, not range size.
    """

    groups_checked: int = 0
    replica_pairs_compared: int = 0
    digests_exchanged: int = 0
    buckets_diverged: int = 0
    keys_repaired: int = 0
    postings_shipped: int = 0

    def merge(self, other: "RepairReport") -> None:
        self.groups_checked += other.groups_checked
        self.replica_pairs_compared += other.replica_pairs_compared
        self.digests_exchanged += other.digests_exchanged
        self.buckets_diverged += other.buckets_diverged
        self.keys_repaired += other.keys_repaired
        self.postings_shipped += other.postings_shipped

    def as_dict(self) -> dict[str, int]:
        return {
            "groups_checked": self.groups_checked,
            "replica_pairs_compared": self.replica_pairs_compared,
            "digests_exchanged": self.digests_exchanged,
            "buckets_diverged": self.buckets_diverged,
            "keys_repaired": self.keys_repaired,
            "postings_shipped": self.postings_shipped,
        }


@dataclass
class _RangeView:
    """One replica's materialized view of one key range."""

    leaves: dict[int, bytes] = field(default_factory=dict)
    entries: dict[int, Any] = field(default_factory=dict)
    keys: dict[int, Any] = field(default_factory=dict)


class AntiEntropyRepairer:
    """Periodic pairwise replica synchronization.

    Args:
        network: the network whose replicas are repaired.
        manager: the replication manager; defaults to the one installed
            on ``network``.
        buckets: Merkle bucket count per range tree.
    """

    def __init__(
        self,
        network: "P2PNetwork",
        manager: "ReplicationManager | None" = None,
        buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        manager = manager if manager is not None else network.replication
        if manager is None:
            raise ConfigurationError(
                "anti-entropy repair needs a replication manager "
                "(network.replication is not installed)"
            )
        self.network = network
        self.manager = manager
        self.buckets = buckets
        #: Completed passes (cadence bookkeeping for callers).
        self.runs = 0

    def run(self) -> RepairReport:
        """One full anti-entropy pass over every key range.

        Returns the merged :class:`RepairReport`.
        """
        report = RepairReport()
        with self.network.accounting.phase_scope(Phase.MAINTENANCE):
            for primary in self.manager.placement.ring():
                owners = self.manager.placement.owners_of_primary(primary)
                live = [o for o in owners if self.network.is_live(o)]
                if len(live) < 2:
                    continue
                report.groups_checked += 1
                coordinator = live[0]
                for other in live[1:]:
                    self._sync_pair(primary, coordinator, other, report)
        self.runs += 1
        return report

    # -- internals ---------------------------------------------------------------

    def _range_view(self, owner: int, primary: int) -> _RangeView:
        """Materialize ``owner``'s slice of the range whose primary is
        ``primary`` (recomputed per pair: earlier pairs in the group may
        have repaired the coordinator)."""
        view = _RangeView()
        for entry in self.network.storage_by_id(owner):
            if self.network.overlay.responsible_peer(entry.key_id) != primary:
                continue
            view.leaves[entry.key_id] = value_fingerprint(entry.value)
            view.entries[entry.key_id] = entry.value
            view.keys[entry.key_id] = entry.key
        return view

    def _sync_pair(
        self,
        primary: int,
        coordinator: int,
        other: int,
        report: RepairReport,
    ) -> None:
        report.replica_pairs_compared += 1
        left = self._range_view(coordinator, primary)
        right = self._range_view(other, primary)
        left_tree = MerkleTree(left.leaves, self.buckets)
        right_tree = MerkleTree(right.leaves, self.buckets)
        # Root exchange: one digest message, always paid.
        self.network.log_message(
            MessageKind.REPLICA_DIGEST, other, coordinator, postings=0, hops=1
        )
        report.digests_exchanged += 1
        if left_tree.root == right_tree.root:
            return
        divergent = left_tree.diff(right_tree)
        for bucket in divergent:
            self.network.log_message(
                MessageKind.REPLICA_DIGEST,
                other,
                coordinator,
                postings=0,
                hops=1,
            )
            report.digests_exchanged += 1
            report.buckets_diverged += 1
            key_ids = sorted(
                set(left_tree.keys_in_bucket(bucket))
                | set(right_tree.keys_in_bucket(bucket))
            )
            for key_id in key_ids:
                if left.leaves.get(key_id) == right.leaves.get(key_id):
                    continue
                self._repair_key(
                    key_id, coordinator, other, left, right, report
                )
        # Both replicas now cover the union of observed writes.
        left_vector = self.manager.vector_of(coordinator)
        right_vector = self.manager.vector_of(other)
        left_vector.merge(right_vector)
        right_vector.merge(left_vector)

    def _repair_key(
        self,
        key_id: int,
        coordinator: int,
        other: int,
        left: _RangeView,
        right: _RangeView,
        report: RepairReport,
    ) -> None:
        """Ship the fresher copy of one divergent key to the staler
        replica."""
        key = left.keys.get(key_id, right.keys.get(key_id))
        left_has = key_id in left.entries
        right_has = key_id in right.entries
        left_version = (
            self.manager.version_of(coordinator, key) if left_has else -1
        )
        right_version = (
            self.manager.version_of(other, key) if right_has else -1
        )
        if left_version != right_version:
            left_fresher = left_version > right_version
        else:
            # Same version but different fingerprints (e.g. uniformly
            # seeded after a snapshot load): prefer the larger entry,
            # then the coordinator, deterministically.
            left_df = self._entry_df(left.entries.get(key_id))
            right_df = self._entry_df(right.entries.get(key_id))
            left_fresher = left_df >= right_df
        if left_fresher:
            source, target = coordinator, other
            payload = left.entries[key_id]
            version = max(left_version, 0)
        else:
            source, target = other, coordinator
            payload = right.entries[key_id]
            version = max(right_version, 0)
        shipped = self._copy_value(payload)
        postings = self._payload_size(shipped)
        self.network.storage_by_id(target).put(key, key_id, shipped)
        self.network.log_message(
            MessageKind.REPLICA_REPAIR,
            source,
            target,
            postings=postings,
            hops=1,
            key_repr=repr(key),
        )
        self.manager.record_version(target, key, version)
        router = self.network.router
        if router is not None:
            # The same freshness hook an insert fires: the repaired key
            # must reappear in routing state (cluster Bloom summaries,
            # path-cache eviction) or a summary skip would answer
            # "absent" for a key the target verifiably holds now.
            router.on_insert(key, key_id)
        report.keys_repaired += 1
        report.postings_shipped += postings

    @staticmethod
    def _entry_df(value: Any | None) -> int:
        if value is None:
            return -1
        return int(getattr(value, "global_df", 0))

    @staticmethod
    def _copy_value(value: Any) -> Any:
        """A structurally independent copy — replicas must never share
        mutable state, or a later merge at one would silently mutate the
        other.  The global index's entry shape is copied field-wise (the
        common case, and it keeps spilled posting lists materializing
        through their normal path); anything else deep-copies."""
        postings = getattr(value, "postings", None)
        if postings is not None and hasattr(value, "global_df"):
            clone = copy.copy(value)
            # Always a plain list: iterating a spilled stub materializes
            # it through its store, and the replica's copy must be
            # resident (replicas do not share the primary's store).
            clone.postings = PostingList(list(postings))
            contributors = getattr(value, "contributors", None)
            if contributors is not None:
                clone.contributors = set(contributors)
            return clone
        return copy.deepcopy(value)

    @staticmethod
    def _payload_size(value: Any) -> int:
        size = getattr(value, "posting_count", None)
        if size is not None:
            return int(size() if callable(size) else size)
        try:
            return len(value)
        except TypeError:
            return 1
