"""The replication manager: write fan-out, liveness, and versions.

One :class:`ReplicationManager` is installed per network (as
``network.replication``) when a service is built with ``replication=R``
for R > 1.  It owns:

- the :class:`~repro.replication.placement.ReplicaPlacement`;
- the write path — every insert/stats publication becomes an idempotent
  op tagged ``(origin, per-origin seq)``, fanned out from the primary
  as REPLICA_WRITE messages and merged independently at each *live*
  replica (each replica runs the same merge closure against its own
  stored copy, so posting lists converge by set-union and metadata by
  last-writer-wins — identical inputs in identical order produce
  identical replicas);
- per-replica :class:`~repro.replication.versioning.VersionVector`\\ s
  and per-key write versions, which anti-entropy repair uses to decide
  which side of a divergence is fresher;
- crash/respawn bookkeeping: a crashed replica's versions are dropped
  with its storage, a respawned one starts empty and re-converges via
  repair.

The manager never changes *what* a lookup returns, only where writes
land and how divergence is tracked; read-side failover lives in
:class:`~repro.replication.failover.ReplicaFailoverRouter`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..errors import ConfigurationError
from ..net.messages import MessageKind
from .placement import ReplicaPlacement
from .versioning import VersionVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.network import MembershipEvent, P2PNetwork

__all__ = ["ReplicationManager"]

#: Origin id used for ops whose caller did not identify the inserting
#: peer (legacy single-argument apply_insert paths).
ANONYMOUS_ORIGIN = -1


class ReplicationManager:
    """Coordinates R-way replication over a :class:`P2PNetwork`.

    Args:
        network: the network whose storages hold the replicas.
        replication: R, owners per key range.  ``install()`` with R == 1
            is rejected — the unreplicated stack must stay byte-identical
            to today's, which means *no* manager at all.
    """

    def __init__(self, network: "P2PNetwork", replication: int) -> None:
        if replication < 2:
            raise ConfigurationError(
                "a replication manager needs replication >= 2; "
                f"got {replication} (R=1 runs the unreplicated stack)"
            )
        self.network = network
        self.replication = replication
        self.placement = ReplicaPlacement(network.overlay, replication)
        #: origin peer id -> last sequence number issued by that origin.
        self._origin_seqs: dict[int, int] = {}
        #: replica peer id -> version vector of ops applied there.
        self._vectors: dict[int, VersionVector] = {}
        #: replica peer id -> {key: write version} (freshness order for
        #: repair; dropped with the replica's storage on crash).
        self._key_versions: dict[int, dict[Any, int]] = {}
        #: Global write counter ordering all replicated writes.
        self._write_clock = 0
        #: Monotonic counters (inspection / benches).
        self.replica_writes = 0
        self.lost_writes = 0

    def install(self) -> "ReplicationManager":
        """Attach to the network (idempotent for this instance).

        Raises:
            ConfigurationError: another manager is already installed.
        """
        current = self.network.replication
        if current is not None and current is not self:
            raise ConfigurationError(
                "network already has a replication manager installed"
            )
        self.network.replication = self
        return self

    # -- placement / liveness ---------------------------------------------------

    def owners(self, key_id: int) -> tuple[int, ...]:
        """The key's replica set, primary first."""
        return self.placement.owners(key_id)

    def live_owners(self, key_id: int) -> list[int]:
        """The live members of the key's replica set, placement order."""
        return [
            owner
            for owner in self.placement.owners(key_id)
            if self.network.is_live(owner)
        ]

    def effective_owner(self, key_id: int) -> int | None:
        """First live replica in placement order (``None`` when the
        whole replica set is dead)."""
        for owner in self.placement.owners(key_id):
            if self.network.is_live(owner):
                return owner
        return None

    def dead_owners_before(self, key_id: int) -> int:
        """How many dead replicas a failover read skips before reaching
        the effective owner (the probe cost of the lookup)."""
        skipped = 0
        for owner in self.placement.owners(key_id):
            if self.network.is_live(owner):
                return skipped
            skipped += 1
        return skipped

    # -- write path --------------------------------------------------------------

    def next_seq(self, origin: int | None) -> tuple[int, int]:
        """Issue the next per-origin sequence number."""
        source = ANONYMOUS_ORIGIN if origin is None else origin
        seq = self._origin_seqs.get(source, 0) + 1
        self._origin_seqs[source] = seq
        return source, seq

    def send_replica_writes(
        self,
        network: "P2PNetwork",
        primary_id: int,
        key_id: int,
        payload_postings: int,
        key_repr: str = "",
        origin: int | None = None,
    ) -> None:
        """Transmission phase of the fan-out: the primary forwards the
        op to every backup (one direct hop each; dead backups lose the
        message, exactly like a real crashed node).  When ``origin`` is
        given the op is also sequenced and recorded here — used by
        metadata publications that have no apply phase of their own."""
        owners = self.placement.owners(key_id)
        for backup in owners[1:]:
            network.log_message(
                MessageKind.REPLICA_WRITE,
                primary_id,
                backup,
                postings=payload_postings,
                hops=1,
                key_repr=key_repr,
            )
            self.replica_writes += 1
        if origin is not None:
            source, seq = self.next_seq(origin)
            for owner in owners:
                if network.is_live(owner):
                    self._vectors.setdefault(
                        owner, VersionVector()
                    ).observe(source, seq)

    def apply_write(
        self,
        network: "P2PNetwork",
        key: Any,
        key_id: int,
        merge: Callable[[Any | None], Any],
        origin: int | None = None,
    ) -> Any:
        """Application phase: run ``merge`` independently at every live
        replica, in placement order, tagging the op with the next
        per-origin sequence number.  Replicas that already cover
        ``(origin, seq)`` discard the redelivery.  Returns the merged
        value at the effective owner — what the acknowledgement to the
        writer carries; when the whole replica set is dead the merge is
        still evaluated (the writer built its payload) but nothing
        stores it: the write is lost, as a real crash loses it."""
        source, seq = self.next_seq(origin)
        self._write_clock += 1
        version = self._write_clock
        result: Any = None
        applied = False
        for owner in self.placement.owners(key_id):
            if not network.is_live(owner):
                continue
            vector = self._vectors.setdefault(owner, VersionVector())
            if vector.covers(source, seq):
                continue
            merged = network.storage_by_id(owner).update(key, key_id, merge)
            vector.observe(source, seq)
            self._key_versions.setdefault(owner, {})[key] = version
            if not applied:
                result = merged
                applied = True
        if not applied:
            self.lost_writes += 1
            result = merge(None)
        return result

    # -- membership --------------------------------------------------------------

    def on_peer_crashed(self, peer_id: int) -> None:
        """A replica's storage was destroyed: its repair bookkeeping
        dies with it (the ring — and therefore placement — is
        unchanged)."""
        self._vectors.pop(peer_id, None)
        self._key_versions.pop(peer_id, None)

    def on_peer_respawned(self, peer_id: int) -> None:
        """A crashed replica came back empty; it re-converges through
        anti-entropy repair (nothing to record until then)."""

    def on_membership_event(self, event: "MembershipEvent | None") -> None:
        """Joins and leaves change the ring, so placement re-derives it;
        crash/respawn keep the ring and the cache stays valid.  ``None``
        (a coalesced batch) conservatively invalidates."""
        if event is None or event.kind in ("join", "leave"):
            self.placement.invalidate()
        if event is not None and event.kind == "leave":
            self._vectors.pop(event.peer_id, None)
            self._key_versions.pop(event.peer_id, None)

    # -- versions (repair's freshness order) -------------------------------------

    def version_of(self, owner_id: int, key: Any) -> int:
        """The write version of ``key`` at replica ``owner_id`` (0 when
        never recorded — e.g. entries placed by a snapshot load)."""
        return self._key_versions.get(owner_id, {}).get(key, 0)

    def record_version(self, owner_id: int, key: Any, version: int) -> None:
        self._key_versions.setdefault(owner_id, {})[key] = version

    def vector_of(self, owner_id: int) -> VersionVector:
        """The replica's version vector (created empty on first use)."""
        return self._vectors.setdefault(owner_id, VersionVector())

    # -- persistence -------------------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """JSON-able replication state for the snapshot manifest:
        per-origin sequence issue points and per-replica version
        vectors.  Per-key versions are deliberately *not* persisted — a
        snapshot stores one convergent copy of every entry, so a loaded
        network seeds uniform versions (see
        :meth:`seed_versions_from_storage`) and anti-entropy finds
        nothing to repair."""
        return {
            "origin_seqs": {
                str(origin): seq
                for origin, seq in sorted(self._origin_seqs.items())
            },
            "write_clock": self._write_clock,
            "version_vectors": {
                str(owner): vector.as_dict()
                for owner, vector in sorted(self._vectors.items())
            },
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Install previously exported state (snapshot load), so later
        writes continue the persisted sequence numbers and anti-entropy
        resumes from the persisted vectors instead of assuming every
        replica is blank."""
        self._origin_seqs = {
            int(origin): int(seq)
            for origin, seq in state.get("origin_seqs", {}).items()
        }
        self._write_clock = int(state.get("write_clock", 0))
        self._vectors = {
            int(owner): VersionVector.from_dict(vector)
            for owner, vector in state.get("version_vectors", {}).items()
        }

    def seed_versions_from_storage(self) -> None:
        """Give every stored key a uniform write version at every live
        replica (snapshot load: the copies are convergent by
        construction, so no side may look fresher than another)."""
        self._key_versions = {}
        for owner in self.network.live_peer_ids():
            versions: dict[Any, int] = {}
            for entry in self.network.storage_by_id(owner):
                versions[entry.key] = self._write_clock
            self._key_versions[owner] = versions

    # -- inspection --------------------------------------------------------------

    def describe(self) -> dict[str, int]:
        return {
            "replication": self.replication,
            "replica_writes": self.replica_writes,
            "lost_writes": self.lost_writes,
            "write_clock": self._write_clock,
        }
