"""Merkle trees over replica key ranges.

Anti-entropy must find *which* keys two replicas disagree on without
shipping the keys themselves.  Each replica summarizes its slice of a
key range as a hash tree: key ids are bucketized, every bucket digests
its (key id, value fingerprint) pairs in sorted order, and the root
digests the bucket digests.  Two replicas first exchange roots (one
metadata message); only on mismatch do they descend, exchanging the
divergent buckets' digests and then the divergent keys — so repair
traffic is proportional to the divergence, never to the range size.

Fingerprints cover the stored *state* (postings, global df, DK/NDK
status, contributors), deliberately not the repair bookkeeping: two
replicas holding identical entries are convergent no matter how they
got there.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Mapping

__all__ = ["MerkleTree", "value_fingerprint"]

#: Digest width; 16 bytes keeps collision odds negligible at any
#: realistic key count while halving digest-exchange payloads.
_DIGEST_SIZE = 16

DEFAULT_BUCKETS = 64


def _hash(parts: Iterable[bytes]) -> bytes:
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in parts:
        digest.update(part)
    return digest.digest()


def value_fingerprint(value: Any) -> bytes:
    """Stable content hash of one stored value.

    Understands the global index's entry shape (``postings`` /
    ``global_df`` / ``status`` / ``contributors``) without importing it —
    the net/replication layers stay value-agnostic — and falls back to
    ``repr`` for anything else.  Spilled posting-list stubs materialize
    through their normal iteration path, so ``hdk_disk`` replicas
    fingerprint the same bytes as in-memory ones.
    """
    postings = getattr(value, "postings", None)
    if postings is not None:
        digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        digest.update(str(getattr(value, "global_df", 0)).encode())
        status = getattr(value, "status", None)
        digest.update(str(getattr(status, "value", status)).encode())
        contributors = getattr(value, "contributors", ())
        digest.update(",".join(map(str, sorted(contributors))).encode())
        for posting in postings:
            digest.update(
                (
                    f"{posting.doc_id}:{posting.tf}:"
                    f"{','.join(map(str, posting.term_tfs))}:"
                    f"{posting.doc_len};"
                ).encode()
            )
        return digest.digest()
    return _hash([repr(value).encode()])


class MerkleTree:
    """A two-level hash tree over ``{key_id: value fingerprint}`` leaves.

    Args:
        leaves: one fingerprint per key id in the summarized range.
        buckets: leaf-bucket count; more buckets mean finer divergence
            localization at the cost of a longer digest list.
    """

    def __init__(
        self, leaves: Mapping[int, bytes], buckets: int = DEFAULT_BUCKETS
    ) -> None:
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.buckets = buckets
        self._bucket_keys: list[list[int]] = [[] for _ in range(buckets)]
        self._leaves = dict(leaves)
        for key_id in sorted(self._leaves):
            self._bucket_keys[key_id % buckets].append(key_id)
        self._bucket_digests = [
            _hash(
                f"{key_id}=".encode() + self._leaves[key_id]
                for key_id in bucket
            )
            for bucket in self._bucket_keys
        ]
        self.root = _hash(self._bucket_digests)

    def __len__(self) -> int:
        return len(self._leaves)

    def bucket_digest(self, index: int) -> bytes:
        return self._bucket_digests[index]

    def keys_in_bucket(self, index: int) -> list[int]:
        """Key ids summarized by bucket ``index``, ascending."""
        return list(self._bucket_keys[index])

    def diff(self, other: "MerkleTree") -> list[int]:
        """Indexes of the buckets whose digests differ from ``other``'s
        (the descend step after a root mismatch)."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot diff trees with {self.buckets} vs "
                f"{other.buckets} buckets"
            )
        return [
            index
            for index in range(self.buckets)
            if self._bucket_digests[index] != other._bucket_digests[index]
        ]
