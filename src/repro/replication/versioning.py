"""Version vectors and per-origin sequence numbers.

Every replicated op carries ``(origin peer id, sequence number)``; each
replica keeps a :class:`VersionVector` — origin id to the highest
sequence number it has applied — so a redelivered op is recognized and
discarded (idempotence) and two replicas can tell, by vector
comparison, whether one has seen everything the other has.  The repair
protocol merges the vectors of a replica pair after shipping their
divergent keys, recording that both now cover the union of observed
writes.
"""

from __future__ import annotations

from typing import Iterator, Mapping

__all__ = ["VersionVector"]


class VersionVector:
    """Origin peer id -> highest applied per-origin sequence number."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Mapping[int, int] | None = None) -> None:
        self._clock: dict[int, int] = dict(clock or {})

    def observe(self, origin: int, seq: int) -> None:
        """Record that the op ``(origin, seq)`` was applied."""
        if seq > self._clock.get(origin, 0):
            self._clock[origin] = seq

    def covers(self, origin: int, seq: int) -> bool:
        """Whether ``(origin, seq)`` was already applied — a redelivery
        the replica must discard."""
        return self._clock.get(origin, 0) >= seq

    def merge(self, other: "VersionVector") -> None:
        """Pointwise maximum — after a repair round both replicas cover
        the union of the writes either had seen."""
        for origin, seq in other._clock.items():
            self.observe(origin, seq)

    def dominates(self, other: "VersionVector") -> bool:
        """Whether this vector has seen everything ``other`` has."""
        return all(
            self._clock.get(origin, 0) >= seq
            for origin, seq in other._clock.items()
        )

    def copy(self) -> "VersionVector":
        return VersionVector(self._clock)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self._clock == other._clock

    def __len__(self) -> int:
        return len(self._clock)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._clock.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{o}:{s}" for o, s in self)
        return f"VersionVector({{{inner}}})"

    # -- persistence (snapshot manifest) ---------------------------------------

    def as_dict(self) -> dict[str, int]:
        """JSON-able form (string origin keys, manifest-friendly)."""
        return {str(origin): seq for origin, seq in self._clock.items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "VersionVector":
        return cls({int(origin): int(seq) for origin, seq in data.items()})
