"""Successor-list replica placement over the structured overlay.

The primary owner of a key is whatever the overlay's responsibility rule
says (Chord ring successor, P-Grid prefix region); its backups are the
next R-1 *distinct* peers in ascending id order, wrapping around — the
classic successor-list placement.  Placement is a pure function of the
overlay membership, so every peer computes the same owner list without
coordination, and it deliberately includes crashed peers: a crash does
not move responsibility (the population hasn't agreed the peer left),
it only makes reads fail over and writes skip the dead owner until
anti-entropy repair re-converges it.
"""

from __future__ import annotations

import bisect

from ..errors import ConfigurationError
from ..net.chord import Overlay

__all__ = ["ReplicaPlacement"]


class ReplicaPlacement:
    """Maps key ids to their R successor owners on the ring.

    Args:
        overlay: the structured overlay placement follows.
        replication: R, the number of owners per key range (>= 1).
            When the network is smaller than R, every peer owns every
            range.
    """

    def __init__(self, overlay: Overlay, replication: int) -> None:
        if replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1, got {replication}"
            )
        self.overlay = overlay
        self.replication = replication
        # The sorted ring is cached between membership changes: owners()
        # runs on every lookup/insert, and re-sorting 256 ids per
        # message would dominate the simulation.
        self._ring: tuple[int, ...] | None = None

    def invalidate(self) -> None:
        """Drop the cached ring (call on join/leave; crash and respawn
        do not change the ring)."""
        self._ring = None

    def ring(self) -> tuple[int, ...]:
        """All peer ids (live and crashed), ascending."""
        ring = self._ring
        if ring is None:
            ring = self._ring = tuple(sorted(self.overlay.peer_ids()))
        return ring

    def owners(self, key_id: int) -> tuple[int, ...]:
        """The R owners of ``key_id``: primary first, then its ring
        successors in placement order."""
        return self.owners_of_primary(self.overlay.responsible_peer(key_id))

    def owners_of_primary(self, primary_id: int) -> tuple[int, ...]:
        """The replica set of the key range whose primary is
        ``primary_id`` (primary first)."""
        ring = self.ring()
        start = bisect.bisect_left(ring, primary_id)
        if start == len(ring) or ring[start] != primary_id:
            raise ConfigurationError(
                f"peer id {primary_id} is not on the ring"
            )
        count = min(self.replication, len(ring))
        return tuple(
            ring[(start + offset) % len(ring)] for offset in range(count)
        )
