"""Failover reads: route lookups to the nearest live replica.

:class:`ReplicaFailoverRouter` is a :class:`repro.net.network.RoutingPolicy`
that redirects each lookup to the first *live* owner in placement order.
It wraps an optional inner policy, so the flat network (no inner) and
the super-peer hierarchy (inner = ``HierarchicalRouter``) both gain
failover without duplicating their path logic: the wrapper only decides
*which peer answers*, the inner policy still decides *how the message
gets there* — through ``network.effective_owner``, which every routing
layer already consults for the destination.

Skipping a crashed owner costs a REPLICA_PROBE message per dead replica
tried (the timeout-and-retry a real requester pays), logged with zero
postings so retrieval-traffic figures charge failover its true price.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..net.messages import MessageKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.network import MembershipEvent, P2PNetwork
    from .manager import ReplicationManager

__all__ = ["ReplicaFailoverRouter"]


class ReplicaFailoverRouter:
    """Replication-aware :class:`RoutingPolicy` wrapper.

    Args:
        manager: the installed :class:`ReplicationManager` (placement and
            liveness come from it).
        inner: the policy being wrapped (``None`` wraps the flat overlay
            walk).
    """

    def __init__(
        self,
        manager: "ReplicationManager",
        inner: Any | None = None,
    ) -> None:
        self.manager = manager
        self.inner = inner
        #: REPLICA_PROBE messages logged (dead owners skipped by reads).
        self.failover_probes = 0

    def route_lookup(
        self,
        network: "P2PNetwork",
        source_id: int,
        key: Any,
        key_id: int,
        response_size: Callable[[Any | None], int],
        key_repr: str = "",
    ) -> Any | None:
        skipped = self.manager.dead_owners_before(key_id)
        target_id = self.manager.effective_owner(key_id)
        if skipped > 0 and target_id is not None:
            # Each dead owner tried costs one probe round (request that
            # times out); postings stay zero — no data moved.
            network.log_message(
                MessageKind.REPLICA_PROBE,
                source_id,
                target_id,
                postings=0,
                hops=skipped,
                key_repr=key_repr,
                route="failover_probe",
            )
            self.failover_probes += skipped
        if self.inner is not None:
            return self.inner.route_lookup(
                network, source_id, key, key_id, response_size,
                key_repr=key_repr,
            )
        return self._flat_lookup(
            network, source_id, key, key_id, target_id, response_size,
            key_repr,
        )

    def _flat_lookup(
        self,
        network: "P2PNetwork",
        source_id: int,
        key: Any,
        key_id: int,
        target_id: int | None,
        response_size: Callable[[Any | None], int],
        key_repr: str,
    ) -> Any | None:
        """The flat network's two-message lookup, aimed at the effective
        owner instead of the (possibly crashed) responsible peer."""
        if target_id is None:
            # Whole replica set dead: the request still routes to the
            # primary's region and times out — log the attempt, return
            # nothing (no RESPONSE arrives; zero-posting answer).
            primary = network.overlay.responsible_peer(key_id)
            network.log_message(
                MessageKind.LOOKUP,
                source_id,
                primary,
                postings=0,
                hops=max(1, network.overlay.route_hops(source_id, key_id)),
                key_repr=key_repr,
                route="dark_range",
            )
            return None
        hops = max(1, network.overlay.route_hops(source_id, key_id))
        network.log_message(
            MessageKind.LOOKUP,
            source_id,
            target_id,
            postings=0,
            hops=hops,
            key_repr=key_repr,
            route="replica_flat",
        )
        value = network.storage_by_id(target_id).get(key)
        network.log_message(
            MessageKind.RESPONSE,
            target_id,
            source_id,
            postings=response_size(value),
            hops=1,
            key_repr=key_repr,
            route="replica_flat",
        )
        return value

    def path_hops(self, source_id: int, key_id: int) -> int:
        """Insert/stats messages still route toward the primary's region
        (writes fan out from there), so path cost is the wrapped
        policy's — or the overlay walk on the flat network."""
        if self.inner is not None:
            return self.inner.path_hops(source_id, key_id)
        return self.manager.network.overlay.route_hops(source_id, key_id)

    def on_insert(self, key: Any, key_id: int) -> None:
        if self.inner is not None:
            self.inner.on_insert(key, key_id)

    def on_membership_change(
        self, event: "MembershipEvent | None" = None
    ) -> None:
        # Manager first: the inner policy's rebuild consults placement
        # (effective_owner) and must see the post-change ring.
        self.manager.on_membership_event(event)
        if self.inner is not None:
            self.inner.on_membership_change(event)

    def describe(self) -> dict[str, Any]:
        return {
            "failover_probes": self.failover_probes,
            "inner": type(self.inner).__name__ if self.inner else None,
        }
