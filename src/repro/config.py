"""Model parameters for HDK indexing and retrieval.

The paper's model is controlled by a small set of parameters (Table 2 of the
paper): the document-frequency threshold ``DF_max``, the collection-frequency
cut-off ``F_f`` for very frequent terms, the proximity window size ``w``, and
the maximal key size ``s_max``.  :class:`HDKParameters` bundles them together
with validation so that every component of the library shares one coherent
configuration object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .errors import ConfigurationError

__all__ = [
    "HDKParameters",
    "ExperimentParameters",
    "PAPER_PARAMETERS",
    "SMALL_SCALE_PARAMETERS",
]


@dataclass(frozen=True)
class HDKParameters:
    """Parameters of the HDK indexing/retrieval model (paper Table 2).

    Attributes:
        df_max: document-frequency threshold ``DF_max``.  A key is
            *discriminative* iff its global document frequency is at most
            ``df_max`` (Definition 3).  Posting lists of non-discriminative
            keys are truncated to their top-``df_max`` entries.
        window_size: proximity window ``w``.  Only term sets whose terms
            co-occur inside at least one sliding window of this many token
            positions are considered keys (Definition 2).
        s_max: maximal key size (number of distinct terms in a key,
            Definition 1 / size filtering).
        ff: collection-frequency threshold ``F_f``.  Terms occurring more
            than ``ff`` times in the collection are *very frequent* and are
            removed from the key vocabulary, generalizing stop-word removal
            (Definition 9 and the discussion after Theorem 2).
        fr: collection-frequency threshold ``F_r`` separating *rare* from
            *frequent* keys in the scalability analysis (Definitions 7-8).
            Only used by :mod:`repro.analysis`; the indexing path uses
            ``df_max`` directly.
        ndk_truncation: policy used to pick the top-``df_max`` postings kept
            for a non-discriminative key; either ``"tf"`` (highest term
            frequency first, the default) or ``"norm"`` (highest
            length-normalized term frequency first).
        redundancy_filtering: when True (the paper's model), only
            *intrinsically* discriminative keys are indexed (Definition 5);
            when False every discriminative key is indexed.  Exposed for the
            ablation called out in DESIGN.md §5.
        semantic_pmi_threshold: when set, multi-term candidate keys whose
            local pointwise mutual information falls below this value are
            dropped before insertion — the paper's future-work direction of
            integrating "more semantics about the indexing keys" to shrink
            the global index (see :mod:`repro.hdk.semantic`).  None (the
            default) disables the filter, matching the published model.
    """

    df_max: int = 400
    window_size: int = 20
    s_max: int = 3
    ff: int = 100_000
    fr: int = 100
    ndk_truncation: str = "tf"
    redundancy_filtering: bool = True
    semantic_pmi_threshold: float | None = None

    def __post_init__(self) -> None:
        if self.df_max < 1:
            raise ConfigurationError(
                f"df_max must be >= 1, got {self.df_max}"
            )
        if self.window_size < 2:
            raise ConfigurationError(
                f"window_size must be >= 2 so multi-term keys can exist, "
                f"got {self.window_size}"
            )
        if self.s_max < 1:
            raise ConfigurationError(f"s_max must be >= 1, got {self.s_max}")
        if self.s_max > self.window_size:
            raise ConfigurationError(
                f"s_max ({self.s_max}) cannot exceed window_size "
                f"({self.window_size}): a key's terms must fit in one window"
            )
        if self.ff < 1:
            raise ConfigurationError(f"ff must be >= 1, got {self.ff}")
        if self.fr < 1:
            raise ConfigurationError(f"fr must be >= 1, got {self.fr}")
        if self.fr > self.ff:
            raise ConfigurationError(
                f"fr ({self.fr}) must not exceed ff ({self.ff}); the paper "
                f"requires 1 <= F_r <= F_f <= D"
            )
        if self.ndk_truncation not in ("tf", "norm"):
            raise ConfigurationError(
                f"ndk_truncation must be 'tf' or 'norm', "
                f"got {self.ndk_truncation!r}"
            )

    def with_df_max(self, df_max: int) -> "HDKParameters":
        """Return a copy with a different ``DF_max`` (used by sweeps)."""
        return replace(self, df_max=df_max)

    def with_window(self, window_size: int) -> "HDKParameters":
        """Return a copy with a different window size ``w``."""
        return replace(self, window_size=window_size)

    def as_dict(self) -> dict[str, Any]:
        """Return the parameters as a plain dictionary (for reports)."""
        return {
            "df_max": self.df_max,
            "window_size": self.window_size,
            "s_max": self.s_max,
            "ff": self.ff,
            "fr": self.fr,
            "ndk_truncation": self.ndk_truncation,
            "redundancy_filtering": self.redundancy_filtering,
            "semantic_pmi_threshold": self.semantic_pmi_threshold,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HDKParameters":
        """Build parameters from a mapping, validating every field."""
        known = {
            "df_max",
            "window_size",
            "s_max",
            "ff",
            "fr",
            "ndk_truncation",
            "redundancy_filtering",
            "semantic_pmi_threshold",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown HDK parameter(s): {sorted(unknown)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class ExperimentParameters:
    """Parameters of the growth experiment in Section 5 (paper Table 2).

    The paper starts with 4 peers and adds 4 peers per run up to 28, each
    peer contributing a constant number of documents.  The reproduction keeps
    the same protocol at a configurable scale.

    Attributes:
        initial_peers: number of peers in the first experimental run.
        peer_step: peers added at each subsequent run.
        max_peers: number of peers in the final run.
        docs_per_peer: documents contributed by each peer (constant, per the
            paper's use-case assumption).
        hdk: the HDK model parameters shared by all peers.
        seed: RNG seed making the whole experiment deterministic.
    """

    initial_peers: int = 4
    peer_step: int = 4
    max_peers: int = 28
    docs_per_peer: int = 5_000
    hdk: HDKParameters = field(default_factory=HDKParameters)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.initial_peers < 1:
            raise ConfigurationError(
                f"initial_peers must be >= 1, got {self.initial_peers}"
            )
        if self.peer_step < 1:
            raise ConfigurationError(
                f"peer_step must be >= 1, got {self.peer_step}"
            )
        if self.max_peers < self.initial_peers:
            raise ConfigurationError(
                f"max_peers ({self.max_peers}) must be >= initial_peers "
                f"({self.initial_peers})"
            )
        if self.docs_per_peer < 1:
            raise ConfigurationError(
                f"docs_per_peer must be >= 1, got {self.docs_per_peer}"
            )

    def peer_counts(self) -> list[int]:
        """Return the sequence of network sizes, e.g. ``[4, 8, ..., 28]``."""
        counts = list(
            range(self.initial_peers, self.max_peers + 1, self.peer_step)
        )
        if counts[-1] != self.max_peers:
            counts.append(self.max_peers)
        return counts

    def document_counts(self) -> list[int]:
        """Return total collection sizes per run (the x-axis of Figs 3-7)."""
        return [n * self.docs_per_peer for n in self.peer_counts()]


#: The exact parameterization of the paper's experiments (Table 2).
PAPER_PARAMETERS = ExperimentParameters(
    initial_peers=4,
    peer_step=4,
    max_peers=28,
    docs_per_peer=5_000,
    hdk=HDKParameters(df_max=400, window_size=20, s_max=3, ff=100_000),
)

#: A reduced-scale parameterization that keeps the paper's *shape* (same
#: peer-growth protocol, same s_max, same DF_max sweep structure) while
#: running in seconds inside a single-process Python simulation.
SMALL_SCALE_PARAMETERS = ExperimentParameters(
    initial_peers=4,
    peer_step=4,
    max_peers=12,
    docs_per_peer=150,
    hdk=HDKParameters(df_max=12, window_size=8, s_max=3, ff=4_000, fr=4),
)
