"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
(``bdist_wheel``) are unavailable; this shim lets ``pip install -e .``
fall back to ``setup.py develop``.  Metadata is declared here directly;
the version is read from ``repro.__version__`` (the single source of
truth, also printed by ``repro --version``) and the ``repro`` console
script maps to :func:`repro.cli.main`.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    init = Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(
        r'^__version__ = "([^"]+)"', init.read_text(), re.MULTILINE
    )
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro",
    version=read_version(),
    description=(
        "Reproduction of 'Scalable Peer-to-Peer Web Retrieval with "
        "Highly Discriminative Keys' (ICDE 2007)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
