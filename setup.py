"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
(``bdist_wheel``) are unavailable; this shim lets ``pip install -e .``
fall back to ``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
