"""Table 2 — experiment parameters.

Prints the paper's parameterization next to the reduced-scale analogue the
harness actually runs, and benchmarks engine assembly (network build +
collection split) at the harness scale.
"""

from __future__ import annotations

from repro.config import PAPER_PARAMETERS
from repro.engine.p2p_engine import P2PSearchEngine
from repro.utils import format_table

from .conftest import BENCH_DF_MAX_VALUES, BENCH_EXPERIMENT, publish


def test_table2_parameters(benchmark, bench_collection):
    engine = benchmark(
        P2PSearchEngine.build,
        bench_collection,
        BENCH_EXPERIMENT.max_peers,
        BENCH_EXPERIMENT.hdk,
    )
    paper = PAPER_PARAMETERS
    bench = BENCH_EXPERIMENT
    rows = [
        ("number of peers N", "4, 8, ..., 28", f"{bench.peer_counts()}"),
        ("documents per peer", "5,000", f"{bench.docs_per_peer}"),
        ("DF_max", "400 and 500", f"{list(BENCH_DF_MAX_VALUES)}"),
        ("F_f", f"{paper.hdk.ff:,}", f"{bench.hdk.ff:,}"),
        ("window size w", f"{paper.hdk.window_size}", f"{bench.hdk.window_size}"),
        ("s_max", f"{paper.hdk.s_max}", f"{bench.hdk.s_max}"),
    ]
    publish(
        "table2_parameters",
        "Table 2: parameters — paper vs reduced-scale harness\n\n"
        + format_table(["parameter", "paper", "harness"], rows),
    )
    assert len(engine.peers) == bench.max_peers
