"""Ablation — retrieval-traffic comparison across baselines.

Beyond the paper's own figures, DESIGN.md §5 calls for comparing the HDK
model against the *optimized* single-term baselines its related work
proposes: Bloom-filter pre-intersection (Reynolds & Vahdat; Zhang & Suel)
and query-result caching.  The paper's argument is that these reduce the
constant, not the growth — HDK's bounded per-query transfer wins at scale.

Every baseline runs through the same :class:`SearchService` facade,
selected by backend name from the registry; the caching variant is the
service's own LRU cache over the ``hdk`` backend.
"""

from __future__ import annotations

from repro.corpus.querylog import QueryLogGenerator
from repro.corpus.synthetic import SyntheticCorpusGenerator
from repro.engine.service import SearchService
from repro.utils import format_table

from .conftest import BENCH_CORPUS, BENCH_EXPERIMENT, publish


def _build_world(num_docs: int):
    collection = SyntheticCorpusGenerator(
        BENCH_CORPUS, seed=BENCH_EXPERIMENT.seed
    ).generate(num_docs)
    params = BENCH_EXPERIMENT.hdk

    def service(backend: str, cache_capacity: int | None = None):
        built = SearchService.build(
            collection,
            num_peers=4,
            backend=backend,
            params=params,
            cache_capacity=cache_capacity,
        )
        built.index()
        return built

    queries = QueryLogGenerator(
        collection,
        window_size=params.window_size,
        min_hits=3,
        seed=31,
        size_weights={2: 0.6, 3: 0.4},
    ).generate(20)
    return collection, service, queries


def test_ablation_baseline_traffic(benchmark):
    rows = []
    measured: dict[int, dict[str, float]] = {}
    for num_docs in (240, 480):
        _, service, queries = _build_world(num_docs)
        hdk = service("hdk")
        st = service("single_term")
        bloom = service("single_term_bloom")
        per = {
            "ST": st.run_querylog(queries).mean_postings_per_query,
            "ST+Bloom (AND)": bloom.run_querylog(
                queries
            ).mean_postings_per_query,
            "HDK": hdk.run_querylog(queries).mean_postings_per_query,
        }
        # Replay the log twice through a caching service: the second
        # pass is all cache hits, so amortized traffic halves (or
        # better, when the log itself repeats term sets).
        cached = service("hdk", cache_capacity=256)
        first = cached.run_querylog(queries)
        second = cached.run_querylog(queries)
        assert second.cache_hits == len(queries)
        per["HDK+cache (2nd pass)"] = (
            first.total_postings_transferred
            + second.total_postings_transferred
        ) / (2 * len(queries))
        measured[num_docs] = per
        for label, value in per.items():
            rows.append([num_docs, label, f"{value:,.1f}"])
    publish(
        "ablation_baselines",
        "Ablation: mean retrieved postings per query by baseline\n\n"
        + format_table(["#docs", "engine", "postings/query"], rows),
    )
    for num_docs, per in measured.items():
        # Bloom cuts ST traffic but HDK stays below both.
        assert per["ST+Bloom (AND)"] < per["ST"]
        assert per["HDK"] < per["ST"]
        # Caching halves amortized traffic on a repeated log.
        assert per["HDK+cache (2nd pass)"] <= per["HDK"] / 2 + 1e-9
    # Growth: ST and Bloom grow with the collection; HDK grows much less.
    st_growth = measured[480]["ST"] / measured[240]["ST"]
    hdk_growth = measured[480]["HDK"] / measured[240]["HDK"]
    assert st_growth > hdk_growth
    # Benchmark one Bloom query through the facade.
    _, service, queries = _build_world(240)
    bloom = service("single_term_bloom")
    response = benchmark(bloom.search, queries[0])
    assert response.postings_transferred >= 0
