"""Ablation — retrieval-traffic comparison across baselines.

Beyond the paper's own figures, DESIGN.md §5 calls for comparing the HDK
model against the *optimized* single-term baselines its related work
proposes: Bloom-filter pre-intersection (Reynolds & Vahdat; Zhang & Suel)
and query-result caching.  The paper's argument is that these reduce the
constant, not the growth — HDK's bounded per-query transfer wins at scale.
"""

from __future__ import annotations

from repro.corpus.querylog import QueryLogGenerator
from repro.corpus.synthetic import SyntheticCorpusGenerator
from repro.engine.p2p_engine import EngineMode, P2PSearchEngine
from repro.retrieval.cache import CachingSearchEngine
from repro.retrieval.single_term_bloom import BloomSingleTermEngine
from repro.utils import format_table

from .conftest import BENCH_CORPUS, BENCH_EXPERIMENT, publish


def _build_world(num_docs: int):
    collection = SyntheticCorpusGenerator(
        BENCH_CORPUS, seed=BENCH_EXPERIMENT.seed
    ).generate(num_docs)
    params = BENCH_EXPERIMENT.hdk
    hdk = P2PSearchEngine.build(collection, num_peers=4, params=params)
    hdk.index()
    st = P2PSearchEngine.build(
        collection,
        num_peers=4,
        params=params,
        mode=EngineMode.SINGLE_TERM,
    )
    st.index()
    bloom = BloomSingleTermEngine(
        st.network,
        num_documents=len(collection),
        average_doc_length=collection.average_document_length,
    )
    queries = QueryLogGenerator(
        collection,
        window_size=params.window_size,
        min_hits=3,
        seed=31,
        size_weights={2: 0.6, 3: 0.4},
    ).generate(20)
    return collection, hdk, st, bloom, queries


def test_ablation_baseline_traffic(benchmark):
    rows = []
    measured: dict[int, dict[str, float]] = {}
    for num_docs in (240, 480):
        _, hdk, st, bloom, queries = _build_world(num_docs)
        hdk_traffic = [
            hdk.search(q).postings_transferred for q in queries
        ]
        st_traffic = [st.search(q).postings_transferred for q in queries]
        bloom_traffic = [
            bloom.search("peer-000", q).postings_transferred
            for q in queries
        ]
        cache = CachingSearchEngine(hdk)
        # Replay the log twice: the second pass is all cache hits.
        for q in queries:
            cache.search(q)
        for q in queries:
            cache.search(q)
        per = {
            "ST": sum(st_traffic) / len(st_traffic),
            "ST+Bloom (AND)": sum(bloom_traffic) / len(bloom_traffic),
            "HDK": sum(hdk_traffic) / len(hdk_traffic),
            "HDK+cache (2nd pass)": (
                sum(hdk_traffic) / (2 * len(hdk_traffic))
            ),
        }
        measured[num_docs] = per
        for label, value in per.items():
            rows.append([num_docs, label, f"{value:,.1f}"])
    publish(
        "ablation_baselines",
        "Ablation: mean retrieved postings per query by baseline\n\n"
        + format_table(["#docs", "engine", "postings/query"], rows),
    )
    for num_docs, per in measured.items():
        # Bloom cuts ST traffic but HDK stays below both.
        assert per["ST+Bloom (AND)"] < per["ST"]
        assert per["HDK"] < per["ST"]
        # Caching halves amortized traffic on a repeated log.
        assert per["HDK+cache (2nd pass)"] <= per["HDK"] / 2 + 1e-9
    # Growth: ST and Bloom grow with the collection; HDK grows much less.
    st_growth = measured[480]["ST"] / measured[240]["ST"]
    hdk_growth = measured[480]["HDK"] / measured[240]["HDK"]
    assert st_growth > hdk_growth
    # Benchmark one Bloom query.
    _, _, _, bloom, queries = _build_world(240)
    outcome = benchmark(bloom.search, "peer-000", queries[0])
    assert outcome.postings_transferred >= 0
