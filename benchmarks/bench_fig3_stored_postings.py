"""Figure 3 — stored postings per peer (index size) vs collection size.

Paper shape: the HDK index is several times larger than the single-term
index (13.9x at 140k docs with DF_max=400 at paper scale), both grow with
the collection at these sizes, and a larger DF_max reduces the HDK index
(HDK approaches single-term indexing as DF_max grows).
"""

from __future__ import annotations

from repro.engine.p2p_engine import EngineMode, P2PSearchEngine
from repro.engine.reporting import render_figure_series, series_by_label

from .conftest import (
    BENCH_DF_MAX_VALUES,
    BENCH_EXPERIMENT,
    publish,
)


def test_fig3_stored_postings_per_peer(benchmark, growth_results, bench_collection):
    low, high = BENCH_DF_MAX_VALUES
    publish(
        "fig3_stored_postings",
        render_figure_series(
            growth_results,
            value_of=lambda s: s.stored_postings_per_peer,
            value_header=(
                "Figure 3: stored postings per peer (index size)"
            ),
        ),
    )
    series = series_by_label(growth_results)
    st = series["ST"]
    hdk_low = series[f"HDK df_max={low}"]
    hdk_high = series[f"HDK df_max={high}"]
    for st_step, low_step, high_step in zip(st, hdk_low, hdk_high):
        # HDK stores significantly more than single-term indexing.
        assert (
            low_step.stored_postings_per_peer
            > st_step.stored_postings_per_peer
        )
        assert (
            high_step.stored_postings_per_peer
            > st_step.stored_postings_per_peer
        )
    # Index size grows with the collection at small scale (paper: curves
    # increase, expected to flatten only for very large D).
    assert (
        hdk_low[-1].stored_postings_per_peer
        > hdk_low[0].stored_postings_per_peer
    )
    # Benchmark the measured operation: indexing one engine at the first
    # step's scale.
    first_docs = BENCH_EXPERIMENT.initial_peers * BENCH_EXPERIMENT.docs_per_peer
    prefix = bench_collection.subset(bench_collection.doc_ids()[:first_docs])

    def build_and_index():
        engine = P2PSearchEngine.build(
            prefix,
            num_peers=BENCH_EXPERIMENT.initial_peers,
            params=BENCH_EXPERIMENT.hdk,
            mode=EngineMode.HDK,
        )
        engine.index()
        return engine.stored_postings_per_peer()

    stored = benchmark(build_and_index)
    assert stored > 0
