"""Serving-path throughput — the PR-6 process-pool payoff.

Builds a 256-peer ``hdk_disk`` world (one document per peer, the
paper's many-peers regime in miniature), saves a snapshot, then boots
the full serving stack over it — a :class:`repro.serving.WorkerPool` of
snapshot-loaded ``SearchService`` processes behind the asyncio HTTP
gateway — and drives it with the closed-loop load generator at pool
sizes 1 and 4.

The sweep asserts two things:

- the gateway's rankings are **byte-identical** to a direct in-process
  ``SearchService.search`` on the same snapshot (full-precision floats
  survive both the pickle and the JSON boundary exactly);
- 4 worker processes beat 1 by at least the QPS acceptance floor, with
  exact p50/p95/p99 latency percentiles reported per pool size.

Latency note (same regime as ``bench_parallel_batch``): a query's cost
is dominated by its simulated overlay round-trips (``link_latency_s``
on the serving phase), which worker *processes* overlap — so the pool
scales even where the GIL would serialize threads.  Zero failed
requests are tolerated: a closed-loop client only ever sees 200s from a
healthy pool, and sheds are design behaviour, not errors.

Set ``REPRO_BENCH_SMOKE=1`` (the CI benchmark-smoke job) to shrink the
corpus so the bench finishes in seconds.
"""

from __future__ import annotations

import os

from repro.config import HDKParameters
from repro.corpus.querylog import QueryLogGenerator
from repro.corpus.synthetic import (
    SyntheticCorpusConfig,
    SyntheticCorpusGenerator,
)
from repro.engine.service import SearchService
from repro.serving import Gateway, GatewayConfig, WorkerPool, WorkerSpec
from repro.serving.loadgen import http_request, run_load
from repro.serving.pool import response_payload
from repro.utils import format_table

from .conftest import publish, publish_json

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: One document per peer (the bench_parallel_index regime): query cost
#: is dominated by overlay round-trips, which is what the pool overlaps.
NUM_PEERS = 32 if _SMOKE else 256

DOCS = NUM_PEERS

#: Simulated one-hop link latency (seconds) on the serving phase.
LINK_LATENCY_S = 0.002

POOL_SIZES = (1, 4)

#: 4 workers must beat 1 worker by at least this QPS ratio.  The full
#: run is strongly latency-dominated; the smoke run's smaller overlay
#: (fewer hops per lookup) leaves less sleep to overlap, so its floor
#: is correspondingly lower.
QPS_FLOOR = 1.3 if _SMOKE else 2.0

CLIENTS = 8

REQUESTS_PER_CLIENT = 4 if _SMOKE else 12

K = 10

PARAMS = HDKParameters(df_max=10, window_size=8, s_max=3, ff=6_000, fr=3)

CORPUS = SyntheticCorpusConfig(
    vocabulary_size=3_000,
    mean_doc_length=20,
    num_topics=12,
    zipf_skew=1.0,
)


def test_serving_pool_scaling(tmp_path):
    collection = SyntheticCorpusGenerator(CORPUS, seed=7).generate(DOCS)
    service = SearchService.build(
        collection,
        num_peers=NUM_PEERS,
        backend="hdk_disk",
        params=PARAMS,
        cache_capacity=None,
    )
    service.index()
    snapshot = tmp_path / "snapshot"
    service.save(snapshot)

    queries = [
        " ".join(q.terms)
        for q in QueryLogGenerator(
            collection,
            window_size=PARAMS.window_size,
            min_hits=2,
            seed=29,
            size_weights={2: 0.6, 3: 0.4},
        ).generate(12)
    ]

    # The in-process reference every gateway response must match.
    direct = SearchService.load(snapshot, cache_capacity=None)
    reference = {
        q: response_payload(direct.search(q, k=K))["results"]
        for q in queries
    }

    spec = WorkerSpec(
        snapshot=str(snapshot),
        cache_capacity=None,  # every query pays its overlay round-trips
        link_latency_s=LINK_LATENCY_S,
    )
    rows = []
    series = {}
    for size in POOL_SIZES:
        with WorkerPool(spec, size=size) as pool:
            gateway = Gateway(
                pool, GatewayConfig(port=0, max_inflight=2 * CLIENTS)
            )
            gateway.start_in_thread()
            url = f"http://127.0.0.1:{gateway.port}"

            if size == POOL_SIZES[-1]:
                mismatched = []
                for query in queries:
                    status, body = http_request(
                        url, "POST", "/search", {"query": query, "k": K}
                    )
                    assert status == 200, body
                    if body["results"] != reference[query]:
                        mismatched.append(query)
                assert not mismatched, (
                    f"gateway rankings diverged from the direct service "
                    f"for {len(mismatched)} queries: {mismatched[:3]}"
                )

            report = run_load(
                url,
                queries,
                clients=CLIENTS,
                requests_per_client=REQUESTS_PER_CLIENT,
                k=K,
            )
            gateway.initiate_drain()
            assert gateway.wait_finished(10.0), "gateway failed to drain"
            assert report.failed == 0, report.errors
            series[size] = report
            rows.append(
                [
                    str(size),
                    str(report.ok),
                    f"{report.qps:,.1f}",
                    f"{report.percentile_ms(0.50):,.1f}",
                    f"{report.percentile_ms(0.95):,.1f}",
                    f"{report.percentile_ms(0.99):,.1f}",
                ]
            )

    table = format_table(
        ["workers", "ok", "qps", "p50 ms", "p95 ms", "p99 ms"], rows
    )
    publish("serving_pool_scaling", table)

    speedup = series[POOL_SIZES[-1]].qps / series[POOL_SIZES[0]].qps
    publish_json(
        "serving_scaling",
        {
            "bench": "serving_scaling",
            "mode": "smoke" if _SMOKE else "full",
            "num_peers": NUM_PEERS,
            "link_latency_s": LINK_LATENCY_S,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "qps_floor": QPS_FLOOR,
            "qps_speedup": round(speedup, 3),
            "byte_identical": True,
            "pool_sizes": {
                str(size): report.as_dict()
                for size, report in series.items()
            },
        },
    )
    assert speedup >= QPS_FLOOR, (
        f"{POOL_SIZES[-1]} workers gave only {speedup:.2f}x the QPS of "
        f"{POOL_SIZES[0]} worker (floor {QPS_FLOOR}x)"
    )
