"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md
§3).  The expensive part — the Section-5 growth experiment — runs once per
session at a reduced scale chosen so the whole harness finishes in about a
minute, and each figure bench renders its series from the shared results.

Scale note (also in DESIGN.md): the paper indexes 20k-140k Wikipedia
documents across 28 machines; this harness runs 4-12 simulated peers over
a synthetic corpus.  Absolute posting counts therefore differ from the
paper's by construction — the benches reproduce the *shapes*: orderings,
monotone growth, bounded-vs-linear traffic, and the DF_max trade-off.

Rendered tables are written to ``benchmarks/results/`` and printed (visible
with ``pytest -s`` or ``-rA``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping

import pytest

from repro.config import ExperimentParameters, HDKParameters
from repro.corpus.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.engine.experiment import GrowthExperiment
from repro.utils import write_bench_json

#: The DF_max sweep: 12 and 20 play the role of the paper's 400 and 500
#: (the smaller value stores more postings but retrieves fewer).
BENCH_DF_MAX_VALUES = (12, 20)

BENCH_EXPERIMENT = ExperimentParameters(
    initial_peers=4,
    peer_step=4,
    max_peers=12,
    docs_per_peer=60,
    hdk=HDKParameters(df_max=12, window_size=8, s_max=3, ff=6_000, fr=3),
    seed=7,
)

#: A flatter Zipf skew over a larger vocabulary keeps new rare terms
#: arriving as the collection grows (Heaps-law behaviour), which sustains
#: the supply of new discriminative keys — the regime the paper's
#: Wikipedia subset lives in and the one that produces Figure 3's growing
#: index-size curves.
BENCH_CORPUS = SyntheticCorpusConfig(
    vocabulary_size=5_000,
    mean_doc_length=50,
    num_topics=12,
    zipf_skew=1.0,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def growth_results():
    """The full Section-5 growth run shared by the Figure 3-7 benches."""
    experiment = GrowthExperiment(
        BENCH_EXPERIMENT,
        corpus_config=BENCH_CORPUS,
        df_max_values=BENCH_DF_MAX_VALUES,
        include_single_term=True,
        num_queries=25,
        top_k=20,
    )
    return experiment.run()


@pytest.fixture(scope="session")
def bench_collection():
    """The largest-step collection (Table 1 statistics, Figure 2 fit)."""
    total = BENCH_EXPERIMENT.max_peers * BENCH_EXPERIMENT.docs_per_peer
    return SyntheticCorpusGenerator(
        BENCH_CORPUS, seed=BENCH_EXPERIMENT.seed
    ).generate(total)


def publish(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print(f"\n=== {name} ===\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def publish_json(name: str, payload: Mapping[str, object]) -> Path:
    """Write the machine-readable ``BENCH_<name>.json`` twin of a bench.

    Rendered tables are for eyes; these artifacts are for diffing runs
    across PRs.  ``REPRO_BENCH_JSON_DIR`` overrides the destination
    (the CI jobs point it at their artifact directory), defaulting to
    ``benchmarks/results/`` next to the rendered tables.
    """
    target = os.environ.get("REPRO_BENCH_JSON_DIR") or RESULTS_DIR
    path = write_bench_json(name, payload, path=target)
    print(f"wrote {path}")
    return path
