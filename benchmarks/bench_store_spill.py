"""Ablation — the disk-backed store under shrinking RAM budgets, plus
the generation-2 cold-start story.

The ``hdk_disk`` backend must return exactly the in-memory backend's
rankings while holding an arbitrarily small fraction of the posting
lists in RAM; what degrades with the budget is *service time* (cold keys
pay a segment read + varint decode).  This bench sweeps the byte budget
from "everything hot" down to "everything spilled", checks result parity
on a shared query log, and publishes residency/latency/IO per budget;
the timed section serves the log from a snapshot-loaded service — the
build-once / serve-many hot path.

The second half measures what generation 2 changed about *startup*:
reopening a segment directory through its ``.idx`` sidecars reads
O(segments) metadata, while the generation-1 path checksum-scans every
record body.  Both paths are timed on the same snapshot (sidecars
stripped per scan iteration — a scan self-heals them) and the ratio is
published in ``BENCH_store.json`` for the CI smoke job to assert on.

Set ``REPRO_BENCH_SMOKE=1`` (the CI benchmark-smoke job) to shrink the
corpus and query log so the sweep finishes in seconds.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.corpus.querylog import QueryLogGenerator
from repro.corpus.synthetic import SyntheticCorpusGenerator
from repro.engine.service import SearchService
from repro.store.snapshot import segments_dir
from repro.store.store import SegmentStore
from repro.utils import format_table

from .conftest import BENCH_CORPUS, BENCH_EXPERIMENT, publish, publish_json

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

DOCS = 160 if _SMOKE else 360

NUM_QUERIES = 10 if _SMOKE else 25

#: Byte budgets for the residency sweep ("everything hot" down to
#: "everything spilled").  Units are encoded posting bytes — the
#: generation-2 denomination; the deprecated posting-count knob is
#: covered by tests/store/test_budget_units.py.
BUDGET_BYTES = (256 * 1024, 16 * 1024, 1_024, 0)

#: Cold-reopen timing repetitions (best-of to shed scheduler noise).
REOPEN_REPS = 3 if _SMOKE else 5


def test_store_spill_budget_sweep(benchmark):
    collection = SyntheticCorpusGenerator(
        BENCH_CORPUS, seed=BENCH_EXPERIMENT.seed
    ).generate(DOCS)
    params = BENCH_EXPERIMENT.hdk
    queries = QueryLogGenerator(
        collection,
        window_size=params.window_size,
        min_hits=3,
        seed=29,
        size_weights={2: 0.6, 3: 0.4},
    ).generate(NUM_QUERIES)

    def build(backend: str, **kwargs) -> SearchService:
        service = SearchService.build(
            collection,
            num_peers=4,
            backend=backend,
            params=params,
            cache_capacity=None,
            **kwargs,
        )
        service.index()
        return service

    reference = build("hdk")
    reference_report = reference.run_querylog(queries, k=10)
    reference_rankings = [
        [r.doc_id for r in resp.results]
        for resp in reference_report.responses
    ]
    stored = reference.stored_postings_total()

    parity_all_budgets = True
    sweep_rows = []
    rows = [
        [
            "hdk (all in RAM)",
            f"{stored:,}",
            "100.0%",
            f"{reference_report.mean_postings_per_query:,.1f}",
            f"{reference_report.mean_elapsed_ms:.2f}",
            "-",
        ]
    ]
    for budget in BUDGET_BYTES:
        disk = build("hdk_disk", memory_budget_bytes=budget)
        report = disk.run_querylog(queries, k=10)
        rankings = [
            [r.doc_id for r in resp.results] for resp in report.responses
        ]
        parity = rankings == reference_rankings
        parity_all_budgets = parity_all_budgets and parity
        assert parity, (
            f"budget {budget}B: rankings diverged from in-memory hdk"
        )
        spill = disk.backend.global_index.spill_stats()
        assert spill["hot_charge"] <= budget
        resident = spill["hot_postings"] + spill["store"]["cache_postings"]
        rows.append(
            [
                f"hdk_disk budget={budget:,}B",
                f"{resident:,}",
                f"{resident / stored:.1%}",
                f"{report.mean_postings_per_query:,.1f}",
                f"{report.mean_elapsed_ms:.2f}",
                f"{spill['spills']:,}/{spill['reloads']:,}",
            ]
        )
        sweep_rows.append(
            {
                "budget_bytes": budget,
                "resident_postings": resident,
                "mean_postings_per_query": report.mean_postings_per_query,
                "mean_elapsed_ms": report.mean_elapsed_ms,
                "spills": spill["spills"],
                "reloads": spill["reloads"],
                "parity_with_hdk": parity,
            }
        )
        disk.backend.global_index.store.close()

    table = format_table(
        [
            "engine",
            "resident postings",
            "of stored",
            "postings/query",
            "ms/query",
            "spills/reloads",
        ],
        rows,
    )
    publish("store_spill_budget_sweep", table)

    # Cold start: reopen the snapshot's segment directory through both
    # generations.  The sidecar path reads per-segment .idx metadata;
    # the legacy path (sidecars stripped) checksum-scans every record
    # body.  Strip before *each* scan rep — a scan heals the sidecars.
    disk = build("hdk_disk", memory_budget_bytes=16 * 1024)
    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-snap-")
    snapshot = Path(tmp.name) / "snapshot"
    disk.save(snapshot)
    disk.backend.global_index.store.close()

    reopen_dir = Path(tmp.name) / "reopen" / "segments"
    reopen_dir.parent.mkdir()
    shutil.copytree(segments_dir(snapshot), reopen_dir)

    def time_reopen() -> tuple[float, dict[str, object]]:
        start = time.perf_counter()
        store = SegmentStore(reopen_dir, cache_bytes=0)
        elapsed = time.perf_counter() - start
        stats = store.stats()
        store.close()
        return elapsed, stats

    sidecar_s, sidecar_keys = float("inf"), 0
    for _ in range(REOPEN_REPS):
        elapsed, stats = time_reopen()
        assert stats["sidecar_reopens"] == stats["segments"], stats
        assert stats["scan_reopens"] == 0, stats
        sidecar_s = min(sidecar_s, elapsed)
        sidecar_keys = stats["keys"]

    scan_s, scan_keys = float("inf"), 0
    for _ in range(REOPEN_REPS):
        for sidecar in reopen_dir.glob("*.idx"):
            sidecar.unlink()
        elapsed, stats = time_reopen()
        assert stats["scan_reopens"] == stats["segments"], stats
        scan_s = min(scan_s, elapsed)
        scan_keys = stats["keys"]
    assert scan_keys == sidecar_keys

    speedup = scan_s / sidecar_s if sidecar_s > 0 else float("inf")
    publish(
        "store_reopen_cold_start",
        format_table(
            ["reopen path", "keys", "best of reps (ms)"],
            [
                ["gen-1 scan (record bodies)", scan_keys, f"{scan_s * 1e3:.2f}"],
                ["gen-2 sidecar (.idx)", sidecar_keys, f"{sidecar_s * 1e3:.2f}"],
                ["speedup", "-", f"{speedup:.1f}x"],
            ],
        ),
    )
    publish_json(
        "store",
        {
            "docs": DOCS,
            "stored_postings": stored,
            "parity_all_budgets": parity_all_budgets,
            "budget_sweep": sweep_rows,
            "reopen": {
                "keys": sidecar_keys,
                "reps": REOPEN_REPS,
                "scan_s": scan_s,
                "sidecar_s": sidecar_s,
                "speedup": speedup,
            },
        },
    )

    # Timed: serve the whole log from a freshly loaded snapshot (the
    # production-shaped path: sidecar reopen + cold block reads).
    def serve_from_snapshot():
        served = SearchService.load(
            snapshot, memory_budget_bytes=16 * 1024, cache_capacity=None
        )
        report = served.run_querylog(queries, k=10)
        served.backend.global_index.store.close()
        return report

    report = benchmark(serve_from_snapshot)
    assert [
        [r.doc_id for r in resp.results] for resp in report.responses
    ] == reference_rankings
    tmp.cleanup()
