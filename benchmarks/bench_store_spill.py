"""Ablation — the disk-backed store under shrinking RAM budgets.

The ``hdk_disk`` backend must return exactly the in-memory backend's
rankings while holding an arbitrarily small fraction of the posting
lists in RAM; what degrades with the budget is *service time* (cold keys
pay a segment read + varint decode).  This bench sweeps the budget from
"everything hot" down to "everything spilled", checks result parity on a
shared query log, and publishes residency/latency/IO per budget; the
timed section serves the log from a snapshot-loaded service — the
build-once / serve-many hot path.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.corpus.querylog import QueryLogGenerator
from repro.corpus.synthetic import SyntheticCorpusGenerator
from repro.engine.service import SearchService
from repro.utils import format_table

from .conftest import BENCH_CORPUS, BENCH_EXPERIMENT, publish


def test_store_spill_budget_sweep(benchmark):
    collection = SyntheticCorpusGenerator(
        BENCH_CORPUS, seed=BENCH_EXPERIMENT.seed
    ).generate(360)
    params = BENCH_EXPERIMENT.hdk
    queries = QueryLogGenerator(
        collection,
        window_size=params.window_size,
        min_hits=3,
        seed=29,
        size_weights={2: 0.6, 3: 0.4},
    ).generate(25)

    def build(backend: str, **kwargs) -> SearchService:
        service = SearchService.build(
            collection,
            num_peers=4,
            backend=backend,
            params=params,
            cache_capacity=None,
            **kwargs,
        )
        service.index()
        return service

    reference = build("hdk")
    reference_report = reference.run_querylog(queries, k=10)
    reference_rankings = [
        [r.doc_id for r in resp.results]
        for resp in reference_report.responses
    ]
    stored = reference.stored_postings_total()

    rows = [
        [
            "hdk (all in RAM)",
            f"{stored:,}",
            "100.0%",
            f"{reference_report.mean_postings_per_query:,.1f}",
            f"{reference_report.mean_elapsed_ms:.2f}",
            "-",
        ]
    ]
    for budget in (10_000, 1_000, 100, 0):
        disk = build("hdk_disk", memory_budget=budget)
        report = disk.run_querylog(queries, k=10)
        rankings = [
            [r.doc_id for r in resp.results] for resp in report.responses
        ]
        assert rankings == reference_rankings, (
            f"budget {budget}: rankings diverged from in-memory hdk"
        )
        spill = disk.backend.global_index.spill_stats()
        assert spill["hot_postings"] <= budget
        resident = spill["hot_postings"] + spill["store"]["cache_postings"]
        rows.append(
            [
                f"hdk_disk budget={budget:,}",
                f"{resident:,}",
                f"{resident / stored:.1%}",
                f"{report.mean_postings_per_query:,.1f}",
                f"{report.mean_elapsed_ms:.2f}",
                f"{spill['spills']:,}/{spill['reloads']:,}",
            ]
        )

    table = format_table(
        [
            "engine",
            "resident postings",
            "of stored",
            "postings/query",
            "ms/query",
            "spills/reloads",
        ],
        rows,
    )
    publish("store_spill_budget_sweep", table)

    # Timed: serve the whole log from a freshly loaded snapshot (the
    # production-shaped path: offset-directory scan + cold block reads).
    disk = build("hdk_disk", memory_budget=1_000)
    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-snap-")
    snapshot = Path(tmp.name) / "snapshot"
    disk.save(snapshot)

    def serve_from_snapshot():
        served = SearchService.load(
            snapshot, memory_budget=1_000, cache_capacity=None
        )
        return served.run_querylog(queries, k=10)

    report = benchmark(serve_from_snapshot)
    assert [
        [r.doc_id for r in resp.results] for resp in report.responses
    ] == reference_rankings
    tmp.cleanup()
